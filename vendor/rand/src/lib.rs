//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of the `rand` 0.8 API the workspace actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] over integer and float ranges, and
//! [`seq::SliceRandom`] (`shuffle` / `choose`). The generator is
//! xoshiro256++ seeded through SplitMix64 — the same construction the real
//! `SmallRng` uses on 64-bit platforms — so it is deterministic, fast and
//! statistically adequate for simulation workloads. Streams are **not**
//! guaranteed to be bit-identical to the real crate; the simulator only
//! requires determinism for a fixed seed, which this provides.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value inside `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their whole domain (the real crate's
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from (the real crate's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types with uniform sampling over an arbitrary sub-range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`; `hi` is exclusive unless `inclusive`.
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "empty sample range");
                let span = (hi as u128).wrapping_sub(lo as u128)
                    + if inclusive { 1 } else { 0 };
                if span == 0 {
                    // Inclusive range covering the whole domain.
                    return rng.next_u64() as $t;
                }
                // Modulo reduction: the bias is < 2^-64 * span, irrelevant
                // for simulation purposes.
                let draw = ((rng.next_u64() as u128) % span) as u128;
                (lo as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo <= hi, "empty sample range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++ seeded via
    /// SplitMix64 (the construction the real `SmallRng` uses on 64-bit
    /// targets).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(-0.25..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn shuffle_and_choose_cover_the_slice() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
