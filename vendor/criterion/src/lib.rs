//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use — [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], benchmark
//! groups, and the [`criterion_group!`] / [`criterion_main!`] macros — backed
//! by a simple median-of-samples wall-clock harness instead of criterion's
//! statistical machinery. Good enough to run `cargo bench` offline and see
//! relative numbers; swap the real crate back in for publication-grade
//! statistics.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, like the real crate.
pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (accepted for compatibility; the
/// stub always runs setup once per measured batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per allocation.
    PerIteration,
}

/// The measurement driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Median wall-clock duration of one sample, filled by `iter*`.
    pub(crate) measured: Option<Duration>,
}

impl Bencher {
    fn measure(&mut self, mut sample: impl FnMut() -> Duration) {
        // One warm-up sample, then the configured number of measured ones.
        let _ = sample();
        let mut times: Vec<Duration> = (0..self.samples).map(|_| sample()).collect();
        times.sort_unstable();
        self.measured = Some(times[times.len() / 2]);
    }

    /// Times `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.measure(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.measure(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }
}

fn print_result(name: &str, measured: Option<Duration>) {
    match measured {
        Some(d) => println!("{name:<50} median {d:?}"),
        None => println!("{name:<50} (no measurement)"),
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            measured: None,
        };
        f(&mut b);
        print_result(&full, b.measured);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            measured: None,
        };
        f(&mut b);
        print_result(id, b.measured);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Called by `criterion_main!` after all groups ran (no-op).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring the two forms the real
/// macro accepts.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
