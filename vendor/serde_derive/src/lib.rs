//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a marker
//! (nothing is actually serialized in the reproduction), so the derives
//! expand to nothing. The blanket trait impls live in the sibling `serde`
//! stub crate.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
