//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, range and tuple
//! strategies, [`collection::vec`], [`any`], [`prop_oneof!`] with optional
//! weights, `Just`, `prop_map` and [`test_runner::ProptestConfig`]. Cases
//! are drawn from a deterministic per-case RNG; there is **no shrinking** —
//! a failing case panics with the drawn values' debug representation, which
//! is reproducible because the stream is fixed.

#![warn(missing_docs)]

/// Test-runner configuration.
pub mod test_runner {
    /// Mirrors the knobs of the real `ProptestConfig` that this workspace
    /// touches (plus `max_shrink_iters`, accepted for compatibility — the
    /// stub never shrinks).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for compatibility; the stub does not shrink.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic per-case random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of property `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64) << 32 | 0x5EED),
            }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (the real crate's
        /// `Strategy::prop_map`).
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// The constant strategy: always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A weighted union of same-valued strategies (the engine behind
    /// [`crate::prop_oneof!`]). Weights are relative draw frequencies.
    pub struct Union<V> {
        options: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds a union from `(weight, strategy)` pairs.
        pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            let total = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { options, total }
        }
    }

    /// Type-erases a strategy for [`Union::new`] (lets [`crate::prop_oneof!`]
    /// build a homogeneous vector out of heterogeneous strategy types).
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.next_u64() % self.total;
            for (weight, strategy) in &self.options {
                if pick < *weight as u64 {
                    return strategy.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick within total")
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    (self.start as u128).wrapping_add((rng.next_u64() as u128) % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                    (lo as u128).wrapping_add((rng.next_u64() as u128) % span) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + (self.end - self.start) * unit
        }
    }

    /// Strategy produced by [`crate::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_tuple {
        ($(($($s:ident . $idx:tt),+ ))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with length in `size` (half-open, like
    /// the real crate's `SizeRange` from a `Range`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Whole-domain strategy for `T` (only the types the tests draw).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Picks one of several same-valued strategies per draw, optionally
/// weighted (`weight => strategy`). Mirrors the real crate's `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::boxed($strat)) ),+
        ])
    };
}

/// Asserts a condition inside a property (plain `assert!` here: the stub
/// does not shrink, it just reports the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Declares property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 5u32..50, f in 0.0f64..2.5, b in any::<bool>()) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((0.0..2.5).contains(&f));
            let _ = b;
        }

        /// Vec strategy respects the length range, tuples compose.
        #[test]
        fn vec_and_tuples(v in crate::collection::vec((0u32..9, any::<bool>()), 1..7)) {
            prop_assert!(!v.is_empty() && v.len() < 7);
            for (n, _flag) in v {
                prop_assert!(n < 9);
            }
        }
    }

    proptest! {
        /// Default config applies when no attribute is given.
        #[test]
        fn default_config_runs(x in 0usize..3) {
            prop_assert_eq!(x < 3, true);
        }
    }

    #[test]
    fn deterministic_stream() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let mut a = crate::test_runner::TestRng::for_case("p", 1);
        let mut b = crate::test_runner::TestRng::for_case("p", 1);
        assert_eq!(s.generate(&mut a), (0u64..1000).generate(&mut b));
    }
}
