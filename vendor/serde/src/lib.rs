//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its wire and spec
//! types but never serializes anything (the simulator charges wire *sizes*,
//! not encoded bytes). This stub keeps those derives compiling without
//! network access: the traits are blanket-implemented markers and the
//! derive macros (re-exported from the sibling `serde_derive` stub) expand
//! to nothing.
//!
//! Swapping the real serde back in is a manifest-only change, with one
//! caveat: `brisa::BrisaMsg` derives the traits on an `Arc<DataMsg>` field,
//! which real serde only supports with `features = ["derive", "rc"]`.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::{Deserialize, Serialize};

    #[derive(super::Serialize, super::Deserialize)]
    struct Marker {
        _x: u32,
    }

    fn assert_serialize<T: super::Serialize>() {}

    #[test]
    fn derives_and_blanket_impls_compile() {
        assert_serialize::<Marker>();
        assert_serialize::<Vec<u8>>();
    }
}
