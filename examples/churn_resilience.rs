//! Churn resilience: reproduce, at example scale, the Table I experiment —
//! how the emerged tree and a 2-parent DAG behave while 5% of the nodes are
//! replaced every minute.
//!
//! The two structure cells are independent simulations, so this example
//! also demonstrates the parallel sweep API: `run_matrix` fans the cells
//! across threads and returns results in cell order, bit-identical to a
//! sequential loop.
//!
//! Run with: `cargo run -p brisa-bench --release --example churn_resilience`

use brisa::StructureMode;
use brisa_simnet::SimDuration;
use brisa_workloads::{run_brisa, run_matrix, BrisaScenario, ChurnSpec, StreamSpec};

fn main() {
    let churn = ChurnSpec {
        rate_percent: 5.0,
        interval: SimDuration::from_secs(30),
        duration: SimDuration::from_secs(120),
    };
    let base = BrisaScenario {
        nodes: 96,
        view_size: 4,
        stream: StreamSpec {
            messages: 300,
            rate_per_sec: 5.0,
            payload_bytes: 1024,
        },
        churn: Some(churn),
        bootstrap: SimDuration::from_secs(40),
        drain: SimDuration::from_secs(30),
        ..Default::default()
    };

    let cells = [
        ("Tree", StructureMode::Tree),
        ("DAG, 2 parents", StructureMode::Dag { parents: 2 }),
    ]
    .map(|(label, mode)| {
        (
            label,
            BrisaScenario {
                mode,
                ..base.clone()
            },
        )
    });

    println!("96 nodes, 5% churn per 30 s for 2 minutes, 1 KB messages at 5/s\n");
    println!(
        "{:<16} {:>16} {:>12} {:>12} {:>12} {:>14}",
        "structure", "parents lost/min", "orphans/min", "% soft", "% hard", "completeness %"
    );
    let results = run_matrix(&cells, |_, (_, sc)| run_brisa(sc));
    for ((label, _), result) in cells.iter().zip(&results) {
        let churn = result.churn.clone().expect("churn configured");
        println!(
            "{:<16} {:>16.1} {:>12.1} {:>12.1} {:>12.1} {:>14.1}",
            label,
            churn.parents_lost_per_min,
            churn.orphans_per_min,
            churn.soft_pct,
            churn.hard_pct,
            result.completeness() * 100.0
        );
    }
    println!();
    println!("as in Table I of the paper: the DAG loses parents more often (it has more of");
    println!("them) but is almost never fully disconnected, and nearly all disconnections");
    println!("are repaired with the cheap soft mechanism.");
}
