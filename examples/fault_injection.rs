//! Fault injection: stream a BRISA tree through an adversarial network —
//! per-link message loss, then a partition that cuts a quarter of the nodes
//! from the source for ten seconds before healing.
//!
//! Demonstrates the `FaultSpec` API, the online invariant checker (the
//! tree-validity, delivery and FIFO-clock invariants are evaluated *while*
//! the run executes), and the recovery machinery: lost messages come back
//! through gap-detection retransmissions served from neighbors' buffers,
//! and a healed island catches up in one burst.
//!
//! Run with: `cargo run -p brisa-bench --release --example fault_injection`

use brisa::BrisaNode;
use brisa_simnet::SimDuration;
use brisa_workloads::{
    BrisaScenario, BrisaStackConfig, FaultSpec, IntoRunSpec, InvariantSuite, PartitionPhase,
    Runner, StreamSpec,
};

fn run(label: &str, sc: &BrisaScenario) {
    let cfg = BrisaStackConfig {
        hpv: sc.hyparview_config(),
        brisa: sc.brisa_config(),
    };
    let mut invariants = InvariantSuite::standard(Some(1));
    let result = Runner::<BrisaNode>::new(&cfg, &sc.run_spec())
        .invariants(&mut invariants)
        .run();
    invariants.assert_clean();

    let eligible: Vec<_> = result
        .nodes
        .iter()
        .filter(|n| !n.is_source && n.id.0 < result.original_nodes)
        .collect();
    let delivered: u64 = eligible
        .iter()
        .map(|n| n.report.delivered.min(result.messages_published))
        .sum();
    let expected = eligible.len() as u64 * result.messages_published;
    let gap_requests: u64 = result
        .nodes
        .iter()
        .map(|n| n.report.repairs.gap_requests)
        .sum();
    let served: u64 = result
        .nodes
        .iter()
        .map(|n| n.report.repairs.retransmissions_served)
        .sum();
    println!("{label}:");
    println!(
        "  delivery rate        {:.3}% ({delivered}/{expected} node x message pairs)",
        delivered as f64 * 100.0 / expected as f64
    );
    println!(
        "  lost to faults       {} messages (plus {} cut by the partition)",
        result.net_stats.messages_lost_to_faults, result.net_stats.messages_cut_by_partition
    );
    println!("  gap requests         {gap_requests} (served with {served} retransmissions)");
    println!(
        "  invariants           clean after {} online checks\n",
        invariants.checks_run()
    );
}

fn main() {
    let base = BrisaScenario {
        nodes: 64,
        view_size: 4,
        stream: StreamSpec {
            messages: 150,
            rate_per_sec: 5.0,
            payload_bytes: 1024,
        },
        bootstrap: SimDuration::from_secs(30),
        drain: SimDuration::from_secs(20),
        ..Default::default()
    };
    println!("64 nodes, 150 x 1 KB messages at 5/s; faults switch on at stream start\n");

    run(
        "2% per-link loss",
        &BrisaScenario {
            faults: FaultSpec::loss(0.02),
            ..base.clone()
        },
    );
    run(
        "10 s partition of 25% of the nodes, then heal",
        &BrisaScenario {
            faults: FaultSpec {
                partition: Some(PartitionPhase::drop(
                    0.25,
                    SimDuration::from_secs(5),
                    SimDuration::from_secs(10),
                )),
                ..Default::default()
            },
            ..base
        },
    );

    println!("every hole the adversity opened was repaired through the gossip substrate:");
    println!("nodes notice sequence gaps, ask a parent, and replay from its buffer.");
}
