//! Media streaming over a wide-area overlay: a DAG with two parents keeps
//! the stream flowing through individual parent failures without waiting for
//! a repair, at the cost of one controlled duplicate per message.
//!
//! This mirrors the motivation of the paper's introduction (dissemination of
//! digital media / news feeds on the Internet) and Section II-G.
//!
//! Run with: `cargo run -p brisa-bench --release --example media_stream`

use brisa::{ParentStrategy, StructureMode};
use brisa_metrics::PercentileSummary;
use brisa_simnet::SimDuration;
use brisa_workloads::{run_brisa, BrisaScenario, ChurnSpec, StreamSpec, Testbed};

fn main() {
    let base = BrisaScenario {
        nodes: 96,
        view_size: 8,
        strategy: ParentStrategy::DelayAware,
        testbed: Testbed::PlanetLab,
        stream: StreamSpec {
            messages: 150,
            rate_per_sec: 5.0,
            payload_bytes: 10 * 1024,
        },
        churn: Some(ChurnSpec {
            rate_percent: 5.0,
            interval: SimDuration::from_secs(10),
            duration: SimDuration::from_secs(30),
        }),
        bootstrap: SimDuration::from_secs(40),
        drain: SimDuration::from_secs(20),
        ..Default::default()
    };

    println!("streaming 10 KB chunks at 5/s over PlanetLab latencies, 5% churn per 10s\n");
    for (label, mode) in [
        ("tree (1 parent)", StructureMode::Tree),
        ("DAG (2 parents)", StructureMode::Dag { parents: 2 }),
    ] {
        let sc = BrisaScenario {
            mode,
            ..base.clone()
        };
        let result = run_brisa(&sc);
        let churn = result.churn.clone().expect("churn phase configured");
        let delay =
            PercentileSummary::from_samples(result.nodes.iter().filter_map(|n| n.routing_delay_ms));
        let down = PercentileSummary::from_samples(
            result
                .nodes
                .iter()
                .filter(|n| !n.is_source)
                .map(|n| n.bandwidth.diss_down_kbps),
        );
        println!("{label}:");
        println!(
            "  completeness {:.1}% | orphans/min {:.1} | soft repairs {:.0}%",
            result.completeness() * 100.0,
            churn.orphans_per_min,
            churn.soft_pct
        );
        println!(
            "  chunk delay p50/p90 = {:.0}/{:.0} ms | download p50 = {:.0} KB/s",
            delay.p50, delay.p90, down.p50
        );
        println!();
    }
    println!("the DAG trades ~2x download for near-zero orphaning: viewers keep playing");
    println!("through churn, while the tree depends on (fast but visible) repairs.");
}
