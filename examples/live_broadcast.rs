//! Live broadcast over real TCP sockets.
//!
//! Boots a 32-node BRISA cluster on `127.0.0.1` — every node a thread,
//! every link a real socket, every message a codec frame — publishes a
//! short stream from node 0 and prints the injection-to-delivery latency
//! percentiles.
//!
//! ```sh
//! cargo run --release --example live_broadcast
//! ```

use brisa::{BrisaConfig, BrisaNode};
use brisa_membership::HyParViewConfig;
use brisa_metrics::percentile::percentile_of_sorted;
use brisa_metrics::PercentileSummary;
use brisa_runtime::{Cluster, ClusterConfig, TransportKind};
use brisa_workloads::BrisaStackConfig;
use std::time::Duration;

const NODES: u32 = 32;
const MESSAGES: u64 = 20;
const PAYLOAD: usize = 1024;

fn main() {
    println!("=== live_broadcast — {NODES} BRISA nodes over TCP on 127.0.0.1\n");

    let cfg = ClusterConfig {
        nodes: NODES,
        transport: TransportKind::Tcp,
        seed: 0xB215A,
        ..Default::default()
    };
    let stack = BrisaStackConfig {
        hpv: HyParViewConfig::with_active_size(4),
        brisa: BrisaConfig::default(),
    };
    let mut cluster: Cluster<BrisaNode> =
        Cluster::launch(&cfg, &stack).expect("bind listeners and launch nodes");
    println!("cluster up: {} nodes, overlay forming...", cluster.alive());
    cluster.run_for(Duration::from_millis(500));

    println!(
        "publishing {MESSAGES} x {PAYLOAD} B from {}...",
        cluster.source()
    );
    for _ in 0..MESSAGES {
        cluster.publish(PAYLOAD);
        cluster.run_for(Duration::from_millis(40));
    }
    let complete = cluster.wait_for_delivery(MESSAGES, Duration::from_secs(30));
    let result = cluster.stop_and_collect();

    println!(
        "\ndelivery rate: {:.1}% ({} nodes x {} messages{})",
        result.delivery_rate() * 100.0,
        NODES - 1,
        MESSAGES,
        if complete { "" } else { " — INCOMPLETE" },
    );
    let (frames, bytes) = result.frames_and_bytes_out();
    println!(
        "traffic: {frames} frames, {:.2} MB through the wire codec",
        bytes as f64 / 1.0e6
    );

    let mut samples = result.latency_samples_ms();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let summary = PercentileSummary::from_samples(samples.iter().copied());
    println!(
        "\ndelivery latency over {} (node, message) pairs:",
        summary.count
    );
    for (level, value) in summary.levels() {
        println!("  p{level:<4} {value:>8.3} ms");
    }
    println!("  p99  {:>8.3} ms", percentile_of_sorted(&samples, 99.0));
    println!("  mean {:>8.3} ms", summary.mean);

    result
        .check_delivery_invariants()
        .expect("live trace passes the delivery invariants");
    println!("\ndelivery invariants: clean");
}
