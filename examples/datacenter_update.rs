//! Datacenter software-update push: disseminate a large payload to every
//! machine with minimal duplicate traffic, and compare BRISA against naive
//! flooding and SimpleGossip on the same cluster.
//!
//! This mirrors the paper's second motivating workload (software updates in
//! a datacenter infrastructure).
//!
//! Run with: `cargo run -p brisa-bench --release --example datacenter_update`

use brisa_workloads::{
    run_brisa, run_flood, run_simple_gossip, BaselineScenario, BrisaScenario, StreamSpec, Testbed,
};

fn main() {
    let nodes = 128u32;
    // One "update" = 50 chunks of 50 KB pushed at 5 chunks/s.
    let stream = StreamSpec {
        messages: 50,
        rate_per_sec: 5.0,
        payload_bytes: 50 * 1024,
    };

    println!(
        "pushing a {} MB update to {} machines\n",
        50 * 50 / 1024,
        nodes
    );

    let brisa_sc = BrisaScenario {
        nodes,
        view_size: 4,
        stream,
        testbed: Testbed::Cluster,
        ..Default::default()
    };
    let brisa_run = run_brisa(&brisa_sc);
    let baseline_sc = BaselineScenario {
        nodes,
        view_size: 4,
        stream,
        ..Default::default()
    };
    let flood = run_flood(&baseline_sc);
    let gossip = run_simple_gossip(&baseline_sc);

    let brisa_mb = brisa_run
        .nodes
        .iter()
        .map(|n| n.bandwidth.total_uploaded_mb())
        .sum::<f64>();
    println!(
        "BRISA tree   : completeness {:.1}% | total data sent across the cluster {:.0} MB",
        brisa_run.completeness() * 100.0,
        brisa_mb
    );
    println!(
        "flooding     : completeness {:.1}% | total data sent across the cluster {:.0} MB",
        flood.completeness() * 100.0,
        flood.mean_data_transmitted_mb() * flood.nodes.len() as f64
    );
    println!(
        "SimpleGossip : completeness {:.1}% | total data sent across the cluster {:.0} MB",
        gossip.completeness() * 100.0,
        gossip.mean_data_transmitted_mb() * gossip.nodes.len() as f64
    );
    println!();
    println!("every protocol delivers the update everywhere; BRISA does it with one copy");
    println!("per machine plus a one-off bootstrap flood, while flooding and gossip pay a");
    println!("duplicate factor proportional to the view size / fanout.");
}
