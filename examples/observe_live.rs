//! Live cluster observability: a 32-node TCP cluster with an enabled
//! telemetry handle, narrated once per second from the registry.
//!
//! The telemetry subsystem (crates/telemetry) is strictly out-of-band —
//! the cluster behaves bit-identically with the handle disabled — so this
//! example is purely additive observation: while a stream disseminates,
//! every second it reads the registry's counters and gauges and prints
//! deliveries/s, the outstanding orphan count, reactor inbox depths and
//! backpressure stalls. At the end it prints a registry snapshot line and
//! a sample of the flight recorder's structured events.
//!
//! ```sh
//! cargo run --release --example observe_live
//! ```

use brisa::{BrisaConfig, BrisaNode};
use brisa_membership::HyParViewConfig;
use brisa_runtime::{Cluster, ClusterConfig, RuntimeConfig, TransportKind};
use brisa_telemetry::Telemetry;
use brisa_workloads::BrisaStackConfig;
use std::time::Duration;

const NODES: u32 = 32;
const MESSAGES: u64 = 40;
const PAYLOAD: usize = 512;
const WORKERS: usize = 4;

/// Sum of a per-worker gauge family (`reactor.w{i}.<leaf>`).
fn worker_sum(tel: &Telemetry, leaf: &str) -> u64 {
    (0..WORKERS)
        .map(|i| tel.gauge(&format!("reactor.w{i}.{leaf}")).get())
        .sum()
}

fn main() {
    println!("=== observe_live — {NODES} BRISA nodes over TCP, telemetry attached\n");

    let telemetry = Telemetry::enabled();
    let cfg = ClusterConfig {
        nodes: NODES,
        transport: TransportKind::Tcp,
        seed: 0xB215A,
        runtime: RuntimeConfig {
            workers: WORKERS,
            ..RuntimeConfig::default()
        },
        telemetry: telemetry.clone(),
        ..Default::default()
    };
    let stack = BrisaStackConfig {
        hpv: HyParViewConfig::with_active_size(4),
        brisa: BrisaConfig::default(),
    };
    let mut cluster: Cluster<BrisaNode> =
        Cluster::launch(&cfg, &stack).expect("bind listeners and launch nodes");
    println!(
        "cluster up: {} nodes, overlay forming...\n",
        cluster.alive()
    );
    cluster.run_for(Duration::from_secs(1));

    // Publish at ~4/s while the ticker below narrates the registry.
    println!("  sec | deliveries/s | orphans | inbox depth | bp stalls | links reaped");
    println!("  ----+--------------+---------+-------------+-----------+-------------");
    let mut published = 0u64;
    let mut last_delivered = telemetry.counter("brisa.delivered").get();
    for sec in 1..=12u64 {
        for _ in 0..4 {
            if published < MESSAGES {
                cluster.publish(PAYLOAD);
                published += 1;
            }
            cluster.run_for(Duration::from_millis(250));
        }
        cluster.publish_telemetry();
        let delivered = telemetry.counter("brisa.delivered").get();
        let orphans = telemetry
            .counter("brisa.orphans")
            .get()
            .saturating_sub(telemetry.counter("brisa.orphan_heals").get());
        println!(
            "  {sec:3} | {:12} | {orphans:7} | {:11} | {:9} | {:12}",
            delivered - last_delivered,
            worker_sum(&telemetry, "inbox_depth"),
            telemetry.counter("reactor.backpressure_stalls").get(),
            telemetry.counter("reactor.links_reaped").get(),
        );
        last_delivered = delivered;
    }

    let complete = cluster.wait_for_delivery(MESSAGES, Duration::from_secs(30));
    let result = cluster.stop_and_collect();
    println!(
        "\ndelivery rate: {:.1}%{}",
        result.delivery_rate() * 100.0,
        if complete { "" } else { " — INCOMPLETE" },
    );

    // The registry snapshot is one JSON line — what bench_soak's ticker
    // appends to TELEMETRY_SOAK.jsonl every second.
    println!(
        "\nregistry snapshot:\n{}",
        telemetry.snapshot_jsonl(u64::MAX)
    );

    // And the flight recorder holds the structured event history (ring-
    // bounded per shard); show the last few.
    let events = telemetry.dump_events_jsonl(0);
    let lines: Vec<&str> = events.lines().collect();
    println!(
        "\nflight recorder: {} events retained; last 5:",
        lines.len()
    );
    for line in lines.iter().rev().take(5).rev() {
        println!("  {line}");
    }
}
