//! Scale-mode dissemination: stream to a 5 000-node overlay using the
//! streaming result path.
//!
//! Classic runs materialise per-node delivery maps — fine at the paper's
//! 512 nodes, ruinous at 100 000. This example runs the same engine with
//! `ResultMode::Streaming`: nodes keep a seen-bitmap plus a mergeable
//! latency histogram, the simulator meters bandwidth totals only, and the
//! collect phase folds everything into one `StreamingSummary` — including
//! an accounting-based bytes-per-node footprint.
//!
//! ```sh
//! cargo run --release --example scale_stream
//! ```

use brisa::BrisaNode;
use brisa_workloads::{scenarios, BrisaStackConfig, IntoRunSpec, Runner};

fn main() {
    let nodes = 5_000;
    let sc = scenarios::scale_no_fault(nodes);
    let cfg = BrisaStackConfig {
        hpv: sc.hyparview_config(),
        brisa: sc.brisa_config(),
    };
    let started = std::time::Instant::now();
    let result = Runner::<BrisaNode>::new(&cfg, &sc.run_spec()).run();
    let wall = started.elapsed().as_secs_f64();
    let s = result
        .streaming
        .as_ref()
        .expect("scale scenarios use the streaming result path");

    println!(
        "scale-mode stream: {nodes} nodes, {} messages",
        result.messages_published
    );
    println!(
        "  delivery: {:.3}%  completeness: {:.3}%",
        result.delivery_rate() * 100.0,
        result.completeness() * 100.0
    );
    println!(
        "  latency: p50 {:.2} ms  p99 {:.2} ms  mean {:.2} ms  ({} samples)",
        s.latency.quantile_ms(0.50),
        s.latency.quantile_ms(0.99),
        s.latency.mean_ms(),
        s.latency.count()
    );
    println!(
        "  footprint: {:.0} bytes/node ({} nodes, {:.1} MB accounted)",
        s.footprint.bytes_per_node(),
        s.footprint.nodes,
        s.footprint.total_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  traffic: {:.1} MB up / {:.1} MB down",
        s.uploaded_bytes as f64 / (1024.0 * 1024.0),
        s.downloaded_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  {} simulator events in {wall:.2}s wall ({:.0} events/s)",
        result.sim_events(),
        result.sim_events() as f64 / wall.max(1e-9)
    );
    assert_eq!(
        result.delivery_rate(),
        1.0,
        "no-fault runs deliver everything"
    );
}
