//! Quickstart: build a small BRISA overlay, stream a few messages, and
//! inspect the emerged dissemination tree.
//!
//! Run with: `cargo run -p brisa-bench --release --example quickstart`

use brisa::{BrisaConfig, BrisaNode};
use brisa_membership::HyParViewConfig;
use brisa_simnet::{latency::ClusterLatency, Network, NetworkConfig, SimDuration, SimTime};

fn main() {
    let nodes = 32u32;
    let messages = 20u64;

    // 1. Create the simulated network (a switched-LAN latency model).
    let mut net: Network<BrisaNode> = Network::new(
        NetworkConfig::default(),
        Box::new(ClusterLatency::default()),
    );

    // 2. Add the source (also the join contact point), then the other nodes.
    let source = net.add_node(|id| {
        let mut n = BrisaNode::new(id, HyParViewConfig::default(), BrisaConfig::default(), None);
        n.mark_source();
        n
    });
    for i in 1..nodes {
        net.add_node_at(SimTime::from_millis(20 * i as u64), move |id| {
            BrisaNode::new(id, HyParViewConfig::default(), BrisaConfig::default(), Some(source))
        });
    }

    // 3. Let HyParView stabilise, then publish a stream of messages.
    net.run_until(SimTime::from_secs(20));
    for _ in 0..messages {
        net.invoke(source, |node, ctx| node.publish(ctx, 1024));
        net.run_for(SimDuration::from_millis(200));
    }
    net.run_for(SimDuration::from_secs(5));

    // 4. Inspect what emerged.
    println!("node  parent  depth  children  delivered  dup/msg");
    for id in net.alive_ids() {
        let b = net.node(id).unwrap().brisa();
        let stats = b.stats();
        println!(
            "{:>4}  {:>6}  {:>5}  {:>8}  {:>9}  {:>7.2}",
            id.to_string(),
            b.parents().first().map(|p| p.to_string()).unwrap_or_else(|| "-".into()),
            b.depth().map(|d| d.to_string()).unwrap_or_else(|| "-".into()),
            b.children().len(),
            stats.delivered,
            stats.duplicates_per_message(),
        );
    }
    let total_dup: u64 = net
        .alive_ids()
        .iter()
        .map(|&id| net.node(id).unwrap().brisa().stats().duplicates)
        .sum();
    println!("\n{} nodes, {} messages, {} duplicate receptions in total", nodes, messages, total_dup);
    println!("(duplicates stem from the bootstrap flood of the first message only)");
}
