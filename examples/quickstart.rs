//! Quickstart: run a small BRISA experiment through the generic engine and
//! inspect the emerged dissemination tree.
//!
//! This is the smallest end-to-end use of the public experiment API:
//! describe the run with a [`BrisaScenario`], execute it with [`run_brisa`]
//! (a thin adapter over `Runner::<BrisaNode>`), and read per-node metrics
//! off the result. The same engine drives every figure/table binary in
//! `brisa-bench`.
//!
//! Run with: `cargo run -p brisa-bench --release --example quickstart`

use brisa_simnet::SimDuration;
use brisa_workloads::{run_brisa, BrisaScenario, StreamSpec};

fn main() {
    // 1. Describe the experiment: 32 nodes on the cluster testbed, twenty
    //    1 KB messages at 5/s, no churn.
    let scenario = BrisaScenario {
        nodes: 32,
        view_size: 4,
        stream: StreamSpec {
            messages: 20,
            rate_per_sec: 5.0,
            payload_bytes: 1024,
        },
        bootstrap: SimDuration::from_secs(20),
        drain: SimDuration::from_secs(5),
        ..Default::default()
    };

    // 2. Run it. Bootstrap, stream injection and metric collection all
    //    happen inside the generic engine.
    let result = run_brisa(&scenario);

    // 3. Inspect what emerged.
    println!("node  parent  depth  children  delivered  dup/msg");
    for n in &result.nodes {
        println!(
            "{:>4}  {:>6}  {:>5}  {:>8}  {:>9}  {:>7.2}",
            n.id.to_string(),
            n.parents
                .first()
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            n.depth.map(|d| d.to_string()).unwrap_or_else(|| "-".into()),
            n.degree,
            n.delivered,
            n.duplicates_per_message,
        );
    }
    let total_dup: f64 = result
        .nodes
        .iter()
        .map(|n| n.duplicates_per_message * n.delivered as f64)
        .sum();
    println!(
        "\n{} nodes, {} messages, completeness {:.1}%, ~{:.0} duplicate receptions in total",
        scenario.nodes,
        result.messages_published,
        result.completeness() * 100.0,
        total_dup
    );
    println!("(duplicates stem from the bootstrap flood of the first message only)");
    assert!(
        result.structure.is_acyclic(),
        "the emerged structure must be a tree"
    );
}
