//! Scale-mode integration tests: the streaming result path must agree with
//! the classic per-node path, the scale events must behave, and the
//! bytes-per-node footprint must stay bounded.

use brisa::BrisaNode;
use brisa_bench::{BrisaScenario, BrisaStackConfig, EngineResult};
use brisa_metrics::LatencyHistogram;
use brisa_simnet::SimDuration;
use brisa_workloads::{
    scenarios, IntoRunSpec, ResultMode, Runner, ScaleEvent, ScaleEventKind, SchedulerKind,
};

fn run(sc: &BrisaScenario, scheduler: SchedulerKind) -> EngineResult {
    let cfg = BrisaStackConfig {
        hpv: sc.hyparview_config(),
        brisa: sc.brisa_config(),
    };
    let mut spec = sc.run_spec();
    spec.scheduler = scheduler;
    Runner::<BrisaNode>::new(&cfg, &spec).run()
}

/// Rebuilds the latency histogram a streaming run would produce from a
/// classic run's exact first-delivery records.
fn classic_latency_hist(r: &EngineResult) -> LatencyHistogram {
    let mut hist = LatencyHistogram::new();
    for n in &r.nodes {
        for &(seq, t) in &n.report.first_delivery {
            let published = r.publish_times[seq as usize];
            hist.record_us(t.saturating_since(published).as_micros());
        }
    }
    hist
}

/// The streaming result path is bookkeeping, not behaviour: on both
/// schedulers, a streaming run must process the identical event sequence as
/// the classic run of the same scenario and summarise it to the same
/// delivery numbers — including a bit-identical latency histogram.
#[test]
fn streaming_results_agree_with_classic_path() {
    for scheduler in [SchedulerKind::TimingWheel, SchedulerKind::BinaryHeap] {
        let classic_sc = BrisaScenario::small_test(48);
        let streaming_sc = BrisaScenario {
            results: ResultMode::Streaming,
            ..classic_sc.clone()
        };
        let classic = run(&classic_sc, scheduler);
        let streaming = run(&streaming_sc, scheduler);

        // Identical simulation underneath.
        assert_eq!(
            classic.net_stats.events_processed, streaming.net_stats.events_processed,
            "streaming mode changed the simulation itself ({scheduler:?})"
        );
        assert_eq!(
            classic.net_stats.messages_sent,
            streaming.net_stats.messages_sent
        );
        assert_eq!(classic.publish_times, streaming.publish_times);

        // Identical summary numbers on top.
        let s = streaming.streaming.as_ref().expect("streaming summary");
        assert!(classic.streaming.is_none());
        assert!(streaming.nodes.is_empty(), "no per-node materialisation");
        assert_eq!(classic.delivery_rate(), streaming.delivery_rate());
        assert_eq!(classic.completeness(), streaming.completeness());
        let classic_delivered: u64 = classic.nodes.iter().map(|n| n.report.delivered).sum();
        assert_eq!(classic_delivered, s.delivered_total);
        assert_eq!(classic_latency_hist(&classic), s.latency);
        assert!(s.latency.count() > 0, "latencies were streamed");
        assert!(s.footprint.nodes >= 48);
        assert!(s.uploaded_bytes > 0);
    }
}

/// Streaming runs are scheduler-independent like every other run: the full
/// fingerprint (which covers the streaming summary) must match between the
/// timing wheel and the binary heap.
#[test]
fn streaming_fingerprint_is_scheduler_equivalent() {
    let sc = BrisaScenario {
        results: ResultMode::Streaming,
        ..BrisaScenario::small_test(40)
    };
    let wheel = run(&sc, SchedulerKind::TimingWheel);
    let heap = run(&sc, SchedulerKind::BinaryHeap);
    assert_eq!(wheel.fingerprint(), heap.fingerprint());
}

/// A flash crowd joins mid-stream: the original population still delivers
/// everything, and the joiners (identifiers `>= nodes`) are counted as
/// joins, not as eligible receivers.
#[test]
fn flash_crowd_joins_mid_stream() {
    let sc = BrisaScenario {
        events: vec![ScaleEvent {
            after: SimDuration::from_secs(1),
            kind: ScaleEventKind::FlashCrowd { joiners: 16 },
        }],
        results: ResultMode::Streaming,
        ..BrisaScenario::small_test(48)
    };
    let r = run(&sc, SchedulerKind::TimingWheel);
    assert_eq!(r.joins_injected, 16);
    assert_eq!(r.failures_injected, 0);
    let s = r.streaming.as_ref().unwrap();
    assert_eq!(s.eligible, 47, "joiners are not eligible receivers");
    assert_eq!(
        r.delivery_rate(),
        1.0,
        "the original overlay keeps delivering through the flash crowd"
    );
}

/// Half the overlay crashes at once: the survivors repair and keep
/// receiving the stream.
#[test]
fn mass_crash_survivors_recover() {
    let sc = BrisaScenario {
        events: vec![ScaleEvent {
            after: SimDuration::from_secs(2),
            kind: ScaleEventKind::MassCrash { fraction: 0.5 },
        }],
        drain: SimDuration::from_secs(30),
        results: ResultMode::Streaming,
        ..BrisaScenario::small_test(48)
    };
    let r = run(&sc, SchedulerKind::TimingWheel);
    assert_eq!(r.failures_injected, 24, "47 non-source × 0.5 rounded");
    let s = r.streaming.as_ref().unwrap();
    assert_eq!(s.eligible, 23, "47 originals - 24 victims");
    assert!(
        r.delivery_rate() >= 0.99,
        "survivors must close their gaps: {}",
        r.delivery_rate()
    );
}

/// The memory-footprint regression bound: in scale mode a node costs a
/// bounded number of accounted bytes, independent of how many messages the
/// stream carried. The pin includes ~40 % headroom over the measured value;
/// a regression that reintroduces per-message per-node state (delivery
/// maps, per-second bandwidth buckets) blows through it immediately.
#[test]
fn scale_mode_bytes_per_node_stays_bounded() {
    let sc = BrisaScenario {
        results: ResultMode::Streaming,
        ..BrisaScenario::small_test(512)
    };
    let r = run(&sc, SchedulerKind::TimingWheel);
    let s = r.streaming.as_ref().unwrap();
    let per_node = s.footprint.bytes_per_node();
    assert!(
        per_node < 6000.0,
        "scale-mode footprint regressed: {per_node:.0} bytes/node \
         (total {} over {} nodes)",
        s.footprint.total_bytes(),
        s.footprint.nodes
    );
    // The classic path at the same size keeps strictly more state.
    let classic = run(&BrisaScenario::small_test(512), SchedulerKind::TimingWheel);
    assert!(classic.streaming.is_none());

    // And the full scale suite stays in streaming mode end to end.
    for (label, sc) in scenarios::scale_suite(256) {
        let r = run(&sc, SchedulerKind::TimingWheel);
        let s = r.streaming.as_ref().unwrap_or_else(|| panic!("{label}"));
        assert!(
            s.footprint.bytes_per_node() < 6000.0,
            "{label}: {:.0} bytes/node",
            s.footprint.bytes_per_node()
        );
    }
}
