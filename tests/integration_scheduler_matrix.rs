//! Scheduler equivalence pinned per experiment.
//!
//! `tests/integration_properties.rs` proves the timing wheel and the
//! `BinaryHeap` reference pop identically on synthetic op streams and on
//! one BRISA workload; this suite pins the same golden guarantee for
//! **every figure/table scenario family** of the paper at `small_test`
//! scale: each experiment, shrunk to a few seconds of simulated time, must
//! produce a bit-identical fingerprint under both schedulers. A divergence
//! anywhere in the stack — scheduler, fault layer, protocol — names the
//! experiment it broke.

use brisa::BrisaNode;
use brisa_baselines::{
    FloodNode, GossipConfig, SimpleGossipNode, SimpleTreeNode, TagConfig, TagNode,
};
use brisa_membership::HyParViewConfig;
use brisa_simnet::SimDuration;
use brisa_workloads::{
    scenarios, BaselineScenario, BrisaScenario, BrisaStackConfig, ChurnSpec, DisseminationProtocol,
    IntoRunSpec, RunSpec, Runner, Scale, SchedulerKind, StreamSpec,
};

/// Runs `P` on both schedulers and asserts fingerprint equality.
fn assert_scheduler_equivalence<P: DisseminationProtocol + Send>(
    family: &str,
    cfg: &P::Config,
    spec: &RunSpec,
) where
    P::Message: Send,
{
    let run = |scheduler: SchedulerKind| {
        let mut spec = spec.clone();
        spec.scheduler = scheduler;
        Runner::<P>::new(cfg, &spec).run().fingerprint()
    };
    let wheel = run(SchedulerKind::TimingWheel);
    let heap = run(SchedulerKind::BinaryHeap);
    assert_eq!(
        wheel, heap,
        "experiment family `{family}`: schedulers diverged"
    );
    assert!(
        wheel.contains(":d"),
        "experiment family `{family}`: fingerprint is vacuous"
    );
}

/// Shrinks any BRISA scenario to `small_test` scale while preserving its
/// qualitative knobs (mode, strategy, testbed, view size, churn, faults).
fn shrink(sc: BrisaScenario) -> BrisaScenario {
    BrisaScenario {
        nodes: sc.nodes.min(28),
        stream: StreamSpec::short(6, 256),
        churn: sc.churn.map(|c| ChurnSpec {
            interval: SimDuration::from_secs(10),
            duration: SimDuration::from_secs(30),
            ..c
        }),
        bootstrap: SimDuration::from_secs(20),
        drain: SimDuration::from_secs(10),
        ..sc
    }
}

fn check_brisa(family: &str, sc: BrisaScenario) {
    let sc = shrink(sc);
    let cfg = BrisaStackConfig {
        hpv: sc.hyparview_config(),
        brisa: sc.brisa_config(),
    };
    assert_scheduler_equivalence::<BrisaNode>(family, &cfg, &sc.run_spec());
}

fn small_baseline(nodes: u32, view_size: usize) -> BaselineScenario {
    BaselineScenario {
        view_size,
        stream: StreamSpec::short(6, 256),
        drain: SimDuration::from_secs(10),
        ..BaselineScenario::small_test(nodes)
    }
}

#[test]
fn fig02_duplicates_flood() {
    let (_, _, payload, views) = scenarios::fig2(Scale::Quick);
    let sc = BaselineScenario {
        stream: StreamSpec::short(6, payload),
        ..small_baseline(24, views[0])
    };
    let cfg = HyParViewConfig::with_active_size(sc.view_size);
    assert_scheduler_equivalence::<FloodNode>("fig02", &cfg, &sc.run_spec());
}

#[test]
fn fig06_07_depth_degree() {
    for (i, sc) in scenarios::fig6_7(Scale::Quick).into_iter().enumerate() {
        // One tree and one DAG cell pin the family; the other two only
        // vary the view size.
        if i == 0 || i == 2 {
            check_brisa("fig06_07", sc);
        }
    }
}

#[test]
fn fig08_tree_shape() {
    let sc = scenarios::fig8(Scale::Quick).remove(0);
    check_brisa("fig08", sc);
}

#[test]
fn fig09_routing_delay_planetlab() {
    // The delay-aware cell exercises the PlanetLab latency model and the
    // RTT-driven strategy.
    let sc = scenarios::fig9(Scale::Quick).remove(1);
    check_brisa("fig09", sc);
}

#[test]
fn fig10_11_bandwidth() {
    let (_, mut cells) = scenarios::fig10_11(Scale::Quick);
    check_brisa("fig10_11", cells.remove(0));
}

#[test]
fn fig12_table2_comparison_baselines() {
    let (_, _, stream) = scenarios::comparison(Scale::Quick);
    let sc = BaselineScenario {
        stream: StreamSpec {
            messages: 6,
            ..stream
        },
        ..small_baseline(24, 4)
    };
    let spec = sc.run_spec();
    assert_scheduler_equivalence::<TagNode>("table2/tag", &TagConfig::default(), &spec);
    assert_scheduler_equivalence::<SimpleTreeNode>("table2/simple_tree", &(), &spec);
    assert_scheduler_equivalence::<SimpleGossipNode>(
        "table2/simple_gossip",
        &GossipConfig::default(),
        &spec,
    );
}

#[test]
fn fig13_construction_time_tag_planetlab() {
    let (testbed, _) = scenarios::fig13(Scale::Quick)[1];
    let sc = BaselineScenario {
        testbed,
        ..small_baseline(24, 4)
    };
    assert_scheduler_equivalence::<TagNode>("fig13", &TagConfig::default(), &sc.run_spec());
}

#[test]
fn table1_churn_grid() {
    let (_, _, _, sc) = scenarios::table1(Scale::Quick).remove(0);
    check_brisa("table1", sc);
}

#[test]
fn fig14_recovery_under_churn() {
    let (nodes, churn, stream) = scenarios::fig14(Scale::Quick);
    check_brisa(
        "fig14",
        BrisaScenario {
            nodes,
            churn: Some(churn),
            stream,
            ..Default::default()
        },
    );
}

#[test]
fn fault_sweeps_scheduler_equivalence() {
    // The new adversarial scenarios are pinned like every other family:
    // loss and partition runs must be scheduler-independent too.
    let (_, sc) = scenarios::fault_loss_sweep(Scale::Quick).remove(2);
    check_brisa("fault_loss", sc);
    let (_, sc) = scenarios::fault_partition_sweep(Scale::Quick).remove(0);
    check_brisa("fault_partition", sc);
}
