//! The out-of-band contract of the telemetry subsystem, pinned by
//! fingerprints.
//!
//! Telemetry (PR 9) threads a handle through the simulator, the
//! membership layer and the BRISA core. Its hard constraint is the same
//! discipline PR 3 established for the inert fault layer: **observing a
//! run must not change it**. This suite pins three equalities on the
//! engine's full behavioural fingerprint, under both schedulers:
//!
//! 1. a run through `Runner::new(..).telemetry(..)` with a *disabled*
//!    handle is bit-identical to the plain `Runner::new(..).run()` path
//!    that never mentions telemetry at all;
//! 2. a run with an *enabled* handle — counters registered, flight
//!    recorder capturing every protocol event — is bit-identical to both;
//! 3. the enabled run actually recorded something, so the equalities are
//!    not vacuous.

use brisa::BrisaNode;
use brisa_simnet::SimDuration;
use brisa_telemetry::{Telemetry, TelemetryConfig};
use brisa_workloads::{
    BrisaScenario, BrisaStackConfig, ChurnSpec, FaultSpec, IntoRunSpec, RunSpec, Runner,
    SchedulerKind, StreamSpec,
};

/// A small but eventful scenario: churn plus loss, so the run exercises
/// orphan repair, gap recovery and partition-free fault traffic — the
/// instrumented paths whose telemetry must stay out-of-band.
fn eventful_spec(scheduler: SchedulerKind) -> (BrisaStackConfig, RunSpec) {
    let sc = BrisaScenario {
        nodes: 24,
        stream: StreamSpec::short(8, 256),
        churn: Some(ChurnSpec {
            interval: SimDuration::from_secs(10),
            duration: SimDuration::from_secs(30),
            ..ChurnSpec::default()
        }),
        faults: FaultSpec::loss(0.02),
        bootstrap: SimDuration::from_secs(20),
        drain: SimDuration::from_secs(15),
        ..BrisaScenario::small_test(24)
    };
    let cfg = BrisaStackConfig {
        hpv: sc.hyparview_config(),
        brisa: sc.brisa_config(),
    };
    let mut spec = sc.run_spec();
    spec.scheduler = scheduler;
    (cfg, spec)
}

/// Fingerprint of a run with the given handle (None = the plain
/// pre-telemetry entry point).
fn fingerprint(scheduler: SchedulerKind, telemetry: Option<&Telemetry>) -> String {
    let (cfg, spec) = eventful_spec(scheduler);
    match telemetry {
        None => Runner::<BrisaNode>::new(&cfg, &spec).run().fingerprint(),
        Some(tel) => Runner::<BrisaNode>::new(&cfg, &spec)
            .telemetry(tel)
            .run()
            .fingerprint(),
    }
}

fn check_scheduler(scheduler: SchedulerKind) {
    let plain = fingerprint(scheduler, None);
    let disabled = fingerprint(scheduler, Some(&Telemetry::disabled()));
    let enabled_handle = Telemetry::with_config(TelemetryConfig::default());
    let enabled = fingerprint(scheduler, Some(&enabled_handle));

    assert_eq!(
        plain, disabled,
        "{scheduler:?}: a disabled telemetry handle changed the run"
    );
    assert_eq!(
        plain, enabled,
        "{scheduler:?}: an enabled telemetry handle changed the run"
    );
    assert!(
        plain.contains(":d"),
        "{scheduler:?}: fingerprint is vacuous"
    );

    // Not vacuous on the telemetry side either: the enabled run left a
    // trail — registered counters in the snapshot and captured events in
    // the flight recorder (churn guarantees adopt/orphan traffic).
    let snapshot = enabled_handle.snapshot_jsonl(u64::MAX);
    assert!(
        snapshot.contains("brisa.delivered"),
        "{scheduler:?}: enabled run registered no protocol counters: {snapshot}"
    );
    assert!(
        snapshot.contains("hpv.shuffles"),
        "{scheduler:?}: enabled run registered no membership counters"
    );
    let recorder = enabled_handle.recorder().expect("enabled handle");
    assert!(
        recorder.total_recorded() > 0,
        "{scheduler:?}: enabled run recorded no flight-recorder events"
    );
}

#[test]
fn telemetry_is_out_of_band_on_the_timing_wheel() {
    check_scheduler(SchedulerKind::TimingWheel);
}

#[test]
fn telemetry_is_out_of_band_on_the_binary_heap() {
    check_scheduler(SchedulerKind::BinaryHeap);
}

/// Two enabled runs of the same spec also agree with each other — the
/// handle holds no per-run state that could leak into behaviour.
#[test]
fn enabled_runs_are_mutually_deterministic() {
    let a = fingerprint(SchedulerKind::TimingWheel, Some(&Telemetry::enabled()));
    let b = fingerprint(SchedulerKind::TimingWheel, Some(&Telemetry::enabled()));
    assert_eq!(a, b);
}
