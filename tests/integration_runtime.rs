//! Integration tests of the live runtime: the sans-IO stack executing in
//! wall-clock time over real transports.
//!
//! Wall-clock runs are not bit-reproducible, so these tests assert the
//! properties that *must* hold on any healthy run — 100% delivery, no
//! duplicate deliveries, sim/live agreement on the delivery outcome — with
//! deadlines generous enough for a loaded CI box.

use brisa::{BrisaConfig, BrisaNode};
use brisa_membership::{HpvMsg, HyParViewConfig};
use brisa_runtime::executor::{NodeRuntime, WallClock};
use brisa_runtime::tcp::TcpMesh;
use brisa_runtime::{Cluster, ClusterConfig, TransportKind};
use brisa_simnet::{Context, NodeId, Protocol, SimDuration, TimerTag};
use brisa_workloads::{
    BrisaScenario, BrisaStackConfig, EngineResult, IntoRunSpec, Runner, StreamSpec,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn stack_config(active_size: usize) -> BrisaStackConfig {
    BrisaStackConfig {
        hpv: HyParViewConfig::with_active_size(active_size),
        brisa: BrisaConfig::default(),
    }
}

/// Publishes `messages` payloads at a steady cadence and waits until every
/// node delivered them all (or the deadline passes).
fn drive_stream(
    cluster: &mut Cluster<BrisaNode>,
    messages: u64,
    payload: usize,
    deadline: Duration,
) -> bool {
    for _ in 0..messages {
        cluster.publish(payload);
        cluster.run_for(Duration::from_millis(40));
    }
    cluster.wait_for_delivery(messages, deadline)
}

/// The acceptance bar: a ≥16-node cluster on real TCP sockets delivers
/// 100% of the stream.
#[test]
fn tcp_cluster_delivers_everything() {
    let cfg = ClusterConfig {
        nodes: 16,
        transport: TransportKind::Tcp,
        seed: 7,
        ..Default::default()
    };
    let mut cluster: Cluster<BrisaNode> =
        Cluster::launch(&cfg, &stack_config(4)).expect("bind + launch");
    // Let the overlay and the first dissemination structure form.
    cluster.run_for(Duration::from_millis(500));
    let complete = drive_stream(&mut cluster, 8, 1024, Duration::from_secs(60));
    let result = cluster.stop_and_collect();
    assert!(
        complete,
        "stream did not complete: rate={} fp={}",
        result.delivery_rate(),
        result.delivery_fingerprint()
    );
    assert_eq!(result.nodes.len(), 16);
    assert_eq!(
        result.delivery_rate(),
        1.0,
        "every node delivers everything"
    );
    assert_eq!(result.completeness(), 1.0);
    // Zero duplicate deliveries + structurally sane delivery records,
    // checked with the engine's own invariant logic applied offline.
    result
        .check_delivery_invariants()
        .expect("live trace passes the delivery invariants");
    // Real traffic moved through the codec.
    let (frames, bytes) = result.frames_and_bytes_out();
    assert!(frames > 0 && bytes > 0);
    assert_eq!(
        result
            .nodes
            .iter()
            .map(|n| n.stats.decode_errors)
            .sum::<u64>(),
        0,
        "no frame failed to decode"
    );
}

/// Extracts the per-node delivered-sequence sets of a simulated run.
fn sim_delivered_sets(r: &EngineResult) -> BTreeMap<u32, Vec<u64>> {
    r.nodes
        .iter()
        .map(|n| {
            (
                n.id.0,
                n.report.first_delivery.iter().map(|&(s, _)| s).collect(),
            )
        })
        .collect()
}

/// The same broadcast scenario on the sim engine and on the loopback-mesh
/// runtime produces the same delivery outcome: identical delivery sets and
/// zero duplicate deliveries on both sides.
#[test]
fn sim_and_live_agree_on_the_delivery_outcome() {
    const NODES: u32 = 12;
    const MESSAGES: u64 = 5;
    const PAYLOAD: usize = 256;

    // Simulated run.
    let scenario = BrisaScenario {
        nodes: NODES,
        stream: StreamSpec::short(MESSAGES, PAYLOAD),
        bootstrap: SimDuration::from_secs(20),
        drain: SimDuration::from_secs(10),
        ..Default::default()
    };
    let spec = scenario.run_spec();
    let sim = Runner::<BrisaNode>::new(&stack_config(4), &spec).run();
    assert_eq!(sim.messages_published, MESSAGES);

    // Live run on the loopback mesh.
    let cfg = ClusterConfig {
        nodes: NODES,
        transport: TransportKind::Loopback,
        seed: scenario.seed,
        ..Default::default()
    };
    let mut cluster: Cluster<BrisaNode> = Cluster::launch(&cfg, &stack_config(4)).expect("launch");
    cluster.run_for(Duration::from_millis(400));
    let complete = drive_stream(&mut cluster, MESSAGES, PAYLOAD, Duration::from_secs(60));
    let live = cluster.stop_and_collect();
    assert!(
        complete,
        "live stream incomplete: {}",
        live.delivery_fingerprint()
    );

    // Same delivery sets, node by node.
    assert_eq!(sim_delivered_sets(&sim), live.delivered_sets());
    // Zero duplicate deliveries on both sides: each node's first-delivery
    // records are exactly its delivered count, one per sequence number.
    for n in &sim.nodes {
        assert_eq!(n.report.first_delivery.len() as u64, n.report.delivered);
        let uniq: BTreeSet<u64> = n.report.first_delivery.iter().map(|&(s, _)| s).collect();
        assert_eq!(
            uniq.len() as u64,
            n.report.delivered,
            "sim node {} duplicated",
            n.id
        );
    }
    live.check_delivery_invariants()
        .expect("live trace passes the delivery invariants");
}

/// Killing a node mid-stream: surviving nodes repair over live transports
/// (link-down → HyParView → BRISA repair → gap retransmission) and still
/// deliver the whole stream.
///
/// BRISA's gap recovery is data-driven — a hole is detected when a *later*
/// message arrives — so, like the sim engine's churn runs ("the stream
/// keeps flowing for the whole churn window so repairs complete through
/// regular traffic"), the stream must keep flowing until the structure has
/// re-stabilised: a message lost in a parent-switch window with nothing
/// published after it would be an invisible tail gap by design.
#[test]
fn loopback_cluster_survives_a_kill_mid_stream() {
    let cfg = ClusterConfig {
        nodes: 16,
        transport: TransportKind::Loopback,
        seed: 11,
        ..Default::default()
    };
    let mut cluster: Cluster<BrisaNode> = Cluster::launch(&cfg, &stack_config(4)).expect("launch");
    cluster.run_for(Duration::from_millis(500));
    for _ in 0..3 {
        cluster.publish(512);
        cluster.run_for(Duration::from_millis(40));
    }
    assert!(cluster.wait_for_delivery(3, Duration::from_secs(60)));

    // Kill a relay (a node currently serving children), not just a leaf.
    let victim = cluster
        .snapshot_reports()
        .iter()
        .find(|(id, r)| *id != cluster.source() && r.degree > 0)
        .map(|(id, _)| *id)
        .unwrap_or(NodeId(1));
    cluster.kill(victim);

    // Publish through the repair window (soft repair escalates after 2s,
    // hard repairs retry every 2s), then keep the stream alive until every
    // survivor has caught up — each new message reveals any remaining gap
    // to the maintenance-tick re-requests.
    let mut published = 3u64;
    for _ in 0..3 {
        cluster.publish(512);
        published += 1;
        cluster.run_for(Duration::from_millis(300));
    }
    while !cluster.wait_for_delivery(published, Duration::from_secs(5)) && published < 20 {
        cluster.publish(512);
        published += 1;
    }
    let complete = cluster.wait_for_delivery(published, Duration::from_secs(60));
    let result = cluster.stop_and_collect();
    assert!(
        complete,
        "survivors did not recover the stream: {}",
        result.delivery_fingerprint()
    );
    assert_eq!(result.nodes.len(), 15, "the victim is excluded");
    assert_eq!(result.delivery_rate(), 1.0);
    result
        .check_delivery_invariants()
        .expect("clean live trace");
}

// ---------------------------------------------------------------------------
// Transport-level link-down probing
// ---------------------------------------------------------------------------

/// Everything a probe node observed, shared with the test body.
#[derive(Default)]
struct ProbeLog {
    messages: Vec<(NodeId, u64)>,
    link_downs: Vec<NodeId>,
}

/// A minimal protocol that opens a monitored connection to a peer, sends
/// one keep-alive, and records what comes back. Runs over the real stack
/// codec so the TCP path is exercised end to end.
struct Probe {
    peer: Option<NodeId>,
    log: Arc<Mutex<ProbeLog>>,
}

impl Protocol for Probe {
    type Message = brisa::StackMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>) {
        if let Some(peer) = self.peer {
            ctx.open_connection(peer);
            ctx.send(peer, brisa::StackMsg::Hpv(HpvMsg::KeepAlive { nonce: 99 }));
        }
    }

    fn on_message(
        &mut self,
        _ctx: &mut Context<'_, Self::Message>,
        from: NodeId,
        msg: Self::Message,
    ) {
        if let brisa::StackMsg::Hpv(HpvMsg::KeepAlive { nonce }) = msg {
            self.log.lock().unwrap().messages.push((from, nonce));
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, Self::Message>, _tag: TimerTag) {}

    fn on_link_down(&mut self, _ctx: &mut Context<'_, Self::Message>, peer: NodeId) {
        self.log.lock().unwrap().link_downs.push(peer);
    }
}

/// TCP failure detection surfaces as `on_link_down`: when a peer under an
/// open connection stops, the survivor's protocol hears about it.
#[test]
fn tcp_link_down_reaches_the_protocol() {
    let mesh = TcpMesh::bind(2).expect("bind");
    let clock = WallClock::new();
    let log0 = Arc::new(Mutex::new(ProbeLog::default()));
    let log1 = Arc::new(Mutex::new(ProbeLog::default()));

    let mut runtimes = Vec::new();
    for (i, log) in [(0u32, &log0), (1u32, &log1)] {
        let probe = Probe {
            // Node 0 monitors node 1.
            peer: (i == 0).then_some(NodeId(1)),
            log: Arc::clone(log),
        };
        runtimes.push(NodeRuntime::launch(
            NodeId(i),
            probe,
            1,
            clock,
            |pool, _sink| {
                pool.add_listener(NodeId(i), mesh.take_listener(NodeId(i)), mesh.addrs());
                pool.tcp_transport(NodeId(i))
            },
        ));
    }

    // The keep-alive from 0 reaches 1 over a real socket.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while log1.lock().unwrap().messages.is_empty() {
        assert!(
            std::time::Instant::now() < deadline,
            "keep-alive never arrived"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(log1.lock().unwrap().messages[0], (NodeId(0), 99));

    // Stop node 1; node 0 must observe the link going down.
    let rt1 = runtimes.pop().unwrap();
    let _ = rt1.join();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while log0.lock().unwrap().link_downs.is_empty() {
        assert!(
            std::time::Instant::now() < deadline,
            "link-down never surfaced"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(log0.lock().unwrap().link_downs[0], NodeId(1));

    let rt0 = runtimes.pop().unwrap();
    let _ = rt0.join();
}
