//! Integration tests of the chaos-soak machinery: the transport fault
//! shim, the kill → restart → rejoin lifecycle, and the live chaos runner.
//!
//! Wall-clock runs are not bit-reproducible, so — like the runtime
//! integration tests — these assert the properties any healthy run must
//! show: full delivery through shim-injected loss, contiguous-suffix
//! catch-up after a restart (buffer anchoring), and clean online
//! invariant sweeps, with deadlines generous enough for a loaded CI box.

use brisa::{BrisaConfig, BrisaNode};
use brisa_membership::HyParViewConfig;
use brisa_runtime::{run_chaos, Cluster, ClusterConfig, SoakConfig, TransportKind};
use brisa_simnet::{NodeId, SimDuration};
use brisa_workloads::chaos::{ChaosEvent, ChaosEventKind, ChaosSchedule};
use brisa_workloads::{BrisaStackConfig, FaultSpec, StreamSpec};
use std::time::Duration;

fn stack_config(active_size: usize) -> BrisaStackConfig {
    BrisaStackConfig {
        hpv: HyParViewConfig::with_active_size(active_size),
        brisa: BrisaConfig::default(),
    }
}

/// Keeps the stream flowing until every live non-source node has the full
/// stream (BRISA's gap detector is data-driven: a hole is only visible
/// once a later message arrives), up to `max_messages`. Returns the number
/// published.
fn publish_until_complete(
    cluster: &mut Cluster<BrisaNode>,
    mut published: u64,
    payload: usize,
    max_messages: u64,
) -> u64 {
    while !cluster.wait_for_delivery(published, Duration::from_secs(5)) && published < max_messages
    {
        cluster.publish(payload);
        published += 1;
    }
    assert!(
        cluster.wait_for_delivery(published, Duration::from_secs(60)),
        "stream never completed at {published} messages"
    );
    published
}

/// The shim-loss acceptance bar: a live cluster behind the fault shim at
/// 1 % per-link loss still reaches 100 % delivery — the runtime mirror of
/// the sim fault sweep's headline row — and the shim demonstrably dropped
/// real frames to get there.
#[test]
fn shim_loss_cluster_delivers_everything() {
    let cfg = ClusterConfig {
        nodes: 12,
        transport: TransportKind::Loopback,
        seed: 0x50AC,
        fault_shim: true,
        ..Default::default()
    };
    let mut cluster: Cluster<BrisaNode> = Cluster::launch(&cfg, &stack_config(4)).expect("launch");
    cluster.run_for(Duration::from_millis(500));
    cluster
        .shim()
        .expect("launched with the shim")
        .set_link_faults(FaultSpec::loss(0.01).link_faults());

    let mut published = 0u64;
    for _ in 0..20 {
        cluster.publish(512);
        published += 1;
        cluster.run_for(Duration::from_millis(40));
    }
    let published = publish_until_complete(&mut cluster, published, 512, 60);
    let stats = cluster.shim().unwrap().stats();
    let result = cluster.stop_and_collect();

    assert_eq!(result.messages_published, published);
    assert_eq!(result.delivery_rate(), 1.0, "loss must be fully repaired");
    assert_eq!(result.completeness(), 1.0);
    result
        .check_delivery_invariants()
        .expect("clean live trace");
    assert!(
        stats.frames_lost > 0,
        "1% loss over {} frames never dropped anything — the shim is inert",
        stats.frames_passed
    );
}

/// Kill → restart → rejoin: the restarted node comes back under the same
/// identifier with empty state, rejoins through the contact, and catches
/// up to a **contiguous suffix** of the stream (buffer anchoring: once it
/// anchors, gap recovery closes every hole behind the live edge — no
/// mid-suffix holes allowed). Survivors deliver everything.
#[test]
fn restart_rejoins_and_catches_up_contiguously() {
    let cfg = ClusterConfig {
        nodes: 12,
        transport: TransportKind::Loopback,
        seed: 0x2E57A27,
        ..Default::default()
    };
    let mut cluster: Cluster<BrisaNode> = Cluster::launch(&cfg, &stack_config(4)).expect("launch");
    cluster.run_for(Duration::from_millis(500));

    let mut published = 0u64;
    for _ in 0..5 {
        cluster.publish(256);
        published += 1;
        cluster.run_for(Duration::from_millis(40));
    }
    assert!(cluster.wait_for_delivery(published, Duration::from_secs(60)));

    let victim = NodeId(5);
    cluster.kill(victim);
    assert!(!cluster.is_alive(victim));
    for _ in 0..5 {
        cluster.publish(256);
        published += 1;
        cluster.run_for(Duration::from_millis(100));
    }
    cluster.restart(victim).expect("reattach + respawn");
    assert!(cluster.is_alive(victim));
    // Give the rejoin a moment, then keep the stream flowing until every
    // live node — the reborn victim included — has caught up to the edge.
    cluster.run_for(Duration::from_millis(700));
    let deadline = std::time::Instant::now() + Duration::from_secs(90);
    let (published, victim_seqs) = loop {
        cluster.publish(256);
        published += 1;
        cluster.run_for(Duration::from_millis(150));
        let reports = cluster.snapshot_reports();
        let victim_seqs: Vec<u64> = reports
            .iter()
            .find(|(id, _)| *id == victim)
            .map(|(_, r)| r.first_delivery.iter().map(|&(s, _)| s).collect())
            .unwrap_or_default();
        let everyone_at_edge = reports
            .iter()
            .filter(|(id, _)| *id != cluster.source() && *id != victim)
            .all(|(_, r)| r.delivered == published);
        if everyone_at_edge && victim_seqs.last() == Some(&(published - 1)) {
            break (published, victim_seqs);
        }
        assert!(
            std::time::Instant::now() < deadline,
            "victim never caught up: {victim_seqs:?} of {published}"
        );
    };

    // Buffer anchoring: the victim's post-rebirth deliveries are one
    // gapless run ending at the live edge.
    assert!(!victim_seqs.is_empty(), "the reborn node delivered nothing");
    let anchor = victim_seqs[0];
    let expected: Vec<u64> = (anchor..published).collect();
    assert_eq!(
        victim_seqs, expected,
        "the reborn node's deliveries must be a contiguous suffix"
    );

    let result = cluster.stop_and_collect();
    assert_eq!(result.ever_killed, vec![victim.0]);
    assert_eq!(
        result.survivor_delivery_rate(),
        1.0,
        "never-killed nodes deliver everything"
    );
    assert_eq!(result.survivor_completeness(), 1.0);
    result
        .check_delivery_invariants()
        .expect("clean live trace");
}

/// The same lifecycle over real TCP sockets: the restart re-binds the
/// node's advertised listener address (`TcpMesh::reattach`) and the peers'
/// writers re-dial it with bounded backoff, so the reborn node both
/// receives and is reachable again.
#[test]
fn tcp_restart_rebinds_the_listener_and_recovers() {
    let cfg = ClusterConfig {
        nodes: 8,
        transport: TransportKind::Tcp,
        seed: 0x7C9,
        ..Default::default()
    };
    let mut cluster: Cluster<BrisaNode> = Cluster::launch(&cfg, &stack_config(4)).expect("launch");
    cluster.run_for(Duration::from_millis(600));

    let mut published = 0u64;
    for _ in 0..4 {
        cluster.publish(512);
        published += 1;
        cluster.run_for(Duration::from_millis(60));
    }
    assert!(cluster.wait_for_delivery(published, Duration::from_secs(60)));

    let victim = NodeId(3);
    cluster.kill(victim);
    for _ in 0..4 {
        cluster.publish(512);
        published += 1;
        cluster.run_for(Duration::from_millis(150));
    }
    cluster.restart(victim).expect("listener re-bind + respawn");
    cluster.run_for(Duration::from_millis(700));

    // Keep the stream alive until the reborn node is demonstrably back in
    // the dissemination structure (delivering at the live edge).
    let deadline = std::time::Instant::now() + Duration::from_secs(90);
    loop {
        cluster.publish(512);
        published += 1;
        cluster.run_for(Duration::from_millis(200));
        let back = cluster
            .snapshot_reports()
            .iter()
            .find(|(id, _)| *id == victim)
            .map(|(_, r)| r.first_delivery.last().map(|&(s, _)| s) == Some(published - 1))
            .unwrap_or(false);
        if back {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "reborn TCP node never rejoined the stream"
        );
    }
    let published = publish_until_complete_survivors(&mut cluster, published, victim);

    let result = cluster.stop_and_collect();
    assert_eq!(result.messages_published, published);
    assert_eq!(result.survivor_delivery_rate(), 1.0);
    assert_eq!(
        result
            .nodes
            .iter()
            .map(|n| n.stats.decode_errors)
            .sum::<u64>(),
        0,
        "no frame failed to decode across the restart"
    );
    result
        .check_delivery_invariants()
        .expect("clean live trace");
}

/// Like [`publish_until_complete`] but requires only the never-killed
/// nodes to reach the full stream.
fn publish_until_complete_survivors(
    cluster: &mut Cluster<BrisaNode>,
    mut published: u64,
    victim: NodeId,
) -> u64 {
    let deadline = std::time::Instant::now() + Duration::from_secs(90);
    loop {
        let done = cluster
            .snapshot_reports()
            .iter()
            .filter(|(id, _)| *id != cluster.source() && *id != victim)
            .all(|(_, r)| r.delivered == published);
        if done {
            return published;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "survivors never completed at {published}"
        );
        cluster.publish(512);
        published += 1;
        cluster.run_for(Duration::from_millis(150));
    }
}

/// The library entry point end to end: `run_chaos` replays a scripted
/// schedule (1 % loss + a kill and its delayed restart) against a live
/// cluster, sweeps invariants online, and comes back clean with the
/// survivors fully served.
#[test]
fn run_chaos_replays_a_schedule_cleanly() {
    let mut schedule = ChaosSchedule::named("test_combined");
    schedule.faults = FaultSpec::loss(0.005);
    schedule.events = vec![
        ChaosEvent {
            after: SimDuration::from_millis(600),
            kind: ChaosEventKind::Kill { node: 7 },
        },
        ChaosEvent {
            after: SimDuration::from_millis(1500),
            kind: ChaosEventKind::Restart { node: 7 },
        },
    ];
    let cfg = SoakConfig {
        nodes: 10,
        transport: TransportKind::Loopback,
        seed: 0xC4A05,
        stream: StreamSpec::short(15, 256),
        bootstrap: Duration::from_secs(1),
        drain: Duration::from_secs(15),
        sweep_interval: Duration::from_millis(500),
        ..SoakConfig::default()
    };
    let outcome =
        run_chaos::<BrisaNode>(&cfg, &stack_config(4), &schedule).expect("soak run launches");

    assert!(
        outcome.violations.is_empty(),
        "online invariant sweeps tripped:\n  {}",
        outcome.violations.join("\n  ")
    );
    assert!(outcome.sweeps > 0, "no sweep ever ran");
    assert_eq!(outcome.restarted, vec![7]);
    assert_eq!(outcome.result.ever_killed, vec![7]);
    let survivors = outcome.result.survivor_delivery_rate();
    assert!(
        survivors >= 0.99,
        "survivor delivery {survivors} under scripted chaos"
    );
    outcome
        .result
        .check_delivery_invariants()
        .expect("clean live trace");
}
