//! Integration tests of BRISA's behaviour under churn (Table I / Figure 14
//! territory): repairs complete, the stream keeps flowing, and DAGs orphan
//! far less often than trees.

use brisa::StructureMode;
use brisa_simnet::SimDuration;
use brisa_workloads::{run_brisa, BrisaScenario, ChurnSpec, StreamSpec};

fn churn_scenario(nodes: u32, rate_percent: f64, mode: StructureMode) -> BrisaScenario {
    BrisaScenario {
        nodes,
        view_size: 4,
        mode,
        stream: StreamSpec {
            messages: 60,
            rate_per_sec: 5.0,
            payload_bytes: 256,
        },
        churn: Some(ChurnSpec {
            rate_percent,
            interval: SimDuration::from_secs(10),
            duration: SimDuration::from_secs(40),
        }),
        bootstrap: SimDuration::from_secs(25),
        drain: SimDuration::from_secs(20),
        ..Default::default()
    }
}

#[test]
fn tree_under_churn_repairs_and_keeps_delivering() {
    let sc = churn_scenario(64, 5.0, StructureMode::Tree);
    let result = run_brisa(&sc);
    let churn = result.churn.clone().expect("churn report");
    assert!(churn.failures_injected > 0);
    assert!(churn.parents_lost_per_min > 0.0, "failures cost parents");
    assert!(
        churn.soft_repairs + churn.hard_repairs > 0,
        "orphans repaired their connectivity"
    );
    assert!(
        result.completeness() > 0.85,
        "original nodes still deliver (completeness {})",
        result.completeness()
    );
    // Repair delays were recorded for the repairs that happened.
    assert_eq!(
        churn.soft_delays_ms.len() as u64 + churn.hard_delays_ms.len() as u64,
        churn.soft_repairs + churn.hard_repairs
    );
}

#[test]
fn dag_orphans_less_than_tree_under_equal_churn() {
    let tree = run_brisa(&churn_scenario(64, 5.0, StructureMode::Tree));
    let dag = run_brisa(&churn_scenario(64, 5.0, StructureMode::Dag { parents: 2 }));
    let tree_churn = tree.churn.clone().unwrap();
    let dag_churn = dag.churn.clone().unwrap();
    // The headline claim of Table I: multiple parents drastically reduce
    // orphaning even though more parent links are lost overall.
    assert!(
        dag_churn.orphans_per_min <= tree_churn.orphans_per_min,
        "DAG orphans/min ({}) must not exceed the tree's ({})",
        dag_churn.orphans_per_min,
        tree_churn.orphans_per_min
    );
    assert!(
        dag_churn.parents_lost_per_min >= tree_churn.orphans_per_min,
        "DAGs hold more parent links overall"
    );
}

#[test]
fn soft_repairs_dominate_in_well_connected_overlays() {
    let sc = churn_scenario(96, 3.0, StructureMode::Tree);
    let result = run_brisa(&sc);
    let churn = result.churn.clone().unwrap();
    if churn.soft_repairs + churn.hard_repairs >= 5 {
        assert!(
            churn.soft_pct >= 50.0,
            "most disconnections repair softly (got {:.0}% soft)",
            churn.soft_pct
        );
    }
}

#[test]
fn late_joiners_attach_and_receive_the_tail_of_the_stream() {
    let sc = churn_scenario(48, 5.0, StructureMode::Tree);
    let result = run_brisa(&sc);
    let late: Vec<_> = result
        .nodes
        .iter()
        .filter(|n| n.id.0 >= result.original_nodes)
        .collect();
    assert!(!late.is_empty(), "churn joins added nodes");
    let attached = late
        .iter()
        .filter(|n| !n.parents.is_empty() || n.delivered > 0)
        .count();
    assert!(
        attached * 2 >= late.len(),
        "most late joiners attached to the structure ({attached}/{})",
        late.len()
    );
}
