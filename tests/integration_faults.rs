//! Integration tests of the fault-injection subsystem and the online
//! invariant checker: zero-rate faults are bit-identical to a fault-free
//! run, BRISA survives per-link loss via gossip-substrate gap recovery,
//! and a partition-then-heal scenario reconnects — all under the online
//! invariant suite on both schedulers.

use brisa::BrisaNode;
use brisa_simnet::SimDuration;
use brisa_workloads::{
    scenarios, BrisaScenario, BrisaStackConfig, EngineResult, FaultSpec, IntoRunSpec,
    InvariantSuite, Runner, SchedulerKind, StreamSpec,
};

fn stack_config(sc: &BrisaScenario) -> BrisaStackConfig {
    BrisaStackConfig {
        hpv: sc.hyparview_config(),
        brisa: sc.brisa_config(),
    }
}

/// Satellite: `FaultSpec::default()` (zero-rate faults) must be
/// bit-identical to a run without the fault layer — the injection layer is
/// pay-for-what-you-use.
#[test]
fn zero_rate_faults_are_bit_identical_to_fault_free() {
    let base = BrisaScenario {
        stream: StreamSpec::short(8, 256),
        ..BrisaScenario::small_test(32)
    };
    let cfg = stack_config(&base);
    let mut plain_spec = base.run_spec();
    plain_spec.faults = FaultSpec::default();
    assert!(plain_spec.faults.is_inert());
    let plain = Runner::<BrisaNode>::new(&cfg, &plain_spec).run();
    // Same scenario, fault layer engaged with explicit zero rates.
    let mut zero_spec = base.run_spec();
    zero_spec.faults = FaultSpec {
        loss_rate: 0.0,
        jitter: SimDuration::ZERO,
        latency_factor: 1.0,
        partition: None,
    };
    let zero = Runner::<BrisaNode>::new(&cfg, &zero_spec).run();
    assert_eq!(
        plain.fingerprint(),
        zero.fingerprint(),
        "zero-rate fault injection must not perturb the run in any way"
    );
    assert_eq!(plain.net_stats.messages_lost_to_faults, 0);
    assert_eq!(plain.net_stats.messages_cut_by_partition, 0);
}

/// Acceptance: a BRISA run at 1 % per-link loss still reaches >= 99 %
/// delivery through the gap-recovery retransmissions of the gossip
/// substrate, under the full online invariant suite, on both schedulers —
/// which must also agree bit-for-bit under faults.
#[test]
fn one_percent_loss_still_delivers_99_percent_on_both_schedulers() {
    let sc = BrisaScenario {
        stream: StreamSpec {
            messages: 40,
            rate_per_sec: 5.0,
            payload_bytes: 512,
        },
        faults: FaultSpec::loss(0.01),
        drain: SimDuration::from_secs(20),
        ..BrisaScenario::small_test(48)
    };
    let cfg = stack_config(&sc);
    let mut fingerprints = Vec::new();
    for scheduler in [SchedulerKind::TimingWheel, SchedulerKind::BinaryHeap] {
        let mut spec = sc.run_spec();
        spec.scheduler = scheduler;
        let mut suite = InvariantSuite::standard(Some(1));
        let r = Runner::<BrisaNode>::new(&cfg, &spec)
            .invariants(&mut suite)
            .run();
        suite.assert_clean();
        assert!(suite.checks_run() > 0);
        assert!(
            r.net_stats.messages_lost_to_faults > 0,
            "1% loss over a full run must lose messages"
        );
        let rate = r.delivery_rate();
        assert!(
            rate >= 0.99,
            "delivery rate {rate:.4} under 1% loss (scheduler {scheduler:?})"
        );
        fingerprints.push(r.fingerprint());
    }
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "schedulers must agree bit-for-bit under active fault injection"
    );
}

/// Acceptance: the 10 s partition-then-heal scenario reconnects — every
/// island node delivers messages published after the heal, the whole run
/// stays invariant-clean, and the delivery holes opened by the cut are
/// repaired through retransmissions.
#[test]
fn partition_then_heal_reconnects_the_tree() {
    let (duration, sc) = scenarios::fault_partition_sweep(scenarios::Scale::Quick)
        .into_iter()
        .find(|(d, _)| *d == SimDuration::from_secs(10))
        .expect("10s partition scenario exists");
    let phase = sc.faults.partition.expect("partition configured");
    let cfg = stack_config(&sc);
    let mut suite = InvariantSuite::standard(Some(1));
    let r = Runner::<BrisaNode>::new(&cfg, &sc.run_spec())
        .invariants(&mut suite)
        .run();
    suite.assert_clean();

    assert!(
        r.net_stats.messages_cut_by_partition > 0,
        "the cut must actually blackhole traffic"
    );
    let island = phase.island(sc.nodes);
    let stream_start = r.churn_window.0;
    let heal = stream_start + phase.start_after + duration;
    // Messages published after the heal must reach every island node: the
    // tree reconnected. Also measure how quickly it did.
    let first_post_heal_seq = r
        .publish_times
        .iter()
        .position(|t| *t >= heal)
        .expect("stream outlasts the heal") as u64;
    let mut worst_reconnect = SimDuration::ZERO;
    for id in &island {
        let node = r
            .nodes
            .iter()
            .find(|n| n.id == *id)
            .expect("island nodes are alive (no churn in this scenario)");
        let reconnect_at = node
            .report
            .first_delivery
            .iter()
            .filter(|(seq, _)| *seq >= first_post_heal_seq)
            .map(|(_, t)| *t)
            .min();
        let reconnect_at = reconnect_at
            .unwrap_or_else(|| panic!("island node {id} never delivered after the heal"));
        worst_reconnect = worst_reconnect.max(reconnect_at.saturating_since(heal));
        // The island also caught up on the messages it missed during the
        // cut (gap recovery from the surviving parents' buffers).
        assert!(
            node.report.delivered >= r.messages_published - 1,
            "island node {id} delivered {}/{} — holes were not repaired",
            node.report.delivered,
            r.messages_published
        );
    }
    assert!(
        worst_reconnect <= SimDuration::from_secs(10),
        "slowest island reconnect took {worst_reconnect}"
    );
    // Main-side nodes were never cut: full delivery there.
    for n in r
        .nodes
        .iter()
        .filter(|n| !n.is_source && n.id.0 < r.original_nodes && !island.contains(&n.id))
    {
        assert_eq!(
            n.report.delivered, r.messages_published,
            "main-side node {} must not miss anything",
            n.id
        );
    }
}

/// The online invariant suite stays clean on a churn-heavy run too (the
/// checks run during repairs, not just in steady state) — and a vacuous
/// suite would be caught by `checks_run`.
#[test]
fn invariants_hold_during_churn_with_faults() {
    use brisa_workloads::ChurnSpec;
    let sc = BrisaScenario {
        churn: Some(ChurnSpec {
            rate_percent: 5.0,
            interval: SimDuration::from_secs(10),
            duration: SimDuration::from_secs(40),
        }),
        faults: FaultSpec::loss(0.005),
        stream: StreamSpec {
            messages: 50,
            rate_per_sec: 5.0,
            payload_bytes: 128,
        },
        ..BrisaScenario::small_test(48)
    };
    let cfg = stack_config(&sc);
    let mut suite = InvariantSuite::standard(Some(1));
    let r = Runner::<BrisaNode>::new(&cfg, &sc.run_spec())
        .invariants(&mut suite)
        .run();
    suite.assert_clean();
    assert!(suite.checks_run() > 50, "checked after every schedule step");
    assert!(r.failures_injected > 0);
    assert!(r.net_stats.messages_lost_to_faults > 0);
}

/// Latency degradation and jitter slow the stream down but lose nothing:
/// delivery stays complete, dissemination gets measurably slower.
#[test]
fn jitter_and_degradation_slow_but_do_not_lose() {
    let base = BrisaScenario {
        stream: StreamSpec::short(10, 256),
        ..BrisaScenario::small_test(32)
    };
    let cfg = stack_config(&base);
    let nominal = Runner::<BrisaNode>::new(&cfg, &base.run_spec()).run();
    let degraded_sc = BrisaScenario {
        faults: FaultSpec {
            jitter: SimDuration::from_millis(5),
            latency_factor: 4.0,
            ..Default::default()
        },
        ..base
    };
    let degraded =
        Runner::<BrisaNode>::new(&stack_config(&degraded_sc), &degraded_sc.run_spec()).run();
    assert_eq!(degraded.net_stats.messages_lost_to_faults, 0);
    assert!(
        (degraded.delivery_rate() - 1.0).abs() < 1e-9,
        "nothing lost"
    );
    let mean_delay = |r: &EngineResult| {
        let v: Vec<f64> = r.nodes.iter().filter_map(|n| n.routing_delay_ms).collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    assert!(
        mean_delay(&degraded) > mean_delay(&nominal),
        "a 4x degraded network must be slower ({:.3}ms vs {:.3}ms)",
        mean_delay(&degraded),
        mean_delay(&nominal)
    );
}
