//! Property-based tests (proptest) of the core data structures and protocol
//! invariants: cycle prevention, bounded views, structure soundness and
//! delivery completeness across randomly drawn configurations.

use brisa::{BrisaConfig, CycleGuard, CycleState, ParentStrategy, StructureMode};
use brisa_membership::{HpvMsg, HyParView, HyParViewConfig};
use brisa_metrics::{Cdf, PercentileSummary, StructureSnapshot};
use brisa_simnet::sched::{HeapScheduler, TimingWheel};
use brisa_simnet::{NodeId, SimTime};
use brisa_workloads::{
    run_brisa, run_matrix, run_matrix_sequential, BrisaScenario, BrisaStackConfig, IntoRunSpec,
    Runner, SchedulerKind, StreamSpec, Testbed,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The timing wheel pops entries in exactly the same order as the
    /// `BinaryHeap` reference for any interleaving of pushes and pops, with
    /// times spanning bucket-local, in-horizon and far-future (overflow)
    /// ranges.
    #[test]
    fn timing_wheel_matches_binary_heap(
        ops in proptest::collection::vec((0u64..3_000_000, 0u8..5), 1..300),
    ) {
        let mut wheel: TimingWheel<u64> = TimingWheel::new();
        let mut heap: HeapScheduler<u64> = HeapScheduler::new();
        for (i, &(t, kind)) in ops.iter().enumerate() {
            if kind == 0 {
                // One pop op per three pushes on average.
                let w = wheel.pop().map(|e| (e.time, e.seq, e.item));
                let h = heap.pop().map(|e| (e.time, e.seq, e.item));
                prop_assert_eq!(w, h, "pop divergence at op {}", i);
            } else {
                // Stretch some times into the overflow level (> the wheel's
                // ~1 s horizon) and collide others onto shared instants.
                let t = match kind {
                    1 => t,
                    2 => t * 64,                 // up to ~192 s: far-future overflow
                    3 => t & !0x3FF,             // coarse grid: many same-time ties
                    _ => (t & !0xF_FFFF) * 64, // far-future *ties*: exercises the
                                               // order-preserving far partition
                };
                let time = SimTime::from_micros(t);
                wheel.push(time, i as u64);
                heap.push(time, i as u64);
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
        }
        // Drain both to the end: the full total order must agree.
        loop {
            let w = wheel.pop().map(|e| (e.time, e.seq, e.item));
            let h = heap.pop().map(|e| (e.time, e.seq, e.item));
            prop_assert_eq!(&w, &h);
            if w.is_none() {
                break;
            }
        }
    }
}

fn sched_check_cell(seed: u64) -> (BrisaStackConfig, BrisaScenario) {
    let sc = BrisaScenario {
        seed,
        stream: StreamSpec::short(6, 256),
        ..BrisaScenario::small_test(20)
    };
    let cfg = BrisaStackConfig {
        hpv: sc.hyparview_config(),
        brisa: sc.brisa_config(),
    };
    (cfg, sc)
}

/// Whole-system scheduler equivalence: a full BRISA run produces
/// bit-identical results on the timing wheel and on the binary-heap
/// reference — the wheel changes wall-clock time and nothing else.
#[test]
fn engine_runs_identical_on_both_schedulers() {
    for seed in [1u64, 0xB215A, 77] {
        let (cfg, sc) = sched_check_cell(seed);
        let run = |scheduler: SchedulerKind| {
            let mut spec = sc.run_spec();
            spec.scheduler = scheduler;
            Runner::<brisa::BrisaNode>::new(&cfg, &spec)
                .run()
                .fingerprint()
        };
        assert_eq!(
            run(SchedulerKind::TimingWheel),
            run(SchedulerKind::BinaryHeap),
            "seed {seed}: schedulers must be observationally identical"
        );
    }
}

/// The `run_matrix` determinism contract holds on the new scheduler:
/// parallel and sequential sweeps agree bit-for-bit with the scheduler
/// pinned explicitly to the timing wheel.
#[test]
fn run_matrix_is_deterministic_on_timing_wheel() {
    let seeds: Vec<u64> = vec![3, 1414, 0xB215A, 99];
    let run = |_i: usize, &seed: &u64| {
        let (cfg, sc) = sched_check_cell(seed);
        let mut spec = sc.run_spec();
        spec.scheduler = SchedulerKind::TimingWheel;
        Runner::<brisa::BrisaNode>::new(&cfg, &spec)
            .run()
            .fingerprint()
    };
    let parallel = run_matrix(&seeds, run);
    let sequential = run_matrix_sequential(&seeds, run);
    assert_eq!(parallel, sequential);
    assert_ne!(parallel[0], parallel[1], "fingerprints are not vacuous");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Path embedding never accepts a parent whose path contains the node,
    /// and always accepts one whose path does not.
    #[test]
    fn path_guard_is_exact(path in proptest::collection::vec(0u32..500, 1..20), me in 0u32..500) {
        let state = CycleState::tree();
        let guard = CycleGuard::Path(path.iter().copied().map(NodeId).collect());
        let expected = !path.contains(&me);
        prop_assert_eq!(state.permits(NodeId(me), &guard), expected);
    }

    /// Depth labels only ever accept senders that are not deeper than the
    /// node, and positioning after a delivery is monotone non-decreasing.
    #[test]
    fn depth_guard_is_monotone(depths in proptest::collection::vec(0u32..60, 1..30)) {
        let mut state = CycleState::dag();
        let mut previous = None::<usize>;
        for d in depths {
            let guard = CycleGuard::Depth(d);
            if state.permits(NodeId(1), &guard) {
                state.position_after(NodeId(1), &guard);
            }
            let pos = state.position();
            if let (Some(prev), Some(cur)) = (previous, pos) {
                prop_assert!(cur >= prev, "depth never decreases: {prev} -> {cur}");
            }
            previous = pos.or(previous);
            if let Some(p) = state.position() {
                prop_assert!(!state.permits(NodeId(1), &CycleGuard::Depth(p as u32 + 1)));
            }
        }
    }

    /// The guard a node attaches to relayed messages always reflects its own
    /// position (path ends with the node / depth equals the position).
    #[test]
    fn outgoing_guard_reflects_position(hops in proptest::collection::vec(0u32..100, 1..12)) {
        let me = NodeId(42);
        let mut tree = CycleState::tree();
        let mut dag = CycleState::dag();
        for h in &hops {
            let path: Vec<NodeId> = (100..=100 + *h % 5).map(NodeId).collect();
            tree.position_after(me, &CycleGuard::Path(path));
            dag.position_after(me, &CycleGuard::Depth(*h));
        }
        match tree.outgoing_guard(me) {
            CycleGuard::Path(p) => {
                prop_assert_eq!(p.last(), Some(&me), "the relayed path ends with the relayer");
                prop_assert_eq!(p.len().saturating_sub(1), tree.position().unwrap_or(0));
            }
            _ => prop_assert!(false, "tree state must emit path guards"),
        }
        match dag.outgoing_guard(me) {
            CycleGuard::Depth(d) => prop_assert_eq!(Some(d as usize), dag.position().or(Some(0))),
            _ => prop_assert!(false, "dag state must emit depth guards"),
        }
    }

    /// HyParView views stay bounded, free of self-loops and duplicates, no
    /// matter what (well-formed) message sequence arrives.
    #[test]
    fn hyparview_views_stay_bounded(
        msgs in proptest::collection::vec((1u32..64, 0u8..6, any::<bool>()), 1..120),
        active_size in 2usize..6,
    ) {
        let cfg = HyParViewConfig::with_active_size(active_size);
        let mut node = HyParView::new(NodeId(0), cfg.clone());
        let mut rng = SmallRng::seed_from_u64(7);
        for (peer, kind, flag) in msgs {
            let msg = match kind {
                0 => HpvMsg::Join,
                1 => HpvMsg::ForwardJoin { new_node: NodeId(peer % 64 + 100), ttl: peer as u8 % 7 },
                2 => HpvMsg::Neighbor { high_priority: flag },
                3 => HpvMsg::NeighborReply { accepted: flag },
                4 => HpvMsg::Disconnect,
                _ => HpvMsg::ShuffleReply { nodes: vec![NodeId(peer + 200), NodeId(0)] },
            };
            let _ = node.handle(SimTime::ZERO, NodeId(peer), msg, &mut rng);
            prop_assert!(node.active_view().len() <= cfg.max_active());
            prop_assert!(node.passive_view().len() <= cfg.passive_size);
            prop_assert!(!node.active_view().contains(&NodeId(0)), "no self loops");
            let mut a = node.active_view().to_vec();
            a.sort();
            a.dedup();
            prop_assert_eq!(a.len(), node.active_view().len(), "no duplicates in the active view");
            for p in node.passive_view() {
                prop_assert!(!node.active_view().contains(p), "views are disjoint");
            }
        }
    }

    /// Percentile summaries and CDFs agree with each other on random data.
    #[test]
    fn percentiles_and_cdf_agree(samples in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let summary = PercentileSummary::from_samples(samples.iter().copied());
        let mut cdf = Cdf::from_samples(samples.iter().copied());
        prop_assert!(summary.p5 <= summary.p25);
        prop_assert!(summary.p25 <= summary.p50);
        prop_assert!(summary.p50 <= summary.p75);
        prop_assert!(summary.p75 <= summary.p90);
        // At least half the samples sit at or below the median.
        prop_assert!(cdf.fraction_at(summary.p50) >= 0.5 - 1e-9);
        let (lo, hi) = cdf.range().unwrap();
        prop_assert!(summary.p5 >= lo - 1e-9 && summary.p90 <= hi + 1e-9);
    }

    /// Structure snapshots built from arbitrary parent choices among
    /// earlier-joined nodes are always acyclic and complete.
    #[test]
    fn join_ordered_structures_are_sound(parents in proptest::collection::vec(0u32..50, 1..50)) {
        let mut snapshot = StructureSnapshot::new(0);
        for (i, p) in parents.iter().enumerate() {
            let node = i as u32 + 1;
            // A node may only pick an earlier node as parent (like SimpleTree).
            let parent = p % node;
            snapshot.set_parents(node, vec![parent]);
        }
        prop_assert!(snapshot.is_acyclic());
        prop_assert!(snapshot.is_complete());
        let depths = snapshot.depths();
        prop_assert_eq!(depths.len(), parents.len() + 1);
    }
}

proptest! {
    // Full-stack runs are expensive; keep the case count small.
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// The sharded driver is observationally invisible: for arbitrary small
    /// scenarios, every shard count — including counts above the node
    /// count — and both schedulers produce the exact fingerprint of the
    /// sequential run. This is the workloads-level face of the simnet
    /// shard-equivalence tests: it goes through the full engine pipeline
    /// (bootstrap, schedule, churn, collect), not just the raw driver.
    #[test]
    fn sharded_runs_match_sequential_for_any_shard_count(
        nodes in 12u32..32,
        seed in 0u64..1000,
        dag in any::<bool>(),
        churny in any::<bool>(),
    ) {
        let sc = BrisaScenario {
            nodes,
            seed,
            view_size: 4,
            mode: if dag { StructureMode::Dag { parents: 2 } } else { StructureMode::Tree },
            stream: StreamSpec::short(5, 128),
            churn: churny.then(|| brisa_workloads::ChurnSpec {
                rate_percent: 5.0,
                interval: brisa_simnet::SimDuration::from_secs(8),
                duration: brisa_simnet::SimDuration::from_secs(16),
            }),
            ..BrisaScenario::small_test(nodes)
        };
        let cfg = BrisaStackConfig {
            hpv: sc.hyparview_config(),
            brisa: sc.brisa_config(),
        };
        for scheduler in [SchedulerKind::TimingWheel, SchedulerKind::BinaryHeap] {
            let mut spec = sc.run_spec();
            spec.scheduler = scheduler;
            let sequential = Runner::<brisa::BrisaNode>::new(&cfg, &spec).run().fingerprint();
            prop_assert!(sequential.contains(":d"), "fingerprint is vacuous");
            for shards in [1usize, 2, 3, 7, 16] {
                let sharded = Runner::<brisa::BrisaNode>::new(&cfg, &spec)
                    .shards(shards)
                    .run()
                    .fingerprint();
                prop_assert_eq!(
                    &sequential, &sharded,
                    "{} shards diverged from sequential (seed {}, {:?})",
                    shards, seed, scheduler
                );
            }
        }
    }

    /// Whatever the (small) system size, seed, strategy and structure mode,
    /// a churn-free BRISA run delivers every message to every node and the
    /// emerged structure is acyclic with bounded parent counts.
    #[test]
    fn brisa_runs_deliver_everything(
        nodes in 12u32..40,
        seed in 0u64..1000,
        dag in any::<bool>(),
        delay_aware in any::<bool>(),
    ) {
        let sc = BrisaScenario {
            nodes,
            seed,
            view_size: 4,
            mode: if dag { StructureMode::Dag { parents: 2 } } else { StructureMode::Tree },
            strategy: if delay_aware {
                ParentStrategy::DelayAware
            } else {
                ParentStrategy::FirstComeFirstPicked
            },
            testbed: Testbed::Cluster,
            stream: StreamSpec::short(8, 128),
            ..BrisaScenario::small_test(nodes)
        };
        let target = sc.brisa_config().mode.target_parents();
        let result = run_brisa(&sc);
        prop_assert!((result.completeness() - 1.0).abs() < 1e-9,
            "completeness {} for {nodes} nodes seed {seed}", result.completeness());
        if !dag {
            // Path embedding is exact: trees are always acyclic. The DAG
            // depth labels are approximate by design (see EXPERIMENTS.md);
            // for DAGs the delivery-completeness assertion above is the
            // correctness property the paper relies on.
            prop_assert!(result.structure.is_acyclic());
        }
        for n in result.nodes.iter().filter(|n| !n.is_source) {
            prop_assert!(!n.parents.is_empty() && n.parents.len() <= target);
        }
        let _ = BrisaConfig::default();
    }
}
