//! Integration tests of the generic experiment engine and the parallel
//! `run_matrix` driver: determinism (parallel execution is bit-identical to
//! sequential execution for the same seeds) and the churn phase running
//! through the generic pipeline for BRISA and a baseline.

use brisa::BrisaNode;
use brisa_baselines::TagNode;
use brisa_simnet::SimDuration;
use brisa_workloads::{
    derive_seed, run_brisa, run_matrix, run_matrix_sequential, run_tag, BaselineScenario,
    BrisaScenario, BrisaStackConfig, ChurnSpec, IntoRunSpec, Runner, StreamSpec,
};

fn brisa_cell(seed: u64, nodes: u32) -> BrisaScenario {
    BrisaScenario {
        seed,
        stream: StreamSpec::short(8, 256),
        ..BrisaScenario::small_test(nodes)
    }
}

/// The headline determinism property: fanning a (scenario × seed ×
/// view-size) matrix across threads produces bit-identical results to
/// running the same cells sequentially.
#[test]
fn run_matrix_parallel_is_bit_identical_to_sequential() {
    let cells: Vec<BrisaScenario> = (0..6)
        .flat_map(|i| {
            [4usize, 8].map(|view| BrisaScenario {
                view_size: view,
                ..brisa_cell(derive_seed(0xB215A, i), 24)
            })
        })
        .collect();
    let cfg_of = |sc: &BrisaScenario| BrisaStackConfig {
        hpv: sc.hyparview_config(),
        brisa: sc.brisa_config(),
    };
    let run = |_i: usize, sc: &BrisaScenario| {
        Runner::<BrisaNode>::new(&cfg_of(sc), &sc.run_spec())
            .run()
            .fingerprint()
    };
    let parallel = run_matrix(&cells, run);
    let sequential = run_matrix_sequential(&cells, run);
    assert_eq!(
        parallel, sequential,
        "parallel and sequential sweeps must agree exactly"
    );
    // And a third pass agrees too: the engine itself is deterministic.
    let again = run_matrix(&cells, run);
    assert_eq!(parallel, again);
    // Different seeds genuinely produce different runs (the fingerprint is
    // not vacuous).
    assert_ne!(parallel[0], parallel[2]);
}

/// Per-cell seeds derived from a base seed are stable across the
/// parallel/sequential boundary even when cells are built inside the
/// closure.
#[test]
fn derived_seed_cells_are_reproducible() {
    let indices: Vec<u64> = (0..4).collect();
    let run = |i: usize, &base: &u64| {
        let sc = brisa_cell(derive_seed(base, i as u64), 16);
        Runner::<BrisaNode>::new(
            &BrisaStackConfig {
                hpv: sc.hyparview_config(),
                brisa: sc.brisa_config(),
            },
            &sc.run_spec(),
        )
        .run()
        .fingerprint()
    };
    assert_eq!(
        run_matrix(&indices, run),
        run_matrix_sequential(&indices, run)
    );
}

fn test_churn() -> ChurnSpec {
    ChurnSpec {
        rate_percent: 5.0,
        interval: SimDuration::from_secs(10),
        duration: SimDuration::from_secs(40),
    }
}

/// The generic runner drives a churn phase for BRISA: failures and joins
/// are injected, repairs are observed, and the stream keeps flowing.
#[test]
fn generic_runner_churn_phase_with_brisa() {
    let sc = BrisaScenario {
        churn: Some(test_churn()),
        stream: StreamSpec {
            messages: 50,
            rate_per_sec: 5.0,
            payload_bytes: 128,
        },
        ..BrisaScenario::small_test(48)
    };
    let cfg = BrisaStackConfig {
        hpv: sc.hyparview_config(),
        brisa: sc.brisa_config(),
    };
    let r = Runner::<BrisaNode>::new(&cfg, &sc.run_spec()).run();
    assert_eq!(r.protocol, "Brisa");
    assert!(r.failures_injected > 0, "the churn script failed nodes");
    assert_eq!(
        r.failures_injected, r.joins_injected,
        "replacement churn is balanced"
    );
    let repairs: u64 = r
        .nodes
        .iter()
        .map(|n| n.report.repairs.soft_repairs + n.report.repairs.hard_repairs)
        .sum();
    assert!(repairs > 0, "orphans repaired through the generic pipeline");
    assert!(
        r.completeness() > 0.7,
        "the stream kept flowing: {}",
        r.completeness()
    );
    // Churn joiners are reported too: some node has an index past the
    // initial population.
    assert!(r.nodes.iter().any(|n| n.id.0 >= r.original_nodes));
    // The adapter agrees with the engine on the headline number.
    let adapted = run_brisa(&sc);
    assert!((adapted.completeness() - r.completeness()).abs() < 1e-12);
}

/// The same generic runner, unchanged, drives a churn phase for a baseline
/// protocol (TAG): the engine is genuinely protocol-generic.
#[test]
fn generic_runner_churn_phase_with_tag_baseline() {
    let sc = BaselineScenario {
        churn: Some(test_churn()),
        stream: StreamSpec {
            messages: 50,
            rate_per_sec: 5.0,
            payload_bytes: 128,
        },
        drain: SimDuration::from_secs(60),
        ..BaselineScenario::small_test(48)
    };
    let r = run_tag(&sc);
    assert_eq!(r.protocol, "TAG");
    assert!(
        r.soft_repairs + r.hard_repairs > 0,
        "TAG repaired broken list positions under churn"
    );
    assert_eq!(
        r.soft_repair_delays_ms.len() as u64 + r.hard_repair_delays_ms.len() as u64,
        r.soft_repairs + r.hard_repairs,
        "every repair recorded its delay"
    );
    // Original nodes that survived kept delivering a meaningful share of
    // the stream despite pull-based dissemination under churn.
    let survivors: Vec<_> = r.nodes.iter().filter(|n| !n.is_source).collect();
    assert!(!survivors.is_empty());
    let mean_delivered: f64 =
        survivors.iter().map(|n| n.delivered as f64).sum::<f64>() / survivors.len() as f64;
    assert!(
        mean_delivered > r.messages_published as f64 * 0.5,
        "mean delivered {mean_delivered} of {}",
        r.messages_published
    );
}

/// The engine reports identical scenario-level metadata regardless of the
/// protocol driven (same pipeline, same schedule).
#[test]
fn engine_schedule_is_protocol_independent() {
    let stream = StreamSpec::short(12, 256);
    let brisa_sc = BrisaScenario {
        stream,
        ..BrisaScenario::small_test(24)
    };
    let base_sc = BaselineScenario {
        stream,
        ..BaselineScenario::small_test(24)
    };
    let cfg = BrisaStackConfig {
        hpv: brisa_sc.hyparview_config(),
        brisa: brisa_sc.brisa_config(),
    };
    let a = Runner::<BrisaNode>::new(&cfg, &brisa_sc.run_spec()).run();
    let b =
        Runner::<TagNode>::new(&brisa_baselines::TagConfig::default(), &base_sc.run_spec()).run();
    assert_eq!(a.messages_published, b.messages_published);
    assert_eq!(
        a.publish_times, b.publish_times,
        "same injection schedule for every protocol"
    );
    assert_eq!(a.source, b.source);
    assert_eq!(a.original_nodes, b.original_nodes);
}
