//! Integration tests of the sharded reactor itself: crash isolation
//! inside a shard, clean shutdown (threads joined, sockets closed, ports
//! reusable), and a 256-node loopback smoke run — a cluster size the old
//! thread-per-node executor could not reasonably carry.

use brisa::{BrisaConfig, BrisaNode, StackMsg};
use brisa_membership::{HpvMsg, HyParViewConfig};
use brisa_runtime::executor::WallClock;
use brisa_runtime::reactor::ReactorPool;
use brisa_runtime::tcp::TcpMesh;
use brisa_runtime::{Cluster, ClusterConfig, LoopbackMesh, RuntimeConfig, TransportKind};
use brisa_runtime::{LiveNode, LiveResult};
use brisa_runtime::{WireCodec, WIRE_VERSION};
use brisa_simnet::{Context, NodeId, Protocol, TimerTag};
use brisa_workloads::{BrisaStackConfig, NodeReport};
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A minimal protocol that records every keep-alive it hears.
struct Echo {
    log: Arc<Mutex<Vec<(NodeId, u64)>>>,
}

impl Protocol for Echo {
    type Message = StackMsg;

    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Message>) {}

    fn on_message(
        &mut self,
        _ctx: &mut Context<'_, Self::Message>,
        from: NodeId,
        msg: Self::Message,
    ) {
        if let StackMsg::Hpv(HpvMsg::KeepAlive { nonce }) = msg {
            self.log.lock().unwrap().push((from, nonce));
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, Self::Message>, _tag: TimerTag) {}

    fn on_link_down(&mut self, _ctx: &mut Context<'_, Self::Message>, _peer: NodeId) {}
}

fn keepalive(nonce: u64) -> StackMsg {
    StackMsg::Hpv(HpvMsg::KeepAlive { nonce })
}

/// Waits until `pred` holds or the deadline passes.
fn wait_until(deadline: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    pred()
}

/// A panicking protocol callback poisons only its own node: shard
/// siblings (here: *every* node shares the single worker) keep
/// processing messages, and a later stop of the poisoned node reports the
/// crash instead of hanging or taking the worker down.
#[test]
fn panicking_node_does_not_stall_shard_siblings() {
    let mesh = LoopbackMesh::new(3);
    let cfg = RuntimeConfig {
        workers: 1, // force all three nodes onto one shard
        ..RuntimeConfig::default()
    };
    let pool: ReactorPool<Echo> = ReactorPool::new(WallClock::new(), &cfg);
    let logs: Vec<_> = (0..3).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
    for i in 0..3u32 {
        let transport = Box::new(mesh.attach(NodeId(i), pool.sink_for(NodeId(i))));
        let proto = Echo {
            log: Arc::clone(&logs[i as usize]),
        };
        pool.start_node(NodeId(i), proto, 1, transport);
    }

    // Sanity: traffic flows on the shared shard.
    pool.invoke(NodeId(0), |_p, ctx| ctx.send(NodeId(1), keepalive(1)));
    assert!(
        wait_until(Duration::from_secs(5), || !logs[1]
            .lock()
            .unwrap()
            .is_empty()),
        "pre-crash traffic never arrived"
    );

    // Node 1 crashes inside a protocol callback...
    pool.invoke(NodeId(1), |_p, _ctx| panic!("injected node crash"));
    // ...and its shard siblings keep working: 0 → 2 still flows.
    pool.invoke(NodeId(0), |_p, ctx| ctx.send(NodeId(2), keepalive(2)));
    assert!(
        wait_until(Duration::from_secs(5), || !logs[2]
            .lock()
            .unwrap()
            .is_empty()),
        "sibling stalled after a shard-mate panicked"
    );

    // The poisoned node is gone (its stop reports the crash), the healthy
    // ones still return their state.
    let crashed = pool
        .stop_node(NodeId(1))
        .recv_timeout(Duration::from_secs(5))
        .expect("worker alive");
    assert!(crashed.is_none(), "a panicked node has no final state");
    for id in [NodeId(0), NodeId(2)] {
        let fine = pool
            .stop_node(id)
            .recv_timeout(Duration::from_secs(5))
            .expect("worker alive");
        assert!(fine.is_some(), "healthy node {id:?} must survive");
    }
}

/// Shutdown is total: `ReactorPool::shutdown` returns only after every
/// worker and dialer thread joined, and every socket the pool owned —
/// listeners included — is closed, so all ports rebind immediately.
#[test]
fn shutdown_joins_workers_and_releases_every_port() {
    const NODES: u32 = 8;
    let mesh = TcpMesh::bind(NODES as usize).expect("bind");
    let cfg = RuntimeConfig {
        workers: 2,
        ..RuntimeConfig::default()
    };
    let mut pool: ReactorPool<Echo> = ReactorPool::new(WallClock::new(), &cfg);
    let logs: Vec<_> = (0..NODES)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    for i in 0..NODES {
        pool.add_listener(NodeId(i), mesh.take_listener(NodeId(i)), mesh.addrs());
        let proto = Echo {
            log: Arc::clone(&logs[i as usize]),
        };
        pool.start_node(NodeId(i), proto, 1, pool.tcp_transport(NodeId(i)));
    }
    // Real sockets carried traffic: a ring of keep-alives.
    for i in 0..NODES {
        let to = NodeId((i + 1) % NODES);
        pool.invoke(NodeId(i), move |_p, ctx| ctx.send(to, keepalive(i as u64)));
    }
    assert!(
        wait_until(Duration::from_secs(10), || logs
            .iter()
            .all(|l| !l.lock().unwrap().is_empty())),
        "ring traffic incomplete"
    );

    // `shutdown` joins every worker and dialer internally; when it
    // returns, nothing of the pool is left running.
    pool.shutdown();

    // Every port is free again — inbound connections, outbound streams and
    // listeners were all closed with the workers. A leaked fd would hold
    // its listener's port and fail this bind.
    for i in 0..NODES {
        let addr = mesh.addr(NodeId(i));
        let rebound = (0..50).find_map(|_| {
            TcpListener::bind(addr).ok().or_else(|| {
                std::thread::sleep(Duration::from_millis(20));
                None
            })
        });
        assert!(rebound.is_some(), "port of node {i} never came free");
    }
}

/// Records peer-death signals: the observable the goodbye marker exists
/// to suppress.
struct Watch {
    downs: Arc<Mutex<Vec<NodeId>>>,
}

impl Protocol for Watch {
    type Message = StackMsg;

    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Message>) {}
    fn on_message(
        &mut self,
        _ctx: &mut Context<'_, Self::Message>,
        _from: NodeId,
        _msg: Self::Message,
    ) {
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_, Self::Message>, _tag: TimerTag) {}

    fn on_link_down(&mut self, _ctx: &mut Context<'_, Self::Message>, peer: NodeId) {
        self.downs.lock().unwrap().push(peer);
    }
}

fn read_exactly(stream: &mut TcpStream, n: usize) -> std::io::Result<Vec<u8>> {
    let mut buf = vec![0u8; n];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

/// The fd-hygiene contract of the reactor, observed on the wire. An
/// unmonitored outbound link idle past `idle_link_timeout` is closed by
/// the reap sweep, announced with a goodbye marker (zero-length frame
/// prefix); a link under `open_connection` monitoring is never reaped;
/// and on the receiving side a goodbye-announced close is *not* surfaced
/// as peer death, while an unannounced close of the same monitored peer
/// still is. "Node 1" here is a plain listener held by the test, so every
/// byte of the close protocol is asserted directly.
#[test]
fn idle_links_reap_with_goodbye_and_redial() {
    let mesh = TcpMesh::bind(2).expect("bind");
    let cfg = RuntimeConfig {
        workers: 1,
        idle_link_timeout: Duration::from_millis(300),
        ..RuntimeConfig::default()
    };
    let mut pool: ReactorPool<Watch> = ReactorPool::new(WallClock::new(), &cfg);
    let downs = Arc::new(Mutex::new(Vec::new()));
    pool.add_listener(NodeId(0), mesh.take_listener(NodeId(0)), mesh.addrs());
    pool.start_node(
        NodeId(0),
        Watch {
            downs: Arc::clone(&downs),
        },
        1,
        pool.tcp_transport(NodeId(0)),
    );
    let peer_listener = mesh.take_listener(NodeId(1));

    // An unmonitored send dials a fresh connection...
    pool.invoke(NodeId(0), |_p, ctx| ctx.send(NodeId(1), keepalive(7)));
    let (mut conn1, _) = peer_listener.accept().expect("dial from node 0");
    conn1
        .set_read_timeout(Some(Duration::from_secs(15)))
        .expect("read timeout");
    let hello = read_exactly(&mut conn1, 5).expect("handshake");
    assert_eq!(hello[0], WIRE_VERSION);
    assert_eq!(
        u32::from_le_bytes([hello[1], hello[2], hello[3], hello[4]]),
        0
    );
    let prefix = read_exactly(&mut conn1, 4).expect("frame prefix");
    let len = u32::from_le_bytes([prefix[0], prefix[1], prefix[2], prefix[3]]) as usize;
    assert!(len >= 3, "a real frame, not a goodbye");
    read_exactly(&mut conn1, len).expect("frame body");

    // ...which, once idle, is reaped: a goodbye marker, then EOF.
    let goodbye = read_exactly(&mut conn1, 4).expect("goodbye marker");
    assert_eq!(goodbye, [0u8; 4], "deliberate close announces itself");
    let mut probe = [0u8; 1];
    assert_eq!(conn1.read(&mut probe).expect("clean EOF"), 0);

    // The reaped peer stays reachable: monitoring it dials a fresh
    // connection, and *that* link — monitored — is never reaped.
    pool.invoke(NodeId(0), |_p, ctx| ctx.open_connection(NodeId(1)));
    let (mut conn2, _) = peer_listener.accept().expect("eager monitor dial");
    conn2
        .set_read_timeout(Some(Duration::from_secs(2)))
        .expect("read timeout");
    let hello = read_exactly(&mut conn2, 5).expect("handshake");
    assert_eq!(hello[0], WIRE_VERSION);
    match conn2.read(&mut probe) {
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut => {}
        other => panic!("monitored link was closed or wrote unexpectedly: {other:?}"),
    }
    // Traffic still flows on the monitored link.
    pool.invoke(NodeId(0), |_p, ctx| ctx.send(NodeId(1), keepalive(8)));
    conn2
        .set_read_timeout(Some(Duration::from_secs(15)))
        .expect("read timeout");
    let prefix = read_exactly(&mut conn2, 4).expect("frame prefix");
    let len = u32::from_le_bytes([prefix[0], prefix[1], prefix[2], prefix[3]]) as usize;
    let body = read_exactly(&mut conn2, len).expect("frame body");
    let mut frame = prefix;
    frame.extend_from_slice(&body);
    let msg = StackMsg::decode(&frame).expect("decodable frame");
    assert!(matches!(msg, StackMsg::Hpv(HpvMsg::KeepAlive { nonce: 8 })));

    // Receiving side of the marker: node 0 monitors node 1, so an inbound
    // EOF from node 1 is peer death — unless announced. First a
    // goodbye-announced close: no link-down may fire.
    let mut inbound = TcpStream::connect(mesh.addr(NodeId(0))).expect("connect to node 0");
    let mut hello = vec![WIRE_VERSION];
    hello.extend_from_slice(&1u32.to_le_bytes());
    inbound.write_all(&hello).expect("handshake");
    inbound.write_all(&[0u8; 4]).expect("goodbye");
    drop(inbound);
    std::thread::sleep(Duration::from_millis(500));
    assert!(
        downs.lock().unwrap().is_empty(),
        "a goodbye-announced close must not surface as peer death"
    );

    // Then the same close without the marker: link-down must fire (which
    // also proves the assertion above was not vacuous).
    let mut inbound = TcpStream::connect(mesh.addr(NodeId(0))).expect("reconnect to node 0");
    inbound.write_all(&hello).expect("handshake");
    drop(inbound);
    assert!(
        wait_until(Duration::from_secs(10), || {
            downs.lock().unwrap().contains(&NodeId(1))
        }),
        "an unannounced close of a monitored peer must surface"
    );

    // Close node 1's port outright and send again: the fresh dial is
    // refused, the link enters backoff, and the scheduled re-dial fires —
    // the `redials` counter's deterministic trigger.
    drop(conn2);
    drop(peer_listener);
    std::thread::sleep(Duration::from_millis(100)); // outbound EOF noticed
    pool.invoke(NodeId(0), |_p, ctx| ctx.send(NodeId(1), keepalive(9)));
    std::thread::sleep(Duration::from_millis(800)); // a few backoff steps fire

    // Both fd-hygiene counters ride the node's RuntimeStats and surface
    // through `LiveResult` for cluster runs.
    let (_proto, stats) = pool
        .stop_node(NodeId(0))
        .recv_timeout(Duration::from_secs(10))
        .expect("shard reply")
        .expect("node alive");
    assert!(
        stats.links_reaped >= 1,
        "the idle reap above must be counted (links_reaped = {})",
        stats.links_reaped
    );
    assert!(
        stats.redials >= 1,
        "the refused dial's backoff re-dial must be counted (redials = {})",
        stats.redials
    );
    let result = LiveResult {
        protocol: "watch",
        source: NodeId(0),
        original_nodes: 2,
        messages_published: 0,
        publish_times: Vec::new(),
        nodes: vec![LiveNode {
            id: NodeId(0),
            report: NodeReport::default(),
            stats,
        }],
        wall_elapsed: Duration::from_secs(1),
        ever_killed: Vec::new(),
    };
    assert_eq!(result.links_reaped(), stats.links_reaped);
    assert_eq!(result.redials(), stats.redials);

    pool.shutdown();
}

/// The reap counter surfaces organically on a collected cluster result:
/// shuffle traffic creates unmonitored links that go idle past the
/// cut-off and are closed by the reap sweep, visible cluster-wide as
/// `LiveResult::links_reaped`.
#[test]
fn live_result_reports_reaps_and_redials() {
    const NODES: u32 = 12;
    let cfg = ClusterConfig {
        nodes: NODES,
        transport: TransportKind::Tcp,
        seed: 0xB215A,
        runtime: RuntimeConfig {
            // Short idle cut-off so shuffle links reap within the test.
            idle_link_timeout: Duration::from_millis(300),
            ..RuntimeConfig::default()
        },
        ..Default::default()
    };
    let stack = BrisaStackConfig {
        hpv: HyParViewConfig {
            // Fast shuffles: each one dials a mostly-fresh passive peer,
            // creating the unmonitored links the reap sweep exists for.
            shuffle_period: brisa_simnet::SimDuration::from_secs(1),
            ..HyParViewConfig::default()
        },
        brisa: BrisaConfig::default(),
    };
    let mut cluster: Cluster<BrisaNode> = Cluster::launch(&cfg, &stack).expect("launch");
    cluster.run_for(Duration::from_secs(2));
    cluster.publish(128);
    // Let shuffle links go idle past the cut-off and the ~1 s reap sweep
    // pass over them a few times.
    cluster.run_for(Duration::from_secs(4));
    let result = cluster.stop_and_collect();
    assert!(
        result.links_reaped() >= 1,
        "no idle link was reaped (links_reaped = {})",
        result.links_reaped()
    );
}

/// 256 live loopback nodes on one reactor pool — every node delivers the
/// whole stream exactly once (zero duplicate deliveries).
#[test]
fn loopback_256_nodes_deliver_exactly_once() {
    const NODES: u32 = 256;
    const MESSAGES: u64 = 3;
    let cfg = ClusterConfig {
        nodes: NODES,
        transport: TransportKind::Loopback,
        seed: 0xB215A,
        ..Default::default()
    };
    let stack = BrisaStackConfig {
        hpv: HyParViewConfig::default(),
        brisa: BrisaConfig::default(),
    };
    let mut cluster: Cluster<BrisaNode> = Cluster::launch(&cfg, &stack).expect("launch");
    // Let the overlay and dissemination structure form across 256 nodes.
    cluster.run_for(Duration::from_secs(2));
    for _ in 0..MESSAGES {
        cluster.publish(256);
        cluster.run_for(Duration::from_millis(50));
    }
    let complete = cluster.wait_for_delivery(MESSAGES, Duration::from_secs(120));
    let result = cluster.stop_and_collect();
    assert!(
        complete,
        "stream incomplete at 256 nodes: {}",
        result.delivery_fingerprint()
    );
    assert_eq!(result.nodes.len(), NODES as usize);
    assert_eq!(result.delivery_rate(), 1.0);
    // Zero duplicates: every node's delivered set is exactly the published
    // sequence numbers, each once (delivered_sets yields first-delivery
    // records; the invariant check rejects duplicate records).
    result
        .check_delivery_invariants()
        .expect("clean delivery records");
    let expected: BTreeSet<u64> = (0..MESSAGES).collect();
    for (id, seqs) in result.delivered_sets() {
        assert_eq!(seqs.len() as u64, MESSAGES, "node {id} delivered set size");
        assert_eq!(
            seqs.iter().copied().collect::<BTreeSet<u64>>(),
            expected,
            "node {id} delivered each sequence exactly once"
        );
    }
}
