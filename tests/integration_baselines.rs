//! Integration tests of the baseline protocols and of the cross-protocol
//! comparisons (Figure 12 / Table II shape checks at reduced scale).

use brisa_simnet::SimDuration;
use brisa_workloads::{
    run_brisa, run_flood, run_simple_gossip, run_simple_tree, run_tag, BaselineScenario,
    BrisaScenario, StreamSpec,
};

fn small_baseline(nodes: u32) -> BaselineScenario {
    BaselineScenario {
        nodes,
        stream: StreamSpec::short(20, 1024),
        drain: SimDuration::from_secs(40),
        ..BaselineScenario::small_test(nodes)
    }
}

#[test]
fn every_baseline_reaches_every_node() {
    let sc = small_baseline(48);
    for (label, completeness) in [
        ("flood", run_flood(&sc).completeness()),
        ("SimpleTree", run_simple_tree(&sc).completeness()),
        ("SimpleGossip", run_simple_gossip(&sc).completeness()),
        ("TAG", run_tag(&sc).completeness()),
    ] {
        assert!(
            (completeness - 1.0).abs() < 1e-9,
            "{label} must deliver everything, got {completeness}"
        );
    }
}

#[test]
fn duplicate_ordering_matches_the_paper() {
    // Flooding and gossip pay duplicates; trees (SimpleTree and BRISA after
    // stabilisation) do not.
    let sc = small_baseline(48);
    let flood = run_flood(&sc);
    let tree = run_simple_tree(&sc);
    let brisa_run = run_brisa(&BrisaScenario {
        nodes: 48,
        stream: StreamSpec::short(20, 1024),
        ..BrisaScenario::small_test(48)
    });
    let mean_dup = |nodes: &[brisa_workloads::BaselineNodeSummary]| {
        nodes.iter().map(|n| n.duplicates_per_message).sum::<f64>() / nodes.len() as f64
    };
    let flood_dup = mean_dup(&flood.nodes);
    let tree_dup = mean_dup(&tree.nodes);
    let brisa_dup = brisa_run
        .nodes
        .iter()
        .map(|n| n.duplicates_per_message)
        .sum::<f64>()
        / brisa_run.nodes.len() as f64;
    assert_eq!(tree_dup, 0.0, "a centralized tree never duplicates");
    assert!(
        flood_dup > brisa_dup,
        "flooding duplicates more than BRISA ({flood_dup} vs {brisa_dup})"
    );
    assert!(
        flood_dup > 0.5,
        "flooding pays at least view-size-ish duplicates"
    );
}

#[test]
fn bandwidth_ordering_for_large_payloads_matches_figure_12() {
    // For payloads that dominate the control traffic, SimpleGossip must be
    // the most expensive and the two trees (SimpleTree, BRISA) the cheapest.
    let stream = StreamSpec {
        messages: 20,
        rate_per_sec: 5.0,
        payload_bytes: 10 * 1024,
    };
    let sc = BaselineScenario {
        stream,
        ..small_baseline(48)
    };
    let gossip = run_simple_gossip(&sc);
    let tree = run_simple_tree(&sc);
    let brisa_run = run_brisa(&BrisaScenario {
        nodes: 48,
        stream,
        ..BrisaScenario::small_test(48)
    });
    let brisa_mb = brisa_run
        .nodes
        .iter()
        .map(|n| n.bandwidth.total_uploaded_mb())
        .sum::<f64>()
        / brisa_run.nodes.len() as f64;
    let gossip_mb = gossip.mean_data_transmitted_mb();
    let tree_mb = tree.mean_data_transmitted_mb();
    assert!(
        gossip_mb > brisa_mb,
        "gossip ({gossip_mb:.2} MB/node) must exceed BRISA ({brisa_mb:.2} MB/node)"
    );
    assert!(
        gossip_mb > tree_mb,
        "gossip ({gossip_mb:.2} MB/node) must exceed SimpleTree ({tree_mb:.2} MB/node)"
    );
    assert!(
        brisa_mb < tree_mb * 3.0,
        "BRISA stays in the same ballpark as SimpleTree ({brisa_mb:.2} vs {tree_mb:.2} MB/node)"
    );
}

#[test]
fn dissemination_latency_ordering_matches_table_2() {
    // TAG (pull-based) must be slower than BRISA (push-based) for the same
    // stream. The per-message cost of pulling shows deterministically in the
    // routing delay (injection to first delivery: every TAG hop waits for
    // the next pull tick, ~hundreds of ms, while BRISA pushes in
    // sub-millisecond cluster hops). The first-to-last delivery *span* of
    // Table II shows the same ordering at the paper's 500-message scale but
    // is pure pull-phase noise at this reduced scale, so the span only gets
    // a sanity bound here.
    let stream = StreamSpec {
        messages: 30,
        rate_per_sec: 5.0,
        payload_bytes: 1024,
    };
    let tag = run_tag(&BaselineScenario {
        stream,
        ..small_baseline(48)
    });
    let brisa_run = run_brisa(&BrisaScenario {
        nodes: 48,
        stream,
        ..BrisaScenario::small_test(48)
    });
    let mean = |v: Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let tag_delay = mean(
        tag.nodes
            .iter()
            .filter_map(|n| n.routing_delay_ms)
            .collect(),
    );
    let brisa_delay = mean(
        brisa_run
            .nodes
            .iter()
            .filter_map(|n| n.routing_delay_ms)
            .collect(),
    );
    assert!(
        tag_delay > 2.0 * brisa_delay,
        "pull-based TAG ({tag_delay:.1}ms per message) must be clearly slower than \
         push-based BRISA ({brisa_delay:.1}ms)"
    );
    let brisa_lat = mean(
        brisa_run
            .nodes
            .iter()
            .filter_map(|n| n.dissemination_latency_secs)
            .collect(),
    );
    let ideal = stream.duration().as_secs_f64();
    assert!(
        brisa_lat < ideal * 1.2,
        "BRISA stays close to the ideal stream duration ({brisa_lat:.2}s vs {ideal:.2}s)"
    );
}

#[test]
fn tag_construction_is_slower_on_planetlab_than_brisa() {
    use brisa_workloads::Testbed;
    let stream = StreamSpec::short(15, 1024);
    let nodes = 40;
    let tag = run_tag(&BaselineScenario {
        nodes,
        testbed: Testbed::PlanetLab,
        stream,
        drain: SimDuration::from_secs(60),
        ..BaselineScenario::small_test(nodes)
    });
    let brisa_run = run_brisa(&BrisaScenario {
        nodes,
        testbed: Testbed::PlanetLab,
        stream,
        ..BrisaScenario::small_test(nodes)
    });
    let median = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.get(v.len() / 2).copied().unwrap_or(0.0)
    };
    let tag_ct = median(
        tag.nodes
            .iter()
            .filter_map(|n| n.construction_time_ms)
            .collect(),
    );
    let brisa_ct = median(
        brisa_run
            .nodes
            .iter()
            .filter_map(|n| n.construction_time_ms)
            .collect(),
    );
    assert!(
        tag_ct > brisa_ct,
        "TAG's multi-round-trip traversal ({tag_ct:.0} ms) must be slower than BRISA's \
         reception-driven construction ({brisa_ct:.0} ms) on WAN latencies"
    );
}
