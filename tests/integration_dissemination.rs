//! Cross-crate integration tests: BRISA running on the full stack
//! (simulator + HyParView + BRISA) through the experiment harness.

use brisa::{ParentStrategy, StructureMode};
use brisa_workloads::{run_brisa, BrisaScenario, Scale, StreamSpec, Testbed};

#[test]
fn tree_dissemination_is_complete_and_structure_is_sound() {
    let sc = BrisaScenario::small_test(64);
    let result = run_brisa(&sc);
    assert!(
        (result.completeness() - 1.0).abs() < 1e-9,
        "all nodes delivered all messages"
    );
    assert!(result.structure.is_acyclic(), "the emerged tree is acyclic");
    assert!(
        result.structure.is_complete(),
        "every node is reachable from the source"
    );
    for node in result.nodes.iter().filter(|n| !n.is_source) {
        assert_eq!(node.parents.len(), 1, "tree mode keeps exactly one parent");
        assert!(node.depth.is_some(), "every node positioned itself");
    }
}

#[test]
fn duplicates_vanish_after_the_bootstrap_flood() {
    // With a long stream, the per-message duplicate average tends to zero
    // because only the first message floods.
    let long = BrisaScenario {
        stream: StreamSpec::short(50, 256),
        ..BrisaScenario::small_test(48)
    };
    let result = run_brisa(&long);
    let avg: f64 = result
        .non_source(|n| n.duplicates_per_message)
        .iter()
        .sum::<f64>()
        / (result.nodes.len() - 1) as f64;
    assert!(
        avg < 0.25,
        "with 50 messages the bootstrap duplicates amortise to < 0.25/msg, got {avg}"
    );
}

#[test]
fn larger_views_produce_shallower_structures() {
    let depth_for = |view: usize| {
        let sc = BrisaScenario {
            view_size: view,
            ..BrisaScenario::small_test(96)
        };
        let result = run_brisa(&sc);
        let depths = result.structure.depths();
        *depths.values().max().expect("non-empty structure")
    };
    let shallow = depth_for(8);
    let deep = depth_for(3);
    assert!(
        shallow <= deep,
        "view 8 should give a tree no deeper than view 3 (got {shallow} vs {deep})"
    );
}

#[test]
fn dag_mode_bounds_duplicates_by_parent_count() {
    let sc = BrisaScenario {
        mode: StructureMode::Dag { parents: 2 },
        view_size: 8,
        stream: StreamSpec::short(40, 256),
        ..BrisaScenario::small_test(48)
    };
    let result = run_brisa(&sc);
    assert!((result.completeness() - 1.0).abs() < 1e-9);
    for n in result.nodes.iter().filter(|n| !n.is_source) {
        assert!(
            n.parents.len() <= 2,
            "never more than the configured parents"
        );
        assert!(
            n.duplicates_per_message < 2.0,
            "duplicates are bounded by the extra parents (got {})",
            n.duplicates_per_message
        );
    }
}

#[test]
fn planetlab_delays_are_higher_than_cluster_delays() {
    let mean_delay = |testbed| {
        let sc = BrisaScenario {
            testbed,
            stream: StreamSpec::short(15, 512),
            ..BrisaScenario::small_test(48)
        };
        let result = run_brisa(&sc);
        let v: Vec<f64> = result
            .nodes
            .iter()
            .filter_map(|n| n.routing_delay_ms)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let cluster = mean_delay(Testbed::Cluster);
    let planetlab = mean_delay(Testbed::PlanetLab);
    assert!(
        planetlab > 10.0 * cluster,
        "WAN delays dominate LAN delays (cluster {cluster:.2} ms, planetlab {planetlab:.2} ms)"
    );
}

#[test]
fn strategies_all_reach_every_node() {
    for strategy in [
        ParentStrategy::FirstComeFirstPicked,
        ParentStrategy::DelayAware,
        ParentStrategy::Gerontocratic,
        ParentStrategy::LoadBalancing,
    ] {
        let sc = BrisaScenario {
            strategy,
            ..BrisaScenario::small_test(40)
        };
        let result = run_brisa(&sc);
        assert!(
            (result.completeness() - 1.0).abs() < 1e-9,
            "{strategy:?} must still deliver everything"
        );
        assert!(
            result.structure.is_acyclic(),
            "{strategy:?} must not create cycles"
        );
    }
}

#[test]
fn runs_are_deterministic_for_a_fixed_seed() {
    let sc = BrisaScenario::small_test(32);
    let a = run_brisa(&sc);
    let b = run_brisa(&sc);
    assert_eq!(a.messages_published, b.messages_published);
    let parents = |r: &brisa_workloads::BrisaRunResult| {
        let mut v: Vec<(u32, Vec<u32>)> = r
            .nodes
            .iter()
            .map(|n| (n.id.0, n.parents.iter().map(|p| p.0).collect()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        parents(&a),
        parents(&b),
        "identical seeds give identical structures"
    );
}

#[test]
fn scale_quick_is_the_test_default() {
    assert_eq!(Scale::from_env(), Scale::Quick);
}
