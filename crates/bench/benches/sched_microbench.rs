//! Criterion micro-benchmarks of the two event schedulers in isolation:
//! the timing wheel (hot path) against the `BinaryHeap` reference.
//!
//! Two synthetic workloads bracket what the simulator actually does:
//!
//! * **steady_state** — a bounded-horizon hold-K pattern: keep K events
//!   pending, repeatedly pop the earliest and push a replacement a short
//!   latency ahead. This is the shape of a dissemination in progress
//!   (every delivery schedules the next hop a few ms out).
//! * **timer_mix** — the same, but one push in eight lands seconds ahead
//!   (periodic protocol timers), exercising the coarse wheel level.
//!
//! The end-to-end numbers (and the recorded-trace replay, which is the
//! fairest comparison because it uses the real grid workload) live in
//! `bench_engine_wallclock`; these microbenches exist to catch regressions
//! in the data structures themselves.

use brisa_simnet::sched::{HeapScheduler, TimingWheel};
use brisa_simnet::SimTime;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Payload matching the simulator's in-queue event record size for BRISA.
type Payload = [u64; 6];
const PAYLOAD: Payload = [7; 6];

/// Deterministic xorshift so both schedulers see the identical sequence.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Hold-K churn: pop one, push one `latency_range`-bounded step ahead, with
/// every eighth push a far timer when `with_timers` is set.
fn churn<Q>(
    q: &mut Q,
    push: impl Fn(&mut Q, SimTime),
    pop: impl Fn(&mut Q) -> Option<SimTime>,
    held: usize,
    ops: usize,
    with_timers: bool,
) {
    let mut rng = XorShift(0x5EED_CAFE);
    for i in 0..held as u64 {
        push(q, SimTime::from_micros(1 + i));
    }
    for i in 0..ops {
        let now = pop(q).expect("queue held non-empty").as_micros();
        let ahead = if with_timers && i % 8 == 0 {
            1_000_000 + rng.next() % 4_000_000 // 1-5 s: periodic timer
        } else {
            100 + rng.next() % 9_900 // 0.1-10 ms: next-hop latency
        };
        push(q, SimTime::from_micros(now + ahead));
    }
    while pop(q).is_some() {}
}

fn bench_schedulers(c: &mut Criterion) {
    // Same guard as bench_engine_wallclock: the entries moved here must be
    // as big as the simulator's real in-queue event records, or the numbers
    // stop reflecting the true per-entry move cost.
    assert_eq!(
        std::mem::size_of::<Payload>(),
        brisa_simnet::event_record_size::<brisa::BrisaNode>(),
        "microbench payload must match the simulator's event record size"
    );
    const HELD: usize = 4096;
    const OPS: usize = 100_000;
    for (name, with_timers) in [("steady_state", false), ("timer_mix", true)] {
        c.bench_function(&format!("sched_wheel_{name}"), |b| {
            b.iter(|| {
                let mut q: TimingWheel<Payload> = TimingWheel::new();
                churn(
                    &mut q,
                    |q, t| q.push(t, PAYLOAD),
                    |q| black_box(q.pop()).map(|e| e.time),
                    HELD,
                    OPS,
                    with_timers,
                );
            });
        });
        c.bench_function(&format!("sched_heap_{name}"), |b| {
            b.iter(|| {
                let mut q: HeapScheduler<Payload> = HeapScheduler::new();
                churn(
                    &mut q,
                    |q, t| q.push(t, PAYLOAD),
                    |q| black_box(q.pop()).map(|e| e.time),
                    HELD,
                    OPS,
                    with_timers,
                );
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_schedulers
}
criterion_main!(benches);
