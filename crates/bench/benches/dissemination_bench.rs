//! Criterion benchmarks of full simulated dissemination rounds: how long the
//! harness takes (wall clock) to bootstrap an overlay and push a stream
//! through it, for BRISA and for flooding. This measures the cost of the
//! reproduction harness itself, not protocol quality.

use brisa_workloads::{run_brisa, run_flood, BaselineScenario, BrisaScenario, StreamSpec};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_dissemination(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_dissemination");
    group.sample_size(10);
    group.bench_function("brisa_64_nodes_20_msgs", |b| {
        b.iter(|| {
            let sc = BrisaScenario {
                nodes: 64,
                stream: StreamSpec::short(20, 1024),
                ..BrisaScenario::small_test(64)
            };
            let result = run_brisa(&sc);
            assert!(result.completeness() > 0.99);
            std::hint::black_box(result.nodes.len())
        });
    });
    group.bench_function("flood_64_nodes_20_msgs", |b| {
        b.iter(|| {
            let sc = BaselineScenario {
                nodes: 64,
                stream: StreamSpec::short(20, 1024),
                ..BaselineScenario::small_test(64)
            };
            let result = run_flood(&sc);
            assert!(result.completeness() > 0.99);
            std::hint::black_box(result.nodes.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dissemination);
criterion_main!(benches);
