//! Criterion micro-benchmarks of the hot protocol paths: HyParView message
//! handling and the BRISA data-path decision (duplicate detection + parent
//! selection + relay fan-out).

use brisa::{BrisaConfig, BrisaCore, BrisaMsg, CycleGuard, DataMsg, NoTelemetry};
use brisa_membership::{HpvMsg, HyParView, HyParViewConfig};
use brisa_simnet::{NodeId, SimTime};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_hyparview_shuffle(c: &mut Criterion) {
    c.bench_function("hyparview_shuffle_round", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut node = HyParView::new(NodeId(0), HyParViewConfig::with_active_size(8));
        let mut out = Vec::new();
        for i in 1..=8u32 {
            // Populate the views through the public message interface.
            out.extend(node.handle(
                SimTime::ZERO,
                NodeId(i),
                HpvMsg::Neighbor {
                    high_priority: true,
                },
                &mut rng,
            ));
        }
        for i in 100..160u32 {
            let _ = node.handle(
                SimTime::ZERO,
                NodeId(1),
                HpvMsg::ShuffleReply {
                    nodes: vec![NodeId(i)],
                },
                &mut rng,
            );
        }
        b.iter(|| {
            let outs = node.shuffle_tick(&mut rng);
            std::hint::black_box(outs)
        });
    });
}

fn bench_brisa_data_path(c: &mut Criterion) {
    let make_core = || {
        let mut core = BrisaCore::new(NodeId(0), BrisaConfig::default());
        core.note_started(SimTime::ZERO);
        for i in 1..=8u32 {
            core.on_neighbor_up(NodeId(i));
        }
        core
    };
    let data = |seq: u64, sender: u32| {
        BrisaMsg::data(DataMsg {
            seq,
            payload_bytes: 1024,
            guard: CycleGuard::Path(vec![NodeId(100), NodeId(sender)]),
            sender_uptime_secs: 10,
            sender_load: 2,
        })
    };
    c.bench_function("brisa_first_reception_and_relay", |b| {
        b.iter_batched(
            make_core,
            |mut core| {
                for seq in 0..64u64 {
                    let actions = core.handle(
                        SimTime::from_millis(seq),
                        NodeId(1),
                        data(seq, 1),
                        &NoTelemetry,
                    );
                    std::hint::black_box(actions);
                }
                core
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("brisa_duplicate_deactivation", |b| {
        b.iter_batched(
            || {
                let mut core = make_core();
                let _ = core.handle(SimTime::ZERO, NodeId(1), data(0, 1), &NoTelemetry);
                core
            },
            |mut core| {
                for sender in 2..=8u32 {
                    let actions = core.handle(
                        SimTime::from_millis(sender as u64),
                        NodeId(sender),
                        data(0, sender),
                        &NoTelemetry,
                    );
                    std::hint::black_box(actions);
                }
                core
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hyparview_shuffle, bench_brisa_data_path
}
criterion_main!(benches);
