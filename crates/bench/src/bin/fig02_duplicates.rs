//! Figure 2: CDF of duplicates per message per node under flooding over
//! HyParView, for active view sizes 4, 6, 8 and 10.
//!
//! Paper shape: the number of duplicates grows sharply with the view size —
//! with view 4 half of the nodes see more than one duplicate per message,
//! with view 10 they see more than seven.
//!
//! The four view-size cells are independent simulations; they fan out
//! across threads through `run_matrix` (set `BRISA_THREADS=1` to force a
//! sequential run — the numbers do not change).

use brisa_bench::{banner, print_cdf_series, run_flood, run_matrix, BaselineScenario, Scale};
use brisa_metrics::Cdf;
use brisa_workloads::{scenarios, StreamSpec};

fn main() {
    let scale = Scale::from_env();
    let (nodes, messages, payload, views) = scenarios::fig2(scale);
    banner(
        "Figure 2",
        "duplicates per message under flooding (HyParView)",
        scale,
    );
    println!("nodes = {nodes}, messages = {messages}, payload = {payload} B");
    println!();

    let cells: Vec<BaselineScenario> = views
        .iter()
        .map(|&view| BaselineScenario {
            nodes,
            view_size: view,
            stream: StreamSpec {
                messages,
                rate_per_sec: 5.0,
                payload_bytes: payload,
            },
            ..BaselineScenario::default()
        })
        .collect();
    let results = run_matrix(&cells, |_, sc| run_flood(sc));

    let mut series = Vec::new();
    for (view, result) in views.iter().zip(&results) {
        let cdf = Cdf::from_samples(
            result
                .nodes
                .iter()
                .filter(|n| !n.is_source)
                .map(|n| n.duplicates_per_message),
        );
        println!(
            "view size {view}: completeness {:.1}%, mean duplicates/message {:.2}",
            result.completeness() * 100.0,
            cdf.mean()
        );
        series.push((format!("view={view}"), cdf));
    }
    println!();
    print_cdf_series("duplicates per message", &mut series, 12);
}
