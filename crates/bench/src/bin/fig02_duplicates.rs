//! Figure 2: CDF of duplicates per message per node under flooding over
//! HyParView, for active view sizes 4, 6, 8 and 10.
//!
//! Paper shape: the number of duplicates grows sharply with the view size —
//! with view 4 half of the nodes see more than one duplicate per message,
//! with view 10 they see more than seven.

use brisa_bench::{banner, print_cdf_series};
use brisa_metrics::Cdf;
use brisa_workloads::{run_flood, scenarios, BaselineScenario, Scale, StreamSpec};

fn main() {
    let scale = Scale::from_env();
    let (nodes, messages, payload, views) = scenarios::fig2(scale);
    banner(
        "Figure 2",
        "duplicates per message under flooding (HyParView)",
        scale,
    );
    println!("nodes = {nodes}, messages = {messages}, payload = {payload} B");
    println!();

    let mut series = Vec::new();
    for view in views {
        let sc = BaselineScenario {
            nodes,
            view_size: view,
            stream: StreamSpec { messages, rate_per_sec: 5.0, payload_bytes: payload },
            ..BaselineScenario::default()
        };
        let result = run_flood(&sc);
        let cdf = Cdf::from_samples(
            result
                .nodes
                .iter()
                .filter(|n| !n.is_source)
                .map(|n| n.duplicates_per_message),
        );
        println!(
            "view size {view}: completeness {:.1}%, mean duplicates/message {:.2}",
            result.completeness() * 100.0,
            cdf.mean()
        );
        series.push((format!("view={view}"), cdf));
    }
    println!();
    print_cdf_series("duplicates per message", &mut series, 12);
}
