//! Table II: dissemination latency for a 512-node network receiving 500
//! messages of 1 KB at 5 messages per second, for SimpleTree, BRISA,
//! SimpleGossip and TAG.
//!
//! The dissemination latency of a node is the time between its first and
//! last delivery; the ideal value equals the injection window
//! (messages / rate). Paper shape: SimpleTree ≈ BRISA ≈ ideal,
//! SimpleGossip a bit slower (anti-entropy compensates omissions), TAG
//! clearly slower because it pulls.

use brisa_bench::banner;
use brisa_metrics::report::render_table;
use brisa_workloads::{
    run_brisa, run_simple_gossip, run_simple_tree, run_tag, scenarios, BaselineScenario,
    BrisaScenario, Scale,
};

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn main() {
    let scale = Scale::from_env();
    banner("Table II", "dissemination latency per protocol", scale);
    let (nodes, _payloads, stream) = scenarios::comparison(scale);
    let ideal = stream.duration().as_secs_f64();
    println!(
        "nodes = {nodes}, messages = {} at {}/s (ideal latency {:.1} s)",
        stream.messages, stream.rate_per_sec, ideal
    );
    println!();

    let baseline_sc = BaselineScenario { nodes, view_size: 4, stream, ..Default::default() };
    let brisa_sc = BrisaScenario { nodes, view_size: 4, stream, ..Default::default() };

    let tree = run_simple_tree(&baseline_sc);
    let brisa_run = run_brisa(&brisa_sc);
    let gossip = run_simple_gossip(&baseline_sc);
    let tag = run_tag(&baseline_sc);

    let tree_lat = mean(tree.nodes.iter().filter_map(|n| n.dissemination_latency_secs));
    let brisa_lat = mean(brisa_run.nodes.iter().filter_map(|n| n.dissemination_latency_secs));
    let gossip_lat = mean(gossip.nodes.iter().filter_map(|n| n.dissemination_latency_secs));
    let tag_lat = mean(tag.nodes.iter().filter_map(|n| n.dissemination_latency_secs));

    let overhead = |lat: f64| {
        if tree_lat > 0.0 {
            format!("{:+.0}%", (lat / tree_lat - 1.0) * 100.0)
        } else {
            "-".to_string()
        }
    };
    let headers = ["protocol", "latency (seconds)", "overhead vs SimpleTree"];
    let rows = vec![
        vec!["SimpleTree".to_string(), format!("{tree_lat:.3}"), "-".to_string()],
        vec!["Brisa".to_string(), format!("{brisa_lat:.3}"), overhead(brisa_lat)],
        vec!["SimpleGossip".to_string(), format!("{gossip_lat:.3}"), overhead(gossip_lat)],
        vec!["TAG".to_string(), format!("{tag_lat:.3}"), overhead(tag_lat)],
    ];
    print!("{}", render_table(&headers, &rows));
}
