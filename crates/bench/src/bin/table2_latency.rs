//! Table II: dissemination latency for a 512-node network receiving 500
//! messages of 1 KB at 5 messages per second, for SimpleTree, BRISA,
//! SimpleGossip and TAG.
//!
//! The dissemination latency of a node is the time between its first and
//! last delivery; the ideal value equals the injection window
//! (messages / rate). Paper shape: SimpleTree ≈ BRISA ≈ ideal,
//! SimpleGossip a bit slower (anti-entropy compensates omissions), TAG
//! clearly slower because it pulls.
//!
//! The four protocol runs are independent simulations; they fan out across
//! threads through `run_matrix`.

use brisa_bench::{
    banner, run_brisa, run_matrix, run_simple_gossip, run_simple_tree, run_tag, BaselineScenario,
    BrisaScenario, Scale,
};
use brisa_metrics::report::render_table;
use brisa_workloads::scenarios;

/// One cell of the protocol comparison.
#[derive(Clone, Copy)]
enum Cell {
    SimpleTree,
    Brisa,
    SimpleGossip,
    Tag,
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn main() {
    let scale = Scale::from_env();
    banner("Table II", "dissemination latency per protocol", scale);
    let (nodes, _payloads, stream) = scenarios::comparison(scale);
    let ideal = stream.duration().as_secs_f64();
    println!(
        "nodes = {nodes}, messages = {} at {}/s (ideal latency {:.1} s)",
        stream.messages, stream.rate_per_sec, ideal
    );
    println!();

    let baseline_sc = BaselineScenario {
        nodes,
        view_size: 4,
        stream,
        ..Default::default()
    };
    let brisa_sc = BrisaScenario {
        nodes,
        view_size: 4,
        stream,
        ..Default::default()
    };

    let cells = [Cell::SimpleTree, Cell::Brisa, Cell::SimpleGossip, Cell::Tag];
    let latencies = run_matrix(&cells, |_, cell| match cell {
        Cell::SimpleTree => {
            let r = run_simple_tree(&baseline_sc);
            mean(r.nodes.iter().filter_map(|n| n.dissemination_latency_secs))
        }
        Cell::Brisa => {
            let r = run_brisa(&brisa_sc);
            mean(r.nodes.iter().filter_map(|n| n.dissemination_latency_secs))
        }
        Cell::SimpleGossip => {
            let r = run_simple_gossip(&baseline_sc);
            mean(r.nodes.iter().filter_map(|n| n.dissemination_latency_secs))
        }
        Cell::Tag => {
            let r = run_tag(&baseline_sc);
            mean(r.nodes.iter().filter_map(|n| n.dissemination_latency_secs))
        }
    });
    let (tree_lat, brisa_lat, gossip_lat, tag_lat) =
        (latencies[0], latencies[1], latencies[2], latencies[3]);

    let overhead = |lat: f64| {
        if tree_lat > 0.0 {
            format!("{:+.0}%", (lat / tree_lat - 1.0) * 100.0)
        } else {
            "-".to_string()
        }
    };
    let headers = ["protocol", "latency (seconds)", "overhead vs SimpleTree"];
    let rows = vec![
        vec![
            "SimpleTree".to_string(),
            format!("{tree_lat:.3}"),
            "-".to_string(),
        ],
        vec![
            "Brisa".to_string(),
            format!("{brisa_lat:.3}"),
            overhead(brisa_lat),
        ],
        vec![
            "SimpleGossip".to_string(),
            format!("{gossip_lat:.3}"),
            overhead(gossip_lat),
        ],
        vec![
            "TAG".to_string(),
            format!("{tag_lat:.3}"),
            overhead(tag_lat),
        ],
    ];
    print!("{}", render_table(&headers, &rows));
}
