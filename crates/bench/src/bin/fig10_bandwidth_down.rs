//! Figure 10: download bandwidth percentiles (5/25/50/75/90th) during
//! dissemination for a 512-node network, payload sizes 1/10/50/100 KB,
//! tree and DAG(2) × view sizes 4 and 8.
//!
//! Paper shape: trees download exactly one copy per message; DAGs download
//! roughly twice as much (one copy per parent); the PSS overhead difference
//! between view sizes is negligible compared to the payload traffic.

use brisa_bench::banner;
use brisa_metrics::report::{percentile_headers, percentile_row, render_table};
use brisa_metrics::PercentileSummary;
use brisa_workloads::{run_brisa, scenarios, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 10",
        "download bandwidth during dissemination",
        scale,
    );
    let (payloads, base_scenarios) = scenarios::fig10_11(scale);
    let headers = percentile_headers("configuration (KB/s down)");
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    for payload in payloads {
        let mut rows = Vec::new();
        for base in &base_scenarios {
            let mut sc = base.clone();
            sc.stream.payload_bytes = payload;
            let result = run_brisa(&sc);
            let summary = PercentileSummary::from_samples(
                result
                    .nodes
                    .iter()
                    .filter(|n| !n.is_source)
                    .map(|n| n.bandwidth.diss_down_kbps),
            );
            let label = format!(
                "{}, view={}",
                if sc.mode.is_tree() { "tree" } else { "DAG-2" },
                sc.view_size
            );
            rows.push(percentile_row(&label, &summary));
        }
        println!("message size = {} KB", payload / 1024);
        print!("{}", render_table(&header_refs, &rows));
        println!();
    }
}
