//! Figure 8: sample emerged tree shapes for a 100-node network with active
//! view sizes 4 and 8 (expansion factor 1), rendered as Graphviz DOT.
//!
//! Paper shape: even with the naive first-come first-picked strategy the
//! trees are fairly balanced; the view-8 tree is shallower and wider than
//! the view-4 one.

use brisa_bench::banner;
use brisa_workloads::{run_brisa, scenarios, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Figure 8", "sample emerged tree shapes (DOT output)", scale);
    for sc in scenarios::fig8(scale) {
        let result = run_brisa(&sc);
        let depths = result.structure.depths();
        let max_depth = depths.values().max().copied().unwrap_or(0);
        println!(
            "// view size {} — {} nodes, height {}, complete: {}",
            sc.view_size,
            depths.len(),
            max_depth,
            result.structure.is_complete()
        );
        println!(
            "{}",
            result
                .structure
                .to_dot(&format!("brisa_view{}", sc.view_size))
        );
    }
}
