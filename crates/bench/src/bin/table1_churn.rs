//! Table I: impact of churn on BRISA for 128- and 512-node networks with
//! active view size 4, churn rates of 3% and 5% per minute over ten minutes,
//! tree vs DAG with two parents.
//!
//! Paper shape: DAGs lose parents more often (they have more of them) but
//! are orphaned far less often than trees; the vast majority of
//! disconnections are repaired with the soft mechanism.
//!
//! The eight (size × rate × structure) cells are independent simulations and
//! fan out across threads through `run_matrix`.

use brisa_bench::{banner, run_brisa, run_matrix};
use brisa_metrics::report::render_table;
use brisa_workloads::{scenarios, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Table I",
        "impact of churn (parents lost, orphans, repairs)",
        scale,
    );
    let headers = [
        "nodes",
        "churn %/min",
        "structure",
        "parents lost/min",
        "orphans/min",
        "% soft repairs",
        "% hard repairs",
        "completeness %",
    ];
    let cells = scenarios::table1(scale);
    let results = run_matrix(&cells, |_, (_, _, _, sc)| run_brisa(sc));
    let mut rows = Vec::new();
    for ((nodes, rate, mode, _), result) in cells.iter().zip(&results) {
        let churn = result
            .churn
            .clone()
            .expect("table 1 runs always have churn");
        rows.push(vec![
            nodes.to_string(),
            format!("{rate:.0}"),
            if mode.is_tree() {
                "Tree".to_string()
            } else {
                "DAG, 2 parents".to_string()
            },
            format!("{:.1}", churn.parents_lost_per_min),
            format!("{:.1}", churn.orphans_per_min),
            format!("{:.1}", churn.soft_pct),
            format!("{:.1}", churn.hard_pct),
            format!("{:.1}", result.completeness() * 100.0),
        ]);
    }
    print!("{}", render_table(&headers, &rows));
}
