//! Throughput benchmark of the live runtime: BRISA on the sharded
//! reactor, wall-clock time, real frames through the wire codec.
//!
//! Sweeps a nodes × payload grid on the loopback mesh; each cell boots a
//! [`Cluster`], publishes a **burst-cadence** stream (2 ms between
//! publishes — the stream is meant to saturate the runtime, not pace it),
//! waits for full delivery and reports:
//!
//! * **deliveries/sec** — (node × message) delivery events per wall
//!   second, the live counterpart of the sim bench's events/sec;
//! * **delivery latency CDF** — injection-to-first-delivery percentiles
//!   over every (node, message) pair;
//! * frame/byte totals as moved by the codec (length prefixes included).
//!
//! Every cell must reach **100% delivery** — the binary asserts it, so CI
//! catches a runtime regression the way the fault sweep catches protocol
//! ones — and the 64-node × 1 KiB acceptance row must sustain at least
//! `BRISA_MIN_DELIV_PER_SEC` deliveries/sec (default 12 000, ten times
//! the thread-per-node executor's 25 ms-cadence ceiling).
//!
//! `BRISA_SCALE=full` additionally runs the **1000-node TCP row**: a
//! thousand live sockets-and-listeners nodes on one reactor pool, gated
//! on 100% delivery *and* a delivery fingerprint identical to the sim
//! engine's prediction of the same scenario.
//!
//! Results go to `BENCH_PR8.json` (override with `BRISA_BENCH_OUT`);
//! schema `brisa-bench-pr8/v1` in DESIGN.md. Pass `--smoke` for the
//! CI-sized grid.

use brisa::{BrisaConfig, BrisaNode};
use brisa_bench::{banner, BrisaStackConfig, Scale};
use brisa_membership::HyParViewConfig;
use brisa_metrics::percentile::percentile_of_sorted;
use brisa_metrics::report::render_table;
use brisa_metrics::PercentileSummary;
use brisa_runtime::{Cluster, ClusterConfig, LiveResult, TransportKind};
use brisa_simnet::SimDuration;
use brisa_workloads::{BrisaScenario, IntoRunSpec, Runner, StreamSpec};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Burst publish cadence: fast enough that the runtime, not the publish
/// schedule, is the bottleneck.
const CADENCE: Duration = Duration::from_millis(2);

/// One grid cell's measurements.
struct Cell {
    nodes: u32,
    payload: usize,
    messages: u64,
    transport: &'static str,
    result: LiveResult,
    latency: PercentileSummary,
    p99_ms: f64,
    /// `Some(true)` when the cell was cross-checked against the sim
    /// engine's delivered-set prediction (the 1k TCP row).
    fingerprint_match: Option<bool>,
}

fn stack_config(messages: u64) -> BrisaStackConfig {
    let mut stack = BrisaStackConfig {
        hpv: HyParViewConfig::with_active_size(4),
        brisa: BrisaConfig::default(),
    };
    // Burst streams outrun the default 64-message buffer; provision the
    // retransmission buffer to the whole stream so gap recovery can always
    // reach back (same rule bench_soak applies to partition windows).
    stack.brisa.buffer_size = stack.brisa.buffer_size.max(messages as usize);
    stack
}

/// `BRISA_BENCH_DEBUG` diagnostics: overlay/delivery shape mid-run.
fn dump_overlay_state(cluster: &Cluster<BrisaNode>, label: &str) {
    let reports = cluster.snapshot_reports();
    let n = reports.len();
    let starved: Vec<u32> = reports
        .iter()
        .filter(|(_, r)| r.delivered == 0)
        .map(|(id, _)| id.0)
        .collect();
    let orphaned = reports
        .iter()
        .filter(|(id, r)| r.parents.is_empty() && *id != cluster.source())
        .count();
    let leaf = reports.iter().filter(|(_, r)| r.degree == 0).count();
    let delivered_total: u64 = reports.iter().map(|(_, r)| r.delivered).sum();
    eprintln!(
        "[debug {label}] nodes={n} delivered_total={delivered_total} \
         starved={} orphaned={orphaned} leaves={leaf} starved_ids[..12]={:?}",
        starved.len(),
        &starved[..starved.len().min(12)]
    );
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    nodes: u32,
    payload: usize,
    messages: u64,
    seed: u64,
    transport: TransportKind,
    cadence: Duration,
    join_stagger: Option<Duration>,
    bootstrap: Duration,
    deadline: Duration,
) -> Cell {
    let mut cfg = ClusterConfig {
        nodes,
        transport,
        seed,
        ..Default::default()
    };
    if let Some(stagger) = join_stagger {
        cfg.join_stagger = stagger;
    }
    let mut cluster: Cluster<BrisaNode> =
        Cluster::launch(&cfg, &stack_config(messages)).expect("launch cluster");
    // Let the overlay and the first dissemination structure form.
    let debug = std::env::var("BRISA_BENCH_DEBUG").is_ok();
    cluster.run_for(bootstrap);
    if debug {
        dump_overlay_state(&cluster, "post-bootstrap");
    }
    for _ in 0..messages {
        cluster.publish(payload);
        cluster.run_for(cadence);
    }
    let complete = if debug {
        let start = std::time::Instant::now();
        loop {
            if cluster.wait_for_delivery(messages, Duration::from_secs(15)) {
                break true;
            }
            dump_overlay_state(&cluster, &format!("+{}s", start.elapsed().as_secs()));
            if start.elapsed() > deadline {
                break false;
            }
        }
    } else {
        cluster.wait_for_delivery(messages, deadline)
    };
    let result = cluster.stop_and_collect();
    assert!(
        complete && result.delivery_rate() == 1.0,
        "cell {nodes}x{payload}: delivery incomplete (rate {})",
        result.delivery_rate()
    );
    result
        .check_delivery_invariants()
        .expect("live trace passes the delivery invariants");
    let mut samples = result.latency_samples_ms();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let latency = PercentileSummary::from_samples(samples.iter().copied());
    let p99_ms = percentile_of_sorted(&samples, 99.0);
    Cell {
        nodes,
        payload,
        messages,
        transport: match transport {
            TransportKind::Loopback => "loopback",
            TransportKind::Tcp => "tcp",
        },
        result,
        latency,
        p99_ms,
        fingerprint_match: None,
    }
}

/// The full tier's headline row: 1000 live TCP nodes on one reactor
/// pool, cross-checked node-by-node against the sim engine's delivered
/// sets for the same scenario. `BRISA_TCP_ROW_NODES` overrides the row
/// size (debugging ladders, small CI boxes).
fn run_tcp_1k(seed: u64) -> Cell {
    const MESSAGES: u64 = 20;
    const PAYLOAD: usize = 1024;
    let nodes: u32 = std::env::var("BRISA_TCP_ROW_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);

    let scenario = BrisaScenario {
        nodes,
        seed,
        stream: StreamSpec::short(MESSAGES, PAYLOAD),
        bootstrap: SimDuration::from_secs(20),
        drain: SimDuration::from_secs(10),
        ..Default::default()
    };
    let sim = Runner::<BrisaNode>::new(&stack_config(MESSAGES), &scenario.run_spec()).run();
    let sim_sets: BTreeMap<u32, Vec<u64>> = sim
        .nodes
        .iter()
        .map(|n| {
            (
                n.id.0,
                n.report.first_delivery.iter().map(|&(s, _)| s).collect(),
            )
        })
        .collect();

    // This row is the *scale* acceptance, not the throughput one. Mirror
    // the sim's bootstrap schedule: joins staggered over the first half of
    // the bootstrap window, then the overlay settles through the second
    // half. The default 2 ms launch stagger is a join storm at this
    // population — a thousand joins funnel through the contact node, whose
    // active view thrashes until the overlay fragments.
    let half_bootstrap = Duration::from_secs(10);
    let stagger = half_bootstrap / nodes.max(1);
    let mut cell = run_cell(
        nodes,
        PAYLOAD,
        MESSAGES,
        seed,
        TransportKind::Tcp,
        Duration::from_millis(10),
        Some(stagger),
        half_bootstrap,
        Duration::from_secs(300),
    );
    let matches = sim_sets == cell.result.delivered_sets();
    assert!(
        matches,
        "1k TCP row: live delivery fingerprint diverges from the sim prediction \
         (live fp {})",
        cell.result.delivery_fingerprint()
    );
    cell.fingerprint_match = Some(true);
    cell
}

fn main() {
    let scale = Scale::from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Debug/bring-up escape hatch: run only the TCP scale row (size via
    // BRISA_TCP_ROW_NODES), skipping the loopback grid and its
    // throughput acceptance.
    let tcp_row_only = std::env::args().any(|a| a == "--tcp-row");
    banner(
        "bench_runtime_throughput",
        "live reactor cluster: burst-stream deliveries/sec and latency CDF",
        scale,
    );

    // The 64-node × 1 KiB cell is the acceptance row and runs at every
    // scale, smoke included.
    let grid: Vec<(u32, usize)> = if smoke {
        vec![(16, 256), (64, 1024)]
    } else {
        scale.pick(
            vec![(16, 256), (32, 1024), (64, 1024), (64, 8192), (128, 1024)],
            vec![(16, 256), (32, 1024), (64, 1024)],
        )
    };
    let messages: u64 = if smoke { 400 } else { scale.pick(400, 400) };

    let mut cells: Vec<Cell> = if tcp_row_only { Vec::new() } else { grid }
        .iter()
        .map(|&(nodes, payload)| {
            run_cell(
                nodes,
                payload,
                messages,
                0xB215A,
                TransportKind::Loopback,
                CADENCE,
                None,
                Duration::from_millis(400),
                Duration::from_secs(120),
            )
        })
        .collect();
    if tcp_row_only || (scale == Scale::Full && !smoke) {
        cells.push(run_tcp_1k(0xB215A));
    }

    let headers = [
        "nodes",
        "transport",
        "payload B",
        "msgs",
        "delivery",
        "deliv/s",
        "lat p50 ms",
        "lat p90 ms",
        "lat p99 ms",
        "MB out",
    ];
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let (_, bytes) = c.result.frames_and_bytes_out();
            vec![
                c.nodes.to_string(),
                c.transport.to_string(),
                c.payload.to_string(),
                c.messages.to_string(),
                format!("{:.1}%", c.result.delivery_rate() * 100.0),
                format!("{:.0}", c.result.deliveries_per_sec()),
                format!("{:.2}", c.latency.p50),
                format!("{:.2}", c.latency.p90),
                format!("{:.2}", c.p99_ms),
                format!("{:.2}", bytes as f64 / 1.0e6),
            ]
        })
        .collect();
    print!("{}", render_table(&headers, &rows));

    // Acceptance: the 64-node × 1 KiB row fully delivers *and* sustains
    // reactor-scale throughput (PR 4's thread-per-node executor measured
    // ~1.2k deliveries/s here; the bar is 10× that, override with
    // BRISA_MIN_DELIV_PER_SEC for unusually slow boxes).
    if !tcp_row_only {
        let min_dps: f64 = std::env::var("BRISA_MIN_DELIV_PER_SEC")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(12_000.0);
        let acceptance = cells
            .iter()
            .find(|c| c.nodes == 64 && c.payload == 1024)
            .expect("the 64-node x 1 KiB acceptance cell must run");
        assert_eq!(acceptance.result.delivery_rate(), 1.0);
        assert!(
            acceptance.result.deliveries_per_sec() >= min_dps,
            "acceptance row: {:.0} deliveries/s is below the {min_dps:.0} floor",
            acceptance.result.deliveries_per_sec()
        );
    }

    // --- BENCH_PR8.json (schema: brisa-bench-pr8/v1, see DESIGN.md).
    let mut cells_json = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            cells_json.push_str(",\n");
        }
        let (frames, bytes) = c.result.frames_and_bytes_out();
        let fingerprint = match c.fingerprint_match {
            Some(m) => format!(", \"sim_fingerprint_match\": {m}"),
            None => String::new(),
        };
        write!(
            cells_json,
            "    {{\"nodes\": {}, \"payload_bytes\": {}, \"messages\": {}, \
             \"transport\": \"{}\", \
             \"delivery_rate\": {:.6}, \"deliveries_per_sec\": {:.1}, \
             \"wall_secs\": {:.3}, \"frames_out\": {}, \"bytes_out\": {}, \
             \"latency_ms\": {{\"p5\": {:.3}, \"p25\": {:.3}, \"p50\": {:.3}, \
             \"p75\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \"mean\": {:.3}, \
             \"count\": {}}}{}}}",
            c.nodes,
            c.payload,
            c.messages,
            c.transport,
            c.result.delivery_rate(),
            c.result.deliveries_per_sec(),
            c.result.wall_elapsed.as_secs_f64(),
            frames,
            bytes,
            c.latency.p5,
            c.latency.p25,
            c.latency.p50,
            c.latency.p75,
            c.latency.p90,
            c.p99_ms,
            c.latency.mean,
            c.latency.count,
            fingerprint,
        )
        .unwrap();
    }
    let json = format!(
        "{{\n  \"schema\": \"brisa-bench-pr8/v1\",\n  \"scale\": \"{:?}\",\n  \
         \"protocol\": \"Brisa\",\n  \"cadence_ms\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        scale,
        CADENCE.as_millis(),
        cells_json
    );
    let out_path =
        std::env::var("BRISA_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR8.json".to_string());
    std::fs::write(&out_path, json).expect("write bench result file");
    println!("\nwrote {out_path}");
}
