//! Throughput benchmark of the live runtime: BRISA on the loopback mesh,
//! wall-clock time, real frames through the wire codec.
//!
//! Sweeps a nodes × payload grid; each cell boots a [`Cluster`], publishes
//! a fixed-cadence stream, waits for full delivery and reports:
//!
//! * **deliveries/sec** — (node × message) delivery events per wall
//!   second, the live counterpart of the sim bench's events/sec;
//! * **delivery latency CDF** — injection-to-first-delivery percentiles
//!   over every (node, message) pair;
//! * frame/byte totals as moved by the codec (length prefixes included).
//!
//! Every cell must reach **100% delivery** — the binary asserts it, so CI
//! catches a runtime regression the way the fault sweep catches protocol
//! ones. Results go to `BENCH_PR4.json` (override with `BRISA_BENCH_OUT`);
//! schema in DESIGN.md. Pass `--smoke` (or run at the default quick scale)
//! for the CI-sized grid; `BRISA_SCALE=full` widens it.

use brisa::{BrisaConfig, BrisaNode};
use brisa_bench::{banner, BrisaStackConfig, Scale};
use brisa_membership::HyParViewConfig;
use brisa_metrics::percentile::percentile_of_sorted;
use brisa_metrics::report::render_table;
use brisa_metrics::PercentileSummary;
use brisa_runtime::{Cluster, ClusterConfig, LiveResult, TransportKind};
use std::fmt::Write as _;
use std::time::Duration;

/// One grid cell's measurements.
struct Cell {
    nodes: u32,
    payload: usize,
    messages: u64,
    result: LiveResult,
    latency: PercentileSummary,
    p99_ms: f64,
}

fn run_cell(nodes: u32, payload: usize, messages: u64, seed: u64) -> Cell {
    let cfg = ClusterConfig {
        nodes,
        transport: TransportKind::Loopback,
        seed,
        ..Default::default()
    };
    let stack = BrisaStackConfig {
        hpv: HyParViewConfig::with_active_size(4),
        brisa: BrisaConfig::default(),
    };
    let mut cluster: Cluster<BrisaNode> =
        Cluster::launch(&cfg, &stack).expect("launch loopback cluster");
    // Let the overlay and the first dissemination structure form.
    cluster.run_for(Duration::from_millis(400));
    for _ in 0..messages {
        cluster.publish(payload);
        cluster.run_for(Duration::from_millis(25));
    }
    let complete = cluster.wait_for_delivery(messages, Duration::from_secs(120));
    let result = cluster.stop_and_collect();
    assert!(
        complete && result.delivery_rate() == 1.0,
        "cell {nodes}x{payload}: delivery incomplete (rate {})",
        result.delivery_rate()
    );
    result
        .check_delivery_invariants()
        .expect("live trace passes the delivery invariants");
    let mut samples = result.latency_samples_ms();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let latency = PercentileSummary::from_samples(samples.iter().copied());
    let p99_ms = percentile_of_sorted(&samples, 99.0);
    Cell {
        nodes,
        payload,
        messages,
        result,
        latency,
        p99_ms,
    }
}

fn main() {
    let scale = Scale::from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "bench_runtime_throughput",
        "live loopback-mesh cluster: msgs/sec and delivery latency CDF",
        scale,
    );

    // The 64-node × 1 KiB cell is the acceptance row and runs at every
    // scale, smoke included.
    let grid: Vec<(u32, usize)> = if smoke {
        vec![(16, 256), (64, 1024)]
    } else {
        scale.pick(
            vec![(16, 256), (32, 1024), (64, 1024), (64, 8192), (128, 1024)],
            vec![(16, 256), (32, 1024), (64, 1024)],
        )
    };
    let messages: u64 = if smoke { 10 } else { scale.pick(50, 20) };

    let cells: Vec<Cell> = grid
        .iter()
        .map(|&(nodes, payload)| run_cell(nodes, payload, messages, 0xB215A))
        .collect();

    let headers = [
        "nodes",
        "payload B",
        "msgs",
        "delivery",
        "deliv/s",
        "lat p50 ms",
        "lat p90 ms",
        "lat p99 ms",
        "MB out",
    ];
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let (_, bytes) = c.result.frames_and_bytes_out();
            vec![
                c.nodes.to_string(),
                c.payload.to_string(),
                c.messages.to_string(),
                format!("{:.1}%", c.result.delivery_rate() * 100.0),
                format!("{:.0}", c.result.deliveries_per_sec()),
                format!("{:.2}", c.latency.p50),
                format!("{:.2}", c.latency.p90),
                format!("{:.2}", c.p99_ms),
                format!("{:.2}", bytes as f64 / 1.0e6),
            ]
        })
        .collect();
    print!("{}", render_table(&headers, &rows));

    assert!(
        cells
            .iter()
            .any(|c| c.nodes == 64 && c.payload == 1024 && c.result.delivery_rate() == 1.0),
        "the 64-node x 1 KiB acceptance cell must run and fully deliver"
    );

    // --- BENCH_PR4.json (schema: brisa-bench-pr4/v1, see DESIGN.md).
    let mut cells_json = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            cells_json.push_str(",\n");
        }
        let (frames, bytes) = c.result.frames_and_bytes_out();
        write!(
            cells_json,
            "    {{\"nodes\": {}, \"payload_bytes\": {}, \"messages\": {}, \
             \"delivery_rate\": {:.6}, \"deliveries_per_sec\": {:.1}, \
             \"wall_secs\": {:.3}, \"frames_out\": {}, \"bytes_out\": {}, \
             \"latency_ms\": {{\"p5\": {:.3}, \"p25\": {:.3}, \"p50\": {:.3}, \
             \"p75\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \"mean\": {:.3}, \
             \"count\": {}}}}}",
            c.nodes,
            c.payload,
            c.messages,
            c.result.delivery_rate(),
            c.result.deliveries_per_sec(),
            c.result.wall_elapsed.as_secs_f64(),
            frames,
            bytes,
            c.latency.p5,
            c.latency.p25,
            c.latency.p50,
            c.latency.p75,
            c.latency.p90,
            c.p99_ms,
            c.latency.mean,
            c.latency.count,
        )
        .unwrap();
    }
    let json = format!(
        "{{\n  \"schema\": \"brisa-bench-pr4/v1\",\n  \"scale\": \"{:?}\",\n  \
         \"transport\": \"loopback\",\n  \"protocol\": \"Brisa\",\n  \"cells\": [\n{}\n  ]\n}}\n",
        scale, cells_json
    );
    let out_path =
        std::env::var("BRISA_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR4.json".to_string());
    std::fs::write(&out_path, json).expect("write bench result file");
    println!("\nwrote {out_path}");
}
