//! Figure 6: depth distribution of the emerged structures (512 nodes,
//! first-come first-picked) for tree and DAG(2 parents) with view sizes 4
//! and 8.
//!
//! Paper shape: larger views give shallower structures; DAGs are deeper than
//! trees because depth is the *longest* path from the source.

use brisa_bench::{banner, print_cdf_series};
use brisa_metrics::Cdf;
use brisa_workloads::{run_brisa, scenarios, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 6",
        "depth distribution of the emerged structure",
        scale,
    );
    let mut series = Vec::new();
    for sc in scenarios::fig6_7(scale) {
        let label = format!(
            "{}, view={}",
            if sc.mode.is_tree() { "tree" } else { "DAG-2" },
            sc.view_size
        );
        let result = run_brisa(&sc);
        let depths = result.structure.depths();
        let cdf = Cdf::from_samples(depths.values().map(|&d| d as f64));
        println!(
            "{label}: nodes={}, max depth={}, complete={}, acyclic={}",
            sc.nodes,
            depths.values().max().copied().unwrap_or(0),
            result.structure.is_complete(),
            result.structure.is_acyclic()
        );
        series.push((label, cdf));
    }
    println!();
    print_cdf_series("depth", &mut series, 16);
}
