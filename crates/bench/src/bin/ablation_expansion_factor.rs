//! Ablation: the HyParView expansion factor (Section II-A).
//!
//! The expansion factor lets the active view grow past its target size
//! during join storms, avoiding eviction chain reactions. This ablation
//! compares expansion factor 1 vs 2 on the degree distribution of the
//! emerged tree and on the completeness of the dissemination.
//!
//! The four (view × factor) cells run in parallel through `run_matrix`.

use brisa_bench::{banner, run_brisa, run_matrix, BrisaScenario, Scale};
use brisa_metrics::report::render_table;
use brisa_metrics::PercentileSummary;
use brisa_workloads::StreamSpec;

fn main() {
    let scale = Scale::from_env();
    banner("Ablation", "HyParView expansion factor 1 vs 2", scale);
    let nodes = scale.pick(512, 96);
    let headers = [
        "expansion factor",
        "view",
        "p50 degree",
        "p90 degree",
        "max degree",
        "% leaves",
        "completeness %",
    ];
    let mut grid = Vec::new();
    for &view in &[4usize, 8] {
        for &factor in &[1usize, 2] {
            grid.push((view, factor));
        }
    }
    let cells: Vec<BrisaScenario> = grid
        .iter()
        .map(|&(view, factor)| BrisaScenario {
            nodes,
            view_size: view,
            expansion_factor: factor,
            stream: StreamSpec::short(scale.pick(100, 20), 1024),
            ..Default::default()
        })
        .collect();
    let results = run_matrix(&cells, |_, sc| run_brisa(sc));

    let mut rows = Vec::new();
    for (&(view, factor), result) in grid.iter().zip(&results) {
        let degrees = result.structure.degrees();
        let summary = PercentileSummary::from_samples(degrees.values().map(|&d| d as f64));
        let leaves = degrees.values().filter(|&&d| d == 0).count();
        rows.push(vec![
            factor.to_string(),
            view.to_string(),
            format!("{:.1}", summary.p50),
            format!("{:.1}", summary.p90),
            format!("{:.0}", degrees.values().max().copied().unwrap_or(0)),
            format!("{:.0}", leaves as f64 / degrees.len().max(1) as f64 * 100.0),
            format!("{:.1}", result.completeness() * 100.0),
        ]);
    }
    print!("{}", render_table(&headers, &rows));
}
