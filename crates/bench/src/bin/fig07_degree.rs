//! Figure 7: degree (number of children) distribution of the emerged
//! structures (512 nodes, first-come first-picked) for tree and DAG(2) with
//! view sizes 4 and 8.
//!
//! Paper shape: DAGs have fewer zero-degree leaves (more nodes contribute to
//! dissemination); larger views produce shallower trees with more leaves;
//! despite the expansion factor of 2 few nodes exceed the configured view
//! size in degree.

use brisa_bench::{banner, print_cdf_series};
use brisa_metrics::Cdf;
use brisa_workloads::{run_brisa, scenarios, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 7",
        "degree distribution of the emerged structure",
        scale,
    );
    let mut series = Vec::new();
    for sc in scenarios::fig6_7(scale) {
        let label = format!(
            "{}, view={}",
            if sc.mode.is_tree() { "tree" } else { "DAG-2" },
            sc.view_size
        );
        let result = run_brisa(&sc);
        let degrees = result.structure.degrees();
        let leaves = degrees.values().filter(|&&d| d == 0).count();
        let cdf = Cdf::from_samples(degrees.values().map(|&d| d as f64));
        println!(
            "{label}: nodes={}, leaves={} ({:.0}%), max degree={}",
            degrees.len(),
            leaves,
            leaves as f64 / degrees.len().max(1) as f64 * 100.0,
            degrees.values().max().copied().unwrap_or(0)
        );
        series.push((label, cdf));
    }
    println!();
    print_cdf_series("degree (children)", &mut series, 16);
}
