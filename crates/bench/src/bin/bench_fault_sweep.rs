//! Fault sweep: BRISA's reliability under adversarial network conditions.
//!
//! Two sweeps, both driven through the generic engine with the full online
//! invariant suite active and both schedulers asserted equivalent:
//!
//! 1. **loss** — delivery rate and recovery traffic vs. per-link Bernoulli
//!    loss (0 % control to 5 %), at the paper's streaming rate. The
//!    acceptance bar: >= 99 % delivery at 1 % loss through the gossip
//!    substrate's gap-recovery retransmissions.
//! 2. **partition** — a quarter of the population cut from the source for
//!    5/10/20 s (5/10 at quick scale) and then healed: per-duration
//!    delivery rate, worst island reconnect time (first post-heal
//!    delivery) and worst catch-up time (island fully recovered).
//!
//! Every cell runs on both schedulers; the run fingerprints must agree
//! bit-for-bit and every run must pass the online invariant checker —
//! adversity is exactly where scheduler/fault-layer bugs would hide.
//!
//! Results go to `BENCH_PR3.json` (override with `BRISA_BENCH_OUT`); the
//! schema is documented in DESIGN.md. CI uploads the file as an artifact.

use brisa::BrisaNode;
use brisa_bench::{banner, run_matrix, BrisaScenario, BrisaStackConfig, EngineResult, Scale};
use brisa_simnet::{SimDuration, SimTime};
use brisa_workloads::{scenarios, IntoRunSpec, InvariantSuite, Runner, SchedulerKind};
use std::fmt::Write as _;

/// Runs one cell under both schedulers with the online invariant suite,
/// asserts equivalence and cleanliness, and returns the timing-wheel run.
fn run_checked_cell(sc: &BrisaScenario) -> EngineResult {
    let cfg = BrisaStackConfig {
        hpv: sc.hyparview_config(),
        brisa: sc.brisa_config(),
    };
    let mut results = Vec::new();
    for scheduler in [SchedulerKind::TimingWheel, SchedulerKind::BinaryHeap] {
        let mut spec = sc.run_spec();
        spec.scheduler = scheduler;
        let mut suite = InvariantSuite::standard(Some(sc.brisa_config().mode.target_parents()));
        let r = Runner::<BrisaNode>::new(&cfg, &spec)
            .invariants(&mut suite)
            .run();
        suite.assert_clean();
        results.push(r);
    }
    assert_eq!(
        results[0].fingerprint(),
        results[1].fingerprint(),
        "schedulers diverged under faults"
    );
    results.swap_remove(0)
}

struct LossRow {
    loss_rate: f64,
    delivery: f64,
    lost: u64,
    gap_requests: u64,
    retransmissions: u64,
}

struct PartitionRow {
    duration_secs: f64,
    delivery: f64,
    cut: u64,
    reconnect_secs: f64,
    catch_up_secs: f64,
}

/// Aggregate recovery traffic: `(gap requests issued, retransmissions
/// served)` over all live nodes.
fn recovery_traffic(r: &EngineResult) -> (u64, u64) {
    r.nodes.iter().fold((0, 0), |(req, served), n| {
        (
            req + n.report.repairs.gap_requests,
            served + n.report.repairs.retransmissions_served,
        )
    })
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "bench_fault_sweep",
        "delivery and repair under loss and partitions (invariant-checked, both schedulers)",
        scale,
    );

    // --- Loss sweep.
    let loss_cells = scenarios::fault_loss_sweep(scale);
    let loss_results = run_matrix(&loss_cells, |_, (_, sc)| run_checked_cell(sc));
    let mut loss_rows = Vec::new();
    println!("loss sweep ({} nodes):", loss_cells[0].1.nodes);
    println!("  loss%   delivery%   lost msgs");
    for ((loss_rate, _), r) in loss_cells.iter().zip(&loss_results) {
        let (gap_requests, retransmissions) = recovery_traffic(r);
        let row = LossRow {
            loss_rate: *loss_rate,
            delivery: r.delivery_rate(),
            lost: r.net_stats.messages_lost_to_faults,
            gap_requests,
            retransmissions,
        };
        println!(
            "  {:>5.1}   {:>8.3}%   {:>9}   ({} gap requests, {} retransmissions served)",
            row.loss_rate * 100.0,
            row.delivery * 100.0,
            row.lost,
            row.gap_requests,
            row.retransmissions
        );
        loss_rows.push(row);
    }
    let one_pct = loss_rows
        .iter()
        .find(|r| (r.loss_rate - 0.01).abs() < 1e-12)
        .expect("1% cell in the sweep");
    let target_met = one_pct.delivery >= 0.99;
    println!(
        "  acceptance: delivery at 1% loss = {:.3}% (target >= 99%): {}",
        one_pct.delivery * 100.0,
        if target_met { "met" } else { "NOT MET" }
    );

    // --- Partition sweep.
    let partition_cells = scenarios::fault_partition_sweep(scale);
    let partition_results = run_matrix(&partition_cells, |_, (_, sc)| run_checked_cell(sc));
    let mut partition_rows = Vec::new();
    println!();
    println!(
        "partition sweep ({} nodes, 25% island):",
        partition_cells[0].1.nodes
    );
    println!("  cut(s)   delivery%   cut msgs   reconnect(s)   catch-up(s)");
    for ((duration, sc), r) in partition_cells.iter().zip(&partition_results) {
        let phase = sc.faults.partition.expect("partition cell");
        let island = phase.island(sc.nodes);
        let stream_start = r.churn_window.0;
        let heal = stream_start + phase.start_after + *duration;
        let first_post_heal_seq = r
            .publish_times
            .iter()
            .position(|t| *t >= heal)
            .expect("stream outlasts the heal") as u64;
        let mut reconnect = SimDuration::ZERO;
        let mut catch_up = SimDuration::ZERO;
        for id in &island {
            let Some(node) = r.nodes.iter().find(|n| n.id == *id) else {
                continue;
            };
            let first_after = node
                .report
                .first_delivery
                .iter()
                .filter(|(seq, _)| *seq >= first_post_heal_seq)
                .map(|(_, t)| *t)
                .min()
                .unwrap_or(SimTime::ZERO + SimDuration::from_secs(3600));
            reconnect = reconnect.max(first_after.saturating_since(heal));
            // Catch-up: when the holes opened by the cut closed — the last
            // first-delivery of a message published *before* the heal.
            // (Messages delivered in order pre-partition have timestamps
            // before the heal and saturate to zero.)
            let holes_closed = node
                .report
                .first_delivery
                .iter()
                .filter(|(seq, _)| *seq < first_post_heal_seq)
                .map(|(_, t)| *t)
                .max()
                .unwrap_or(SimTime::ZERO);
            catch_up = catch_up.max(holes_closed.saturating_since(heal));
        }
        let row = PartitionRow {
            duration_secs: duration.as_secs_f64(),
            delivery: r.delivery_rate(),
            cut: r.net_stats.messages_cut_by_partition,
            reconnect_secs: reconnect.as_secs_f64(),
            catch_up_secs: catch_up.as_secs_f64(),
        };
        println!(
            "  {:>6.0}   {:>8.3}%   {:>8}   {:>12.3}   {:>11.3}",
            row.duration_secs,
            row.delivery * 100.0,
            row.cut,
            row.reconnect_secs,
            row.catch_up_secs
        );
        partition_rows.push(row);
    }

    // --- JSON artifact.
    let mut loss_json = String::new();
    for (i, row) in loss_rows.iter().enumerate() {
        if i > 0 {
            loss_json.push_str(",\n");
        }
        write!(
            loss_json,
            r#"    {{"loss_rate": {:.4}, "delivery_rate": {:.6}, "messages_lost_to_faults": {}, "gap_requests": {}, "retransmissions_served": {}}}"#,
            row.loss_rate, row.delivery, row.lost, row.gap_requests, row.retransmissions
        )
        .unwrap();
    }
    let mut partition_json = String::new();
    for (i, row) in partition_rows.iter().enumerate() {
        if i > 0 {
            partition_json.push_str(",\n");
        }
        write!(
            partition_json,
            r#"    {{"partition_secs": {:.1}, "delivery_rate": {:.6}, "messages_cut": {}, "reconnect_secs": {:.3}, "catch_up_secs": {:.3}}}"#,
            row.duration_secs, row.delivery, row.cut, row.reconnect_secs, row.catch_up_secs
        )
        .unwrap();
    }
    let json = format!(
        r#"{{
  "schema": "brisa-bench-pr3/v1",
  "generated_by": "bench_fault_sweep",
  "scale": "{scale:?}",
  "invariants": {{"suite": ["no-duplicate-delivery", "tree-validity", "link-clock-monotonicity"], "violations": 0, "schedulers": ["TimingWheel", "BinaryHeap"]}},
  "loss_sweep": [
{loss_json}
  ],
  "partition_sweep": [
{partition_json}
  ],
  "acceptance": {{"loss_1pct_delivery": {:.6}, "target": 0.99, "target_met": {target_met}}}
}}
"#,
        one_pct.delivery,
    );
    let out_path =
        std::env::var("BRISA_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR3.json".to_string());
    std::fs::write(&out_path, json).expect("write bench result file");
    println!();
    println!("wrote {out_path}");
    assert!(target_met, "acceptance bar not met: 1% loss delivery");
}
