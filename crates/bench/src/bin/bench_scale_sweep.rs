//! Scale sweep: 100k-node overlays under large-scale incidents, plus the
//! sharded simulator's million-node headline row.
//!
//! Runs the `workloads::scenarios::scale_suite` grid — plain dissemination,
//! flash-crowd join, catastrophic correlated failure (50 % simultaneous
//! crash) and sustained churn — at increasing system sizes, entirely
//! through the scale-mode streaming result path (`ResultMode::Streaming`:
//! compact per-node delivery ledgers, totals-only bandwidth, one mergeable
//! latency histogram instead of per-node delivery maps).
//!
//! Row sets:
//!
//! * `--smoke` (PR-triggered CI): 2 000- and 10 000-node rows;
//! * default (the `scale-nightly` job and local runs): 10 000- and
//!   100 000-node rows. The acceptance bar lives here: the 100 000-node
//!   no-fault dissemination must complete within the nightly budget with
//!   100 % delivery.
//! * `BRISA_SCALE_ROWS=<n>,<n>,…` overrides either set (calibration hook).
//!
//! On top of the sequential grid the sweep drives the epoch-sharded
//! simulator (`RunSpec::shards` > 1, `BRISA_SHARDS` override):
//!
//! * a `no_fault_sharded` row at the largest suite size whose result
//!   fingerprint is asserted **bit-identical** to the sequential
//!   `no_fault` row of the same size — the determinism contract, re-pinned
//!   at bench scale on every run;
//! * the `scenarios::scale_million` row (1 000 000 nodes, sharded-only),
//!   run on the nightly/full set or whenever `BRISA_MILLION=1`. Its
//!   acceptance bar: 100 % delivery inside the wall-clock budget.
//!
//! Every row reports wall-clock, simulator events/sec, delivery and
//! completeness, the accounting-based bytes-per-node footprint (the peak
//! RSS proxy — see `Network::footprint`), and bucketed latency quantiles.
//! Scheduler equivalence is *not* re-asserted per row (that costs a second
//! run of every cell); it is pinned at quick scale by
//! `tests/integration_scale.rs`.
//!
//! Results go to `BENCH_PR10.json` (override with `BRISA_BENCH_OUT`); the
//! schema is documented in DESIGN.md and consumed by the `bench_gate` CI
//! regression gate.

use brisa::BrisaNode;
use brisa_bench::{BrisaStackConfig, EngineResult};
use brisa_workloads::{scenarios, IntoRunSpec, Runner};
use std::fmt::Write as _;
use std::time::Instant;

/// Wall-clock budget in real seconds for the acceptance rows (ISSUE-5's
/// "≤ 10 min, single machine" bar, reused by ISSUE-10 for the million-node
/// sharded row; the `scale-nightly` job runs with a CI-level timeout on
/// top of this).
const BUDGET_SECS: f64 = 600.0;

struct Row {
    scenario: &'static str,
    nodes: u32,
    shards: usize,
    messages: u64,
    wall_secs: f64,
    sim_events: u64,
    delivery: f64,
    completeness: f64,
    bytes_per_node: f64,
    latency_p50_ms: f64,
    latency_p99_ms: f64,
    latency_mean_ms: f64,
    uploaded_mb: f64,
    failures: usize,
    joins: usize,
}

/// Runs one cell (sequential when `shards` is 1, epoch-sharded otherwise)
/// and returns the measured row next to the run's result fingerprint, so
/// the caller can assert sharded ≡ sequential.
fn run_row(
    scenario: &'static str,
    sc: &brisa_workloads::BrisaScenario,
    shards: usize,
) -> (Row, String) {
    let cfg = BrisaStackConfig {
        hpv: sc.hyparview_config(),
        brisa: sc.brisa_config(),
    };
    let mut spec = sc.run_spec();
    spec.shards = shards;
    let start = Instant::now();
    let r: EngineResult = Runner::<BrisaNode>::new(&cfg, &spec).run();
    let wall_secs = start.elapsed().as_secs_f64();
    let fingerprint = r.fingerprint();
    let s = r
        .streaming
        .as_ref()
        .expect("scale scenarios use the streaming result path");
    let row = Row {
        scenario,
        nodes: sc.nodes,
        shards,
        messages: r.messages_published,
        wall_secs,
        sim_events: r.sim_events(),
        delivery: r.delivery_rate(),
        completeness: r.completeness(),
        bytes_per_node: s.footprint.bytes_per_node(),
        latency_p50_ms: s.latency.quantile_ms(0.50),
        latency_p99_ms: s.latency.quantile_ms(0.99),
        latency_mean_ms: s.latency.mean_ms(),
        uploaded_mb: s.uploaded_bytes as f64 / (1024.0 * 1024.0),
        failures: r.failures_injected,
        joins: r.joins_injected,
    };
    (row, fingerprint)
}

fn print_row(row: &Row) {
    println!(
        "  {:<16} {:>8} {:>3} {:>6} {:>9.2} {:>12} {:>10.0} {:>8.3}% {:>8.3}% {:>8.0} {:>8.2} {:>8.2}",
        row.scenario,
        row.nodes,
        row.shards,
        row.messages,
        row.wall_secs,
        row.sim_events,
        row.sim_events as f64 / row.wall_secs.max(1e-9),
        row.delivery * 100.0,
        row.completeness * 100.0,
        row.bytes_per_node,
        row.latency_p50_ms,
        row.latency_p99_ms,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: Vec<u32> = match std::env::var("BRISA_SCALE_ROWS") {
        Ok(rows) => rows
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect(),
        Err(_) if smoke => vec![2_000, 10_000],
        Err(_) => vec![10_000, 100_000],
    };
    let shards: usize = std::env::var("BRISA_SHARDS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4);
    let million = !smoke || std::env::var("BRISA_MILLION").is_ok_and(|v| v == "1");
    println!("=== bench_scale_sweep — scale-mode streaming results, sequential + sharded");
    println!(
        "    rows: {sizes:?} ({}; override with BRISA_SCALE_ROWS), {shards} shards on sharded rows{}",
        if smoke { "--smoke" } else { "full" },
        if million { ", million-node row on" } else { "" },
    );
    println!();
    println!(
        "  {:<16} {:>8} {:>3} {:>6} {:>9} {:>12} {:>10} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "scenario",
        "nodes",
        "shd",
        "msgs",
        "wall(s)",
        "events",
        "ev/s",
        "deliv%",
        "compl%",
        "B/node",
        "p50(ms)",
        "p99(ms)"
    );

    let mut rows: Vec<Row> = Vec::new();
    // Sequential no-fault fingerprints by size, for the sharded equality
    // assertion below.
    let mut no_fault_fp: Vec<(u32, String)> = Vec::new();
    for &nodes in &sizes {
        for (label, sc) in scenarios::scale_suite(nodes) {
            let (row, fp) = run_row(label, &sc, 1);
            print_row(&row);
            if label == "no_fault" {
                no_fault_fp.push((nodes, fp));
            }
            rows.push(row);
        }
    }

    // --- Sharded leg: the largest suite size again, through the
    // epoch-sharded simulator, asserted bit-identical to the sequential
    // run above.
    if let Some(&largest) = sizes.iter().max() {
        let sc = scenarios::scale_no_fault(largest);
        let (row, fp) = run_row("no_fault_sharded", &sc, shards);
        print_row(&row);
        let sequential = no_fault_fp
            .iter()
            .find(|(n, _)| *n == largest)
            .map(|(_, fp)| fp)
            .expect("sequential no-fault row at the largest size");
        assert_eq!(
            &fp, sequential,
            "sharded run diverged from sequential at {largest} nodes ({shards} shards)"
        );
        println!("  determinism: sharded({shards}) == sequential at {largest} nodes");
        rows.push(row);
    }

    // --- Million-node headline row (sharded-only; see scale_million docs).
    if million {
        let sc = scenarios::scale_million();
        let (row, _) = run_row("no_fault_sharded", &sc, shards);
        print_row(&row);
        rows.push(row);
    }

    // --- Acceptance: the largest no-fault row delivers everything inside
    // the wall-clock budget...
    let headline = rows
        .iter()
        .filter(|r| r.scenario == "no_fault")
        .max_by_key(|r| r.nodes)
        .expect("a no-fault row exists");
    let target_met = headline.delivery >= 1.0 && headline.wall_secs <= BUDGET_SECS;
    println!();
    println!(
        "  acceptance: no-fault @ {} nodes — delivery {:.3}% in {:.1}s (budget {}s): {}",
        headline.nodes,
        headline.delivery * 100.0,
        headline.wall_secs,
        BUDGET_SECS,
        if target_met { "met" } else { "NOT MET" }
    );
    // ... and so does the largest sharded row (the million-node row when
    // it ran).
    let sharded_headline = rows
        .iter()
        .filter(|r| r.scenario == "no_fault_sharded")
        .max_by_key(|r| r.nodes)
        .expect("a sharded no-fault row exists");
    let sharded_met = sharded_headline.delivery >= 1.0 && sharded_headline.wall_secs <= BUDGET_SECS;
    println!(
        "  acceptance: sharded no-fault @ {} nodes ({} shards) — delivery {:.3}% in {:.1}s (budget {}s): {}",
        sharded_headline.nodes,
        sharded_headline.shards,
        sharded_headline.delivery * 100.0,
        sharded_headline.wall_secs,
        BUDGET_SECS,
        if sharded_met { "met" } else { "NOT MET" }
    );

    // --- JSON artifact.
    let mut rows_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            rows_json.push_str(",\n");
        }
        write!(
            rows_json,
            r#"    {{"scenario": "{}", "nodes": {}, "shards": {}, "messages": {}, "wall_secs": {:.3}, "sim_events": {}, "events_per_sec": {:.0}, "delivery_rate": {:.6}, "completeness": {:.6}, "bytes_per_node": {:.0}, "latency_p50_ms": {:.3}, "latency_p99_ms": {:.3}, "latency_mean_ms": {:.3}, "uploaded_mb": {:.1}, "failures": {}, "joins": {}}}"#,
            r.scenario,
            r.nodes,
            r.shards,
            r.messages,
            r.wall_secs,
            r.sim_events,
            r.sim_events as f64 / r.wall_secs.max(1e-9),
            r.delivery,
            r.completeness,
            r.bytes_per_node,
            r.latency_p50_ms,
            r.latency_p99_ms,
            r.latency_mean_ms,
            r.uploaded_mb,
            r.failures,
            r.joins,
        )
        .unwrap();
    }
    let json = format!(
        r#"{{
  "schema": "brisa-bench-pr10/v1",
  "generated_by": "bench_scale_sweep",
  "mode": "{}",
  "rows": [
{rows_json}
  ],
  "acceptance": {{"no_fault_nodes": {}, "delivery_rate": {:.6}, "wall_secs": {:.3}, "budget_secs": {BUDGET_SECS}, "target_met": {target_met}}},
  "sharded_acceptance": {{"scenario": "no_fault_sharded", "nodes": {}, "shards": {}, "delivery_rate": {:.6}, "wall_secs": {:.3}, "budget_secs": {BUDGET_SECS}, "target_met": {sharded_met}}}
}}
"#,
        if smoke { "smoke" } else { "full" },
        headline.nodes,
        headline.delivery,
        headline.wall_secs,
        sharded_headline.nodes,
        sharded_headline.shards,
        sharded_headline.delivery,
        sharded_headline.wall_secs,
    );
    let out_path =
        std::env::var("BRISA_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR10.json".to_string());
    std::fs::write(&out_path, json).expect("write bench result file");
    println!();
    println!("wrote {out_path}");
    assert!(
        target_met,
        "acceptance bar not met: 100% delivery within budget at the largest no-fault row"
    );
    assert!(
        sharded_met,
        "acceptance bar not met: 100% delivery within budget at the largest sharded row"
    );
}
