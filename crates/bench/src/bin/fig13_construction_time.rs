//! Figure 13: CDF of the structure construction time for BRISA and TAG, on
//! the cluster (512 nodes) and on PlanetLab (200 nodes).
//!
//! For BRISA the construction time of a node spans from its first
//! deactivation message to the moment its inbound links reach the target
//! parent count; for TAG it spans from the join request to the settled list
//! position. Paper shape: the two are comparable on the cluster, but TAG is
//! much slower on PlanetLab because its list traversal pays one WAN
//! round-trip per hop.

use brisa_bench::{banner, print_cdf_series};
use brisa_metrics::Cdf;
use brisa_workloads::{
    run_brisa, run_tag, scenarios, BaselineScenario, BrisaScenario, Scale, StreamSpec, Testbed,
};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 13",
        "structure construction time, BRISA vs TAG",
        scale,
    );
    let mut series = Vec::new();
    for (testbed, nodes) in scenarios::fig13(scale) {
        let env = match testbed {
            Testbed::Cluster => "cluster",
            Testbed::PlanetLab => "PlanetLab",
        };
        let stream = StreamSpec::short(30, 1024);
        let brisa_sc = BrisaScenario {
            nodes,
            view_size: 4,
            testbed,
            stream,
            ..Default::default()
        };
        let brisa_run = run_brisa(&brisa_sc);
        let brisa_cdf = Cdf::from_samples(
            brisa_run
                .nodes
                .iter()
                .filter_map(|n| n.construction_time_ms),
        );
        println!("BRISA, {env}: median construction {:.1} ms", {
            let mut c = brisa_cdf.clone();
            c.quantile(0.5)
        });
        series.push((format!("BRISA, {env}"), brisa_cdf));

        let tag_sc = BaselineScenario {
            nodes,
            view_size: 4,
            testbed,
            stream,
            ..Default::default()
        };
        let tag_run = run_tag(&tag_sc);
        let tag_cdf =
            Cdf::from_samples(tag_run.nodes.iter().filter_map(|n| n.construction_time_ms));
        println!("TAG, {env}: median construction {:.1} ms", {
            let mut c = tag_cdf.clone();
            c.quantile(0.5)
        });
        series.push((format!("TAG, {env}"), tag_cdf));
    }
    println!();
    print_cdf_series("construction time (ms)", &mut series, 14);
}
