//! Figure 14: CDF of parent recovery delays for hard repairs in a 128-node
//! network (view 4) under 3%/minute continuous churn, BRISA tree vs TAG.
//!
//! Paper shape: BRISA both needs hard repairs less often and recovers about
//! twice as fast as TAG, whose recovery requires re-traversing the linked
//! list (one round-trip per hop).

use brisa_bench::{banner, print_cdf_series};
use brisa_metrics::Cdf;
use brisa_workloads::{run_brisa, run_tag, scenarios, BaselineScenario, BrisaScenario, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 14",
        "parent recovery delay under churn, BRISA vs TAG",
        scale,
    );
    let (nodes, churn, stream) = scenarios::fig14(scale);

    let brisa_sc = BrisaScenario {
        nodes,
        view_size: 4,
        stream,
        churn: Some(churn),
        ..Default::default()
    };
    let brisa_run = run_brisa(&brisa_sc);
    let brisa_report = brisa_run.churn.clone().expect("churn report");
    // The paper's figure focuses on hard repairs; report both so the soft
    // repair advantage is visible too.
    println!(
        "BRISA: {} soft repairs (median {:.1} ms), {} hard repairs (median {:.1} ms)",
        brisa_report.soft_repairs,
        Cdf::from_samples(brisa_report.soft_delays_ms.iter().copied()).quantile(0.5),
        brisa_report.hard_repairs,
        Cdf::from_samples(brisa_report.hard_delays_ms.iter().copied()).quantile(0.5),
    );

    let tag_sc = BaselineScenario {
        nodes,
        view_size: 4,
        stream,
        churn: Some(churn),
        ..Default::default()
    };
    let tag_run = run_tag(&tag_sc);
    println!(
        "TAG:   {} soft repairs (median {:.1} ms), {} hard repairs (median {:.1} ms)",
        tag_run.soft_repairs,
        Cdf::from_samples(tag_run.soft_repair_delays_ms.iter().copied()).quantile(0.5),
        tag_run.hard_repairs,
        Cdf::from_samples(tag_run.hard_repair_delays_ms.iter().copied()).quantile(0.5),
    );
    println!();

    let mut series = vec![
        (
            "BRISA tree (hard repairs)".to_string(),
            Cdf::from_samples(brisa_report.hard_delays_ms.iter().copied()),
        ),
        (
            "TAG (hard repairs)".to_string(),
            Cdf::from_samples(tag_run.hard_repair_delays_ms.iter().copied()),
        ),
    ];
    print_cdf_series("recovery delay (ms)", &mut series, 12);
}
