//! Figure 9: routing delay distribution on PlanetLab (150 nodes, tree with
//! view size 4, 200 × 1 KB messages) for four series: the point-to-point
//! reference, the delay-aware strategy, first-come first-picked, and plain
//! flooding.
//!
//! Paper shape: flooding is the worst; delay-aware clearly improves over
//! first-pick (≈40% of the nodes halve their delay); all structured series
//! sit above the point-to-point reference.

use brisa_bench::{banner, print_cdf_series};
use brisa_metrics::Cdf;
use brisa_workloads::{run_brisa, run_flood, scenarios, BaselineScenario, Scale, Testbed};

fn main() {
    let scale = Scale::from_env();
    banner("Figure 9", "routing delays on PlanetLab", scale);
    let brisa_scenarios = scenarios::fig9(scale);
    let nodes = brisa_scenarios[0].nodes;
    let stream = brisa_scenarios[0].stream;

    let mut series = Vec::new();

    // Point-to-point reference and the two BRISA strategies.
    for sc in &brisa_scenarios {
        let label = match sc.strategy {
            brisa::ParentStrategy::DelayAware => "delay-aware",
            _ => "first-pick",
        };
        let result = run_brisa(sc);
        if series.is_empty() {
            // The point-to-point series is strategy-independent; derive it
            // from the first run.
            let p2p = Cdf::from_samples(
                result
                    .nodes
                    .iter()
                    .filter(|n| !n.is_source)
                    .map(|n| n.point_to_point_ms),
            );
            println!("point-to-point: mean {:.1} ms", p2p.mean());
            series.push(("point-to-point".to_string(), p2p));
        }
        let cdf = Cdf::from_samples(
            result
                .nodes
                .iter()
                .filter(|n| !n.is_source)
                .filter_map(|n| n.routing_delay_ms),
        );
        println!(
            "{label}: mean routing delay {:.1} ms, completeness {:.1}%",
            cdf.mean(),
            result.completeness() * 100.0
        );
        series.push((label.to_string(), cdf));
    }

    // Flooding over the same overlay parameters.
    let flood_sc = BaselineScenario {
        nodes,
        view_size: 4,
        testbed: Testbed::PlanetLab,
        stream,
        ..BaselineScenario::default()
    };
    let flood = run_flood(&flood_sc);
    let flood_cdf = Cdf::from_samples(
        flood
            .nodes
            .iter()
            .filter(|n| !n.is_source)
            .filter_map(|n| n.routing_delay_ms),
    );
    println!("flood: mean routing delay {:.1} ms", flood_cdf.mean());
    series.push(("flood".to_string(), flood_cdf));

    println!();
    print_cdf_series("routing delay (ms)", &mut series, 14);
}
