//! Chaos soak: live clusters under scripted adversity, gated against the
//! simulator's prediction of the same script.
//!
//! Each named scenario is one [`ChaosSchedule`] — a stochastic fault
//! profile (per-link loss, a timed partition) plus timed lifecycle events
//! (kills, restarts, flash joins) — executed **twice**:
//!
//! 1. **live**, via `brisa_runtime::run_chaos`: a real cluster (threads,
//!    codec, wall clock) behind the transport fault shim, with periodic
//!    online invariant sweeps; and
//! 2. **simulated**, via the engine: the same population, stream, seed and
//!    (lowered) schedule through the engine's `Runner` with invariants on.
//!
//! Because the shim draws from the same counter-based split-seed PRF as
//! the simulator's fault layer, the stochastic profile means the same
//! thing in both worlds; the artifact records both outcomes side by side
//! and `bench_gate --divergence` holds the live numbers to a band around
//! the sim prediction (`DivergenceBand`, see DESIGN.md).
//!
//! Acceptance, asserted by the binary itself: every scenario's invariant
//! sweeps are clean, survivor delivery is >= 99 %, and the artifact passes
//! the default divergence band. Results go to `BENCH_SOAK.json` (override
//! with `BRISA_BENCH_OUT`); the artifact is *not* a committed baseline —
//! in divergence mode the simulator is the baseline.
//!
//! `--smoke` shrinks to the CI-sized soak (~16 nodes, seconds per
//! scenario); `BRISA_SCALE=full` runs the 64-node two-minute streams.
//! Positional arguments filter scenarios by name. Set
//! `BRISA_SOAK_TRANSPORT=tcp` to soak the real TCP mesh instead of the
//! in-process loopback mesh.

use brisa::BrisaNode;
use brisa_bench::gate::{divergence_check, parse, DivergenceBand, GateReport};
use brisa_bench::{banner, BrisaStackConfig, EngineResult, IntoRunSpec, Runner, Scale};
use brisa_metrics::percentile::percentile_of_sorted;
use brisa_metrics::report::render_table;
use brisa_runtime::{run_chaos, SoakConfig, SoakOutcome, TransportKind};
use brisa_simnet::SimDuration;
use brisa_telemetry::Telemetry;
use brisa_workloads::chaos::{ChaosEvent, ChaosEventKind, ChaosSchedule};
use brisa_workloads::StreamSpec;
use brisa_workloads::{FaultSpec, InvariantSuite, PartitionPhase};
use std::fmt::Write as _;
use std::time::Duration;

/// The soak dimensions of one scale tier.
struct SoakShape {
    nodes: u32,
    messages: u64,
    payload_bytes: usize,
    drain: Duration,
    sweep_interval: Duration,
}

/// One scenario's combined outcome.
struct ScenarioResult {
    name: String,
    live: SoakOutcome,
    sim: EngineResult,
    sim_latency_ms: Vec<f64>,
}

/// Fraction of the stream's injection window, as a schedule offset.
fn at(stream: &StreamSpec, frac: f64) -> SimDuration {
    SimDuration::from_millis_f64(stream.duration().as_secs_f64() * 1000.0 * frac)
}

/// The named chaos scripts of the soak matrix. Kill victims live in the
/// upper half of the identifier space so they never collide with the
/// partition island (the *lowest* non-source identifiers).
fn scenarios(nodes: u32, stream: &StreamSpec) -> Vec<ChaosSchedule> {
    let victim = nodes / 2;
    let mut steady = ChaosSchedule::named("steady_loss_1pct");
    steady.faults = FaultSpec::loss(0.01);

    let mut kill_restart = ChaosSchedule::named("kill_restart");
    kill_restart.events = vec![
        ChaosEvent {
            after: at(stream, 0.25),
            kind: ChaosEventKind::Kill { node: victim },
        },
        ChaosEvent {
            after: at(stream, 0.60),
            kind: ChaosEventKind::Restart { node: victim },
        },
    ];

    let partition = PartitionPhase::drop(0.25, at(stream, 0.30), at(stream, 0.25));
    let mut partition_heal = ChaosSchedule::named("partition_heal");
    partition_heal.faults.partition = Some(partition);

    // Same cut, but cross-cut traffic is *held* and released at the heal
    // (grey failure / congestion window). Exercises the aligned Delay
    // release semantics — arrival at `max(send + latency, heal)` in both
    // worlds — through the divergence gate.
    let mut delay_partition = ChaosSchedule::named("delay_partition_heal");
    delay_partition.faults.partition = Some(PartitionPhase::delay(
        0.25,
        at(stream, 0.30),
        at(stream, 0.25),
    ));

    let mut combined = ChaosSchedule::named("chaos_combined");
    combined.faults = FaultSpec::loss(0.01);
    combined.faults.partition = Some(partition);
    combined.events = vec![
        ChaosEvent {
            after: at(stream, 0.20),
            kind: ChaosEventKind::Kill { node: victim },
        },
        ChaosEvent {
            after: at(stream, 0.35),
            kind: ChaosEventKind::Kill { node: victim + 1 },
        },
        ChaosEvent {
            after: at(stream, 0.50),
            kind: ChaosEventKind::FlashJoin { count: 2 },
        },
        ChaosEvent {
            after: at(stream, 0.70),
            kind: ChaosEventKind::Restart { node: victim },
        },
    ];

    vec![
        steady,
        kill_restart,
        partition_heal,
        delay_partition,
        combined,
    ]
}

/// Sim latency samples, mirroring `LiveResult::latency_samples_ms`:
/// injection-to-first-delivery per (non-source node, message), in ms.
fn sim_latency_samples_ms(r: &EngineResult) -> Vec<f64> {
    let mut samples = Vec::new();
    for n in &r.nodes {
        if n.is_source {
            continue;
        }
        for &(seq, t) in &n.report.first_delivery {
            if let Some(&published) = r.publish_times.get(seq as usize) {
                samples.push(t.saturating_since(published).as_millis_f64());
            }
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples
}

/// Runs one schedule through both worlds.
fn run_scenario(
    shape: &SoakShape,
    transport: TransportKind,
    seed: u64,
    sched: &ChaosSchedule,
    telemetry: &Telemetry,
) -> ScenarioResult {
    let stream = StreamSpec {
        messages: shape.messages,
        rate_per_sec: 5.0,
        payload_bytes: shape.payload_bytes,
    };
    let scenario = sched.to_scenario(shape.nodes, stream, seed);
    let mut stack = BrisaStackConfig {
        hpv: scenario.hyparview_config(),
        brisa: scenario.brisa_config(),
    };
    // Gap recovery reaches back at most `buffer_size` messages (the
    // catch-up cursor anchors at `seq - buffer_size`), in both worlds: a
    // partition longer than the buffer horizon is unrecoverable by
    // design. Provision the buffer to cover the schedule's partition
    // window with headroom, as a production stream with a planned outage
    // tolerance would — identically for sim and live, so the divergence
    // comparison is unaffected.
    if let Some(p) = sched.faults.partition {
        let missed = (stream.rate_per_sec * p.duration.as_secs_f64()).ceil() as usize;
        stack.brisa.buffer_size = stack.brisa.buffer_size.max(missed * 2);
    }

    // Sim prediction first (fast): same schedule through the engine, with
    // the online invariant suite — the baseline must itself be clean.
    let spec = scenario.run_spec();
    let mut suite = InvariantSuite::standard(Some(scenario.brisa_config().mode.target_parents()));
    let sim = Runner::<BrisaNode>::new(&stack, &spec)
        .invariants(&mut suite)
        .run();
    suite.assert_clean();
    let sim_latency_ms = sim_latency_samples_ms(&sim);

    // Then the live soak.
    let cfg = SoakConfig {
        nodes: shape.nodes,
        transport,
        seed,
        stream,
        bootstrap: Duration::from_secs(2),
        drain: shape.drain,
        sweep_interval: shape.sweep_interval,
        telemetry: telemetry.clone(),
        progress: Some(sched.name.clone()),
    };
    let live = run_chaos::<BrisaNode>(&cfg, &stack, sched).expect("launch soak cluster");
    ScenarioResult {
        name: sched.name.clone(),
        live,
        sim,
        sim_latency_ms,
    }
}

/// Aggregate live recovery traffic: `(gap requests, retransmissions
/// served, mean duplicates per message)` over non-source nodes.
fn live_recovery(outcome: &SoakOutcome) -> (u64, u64, f64) {
    let mut req = 0;
    let mut served = 0;
    let mut dup = 0.0;
    let mut n = 0u32;
    for node in &outcome.result.nodes {
        if node.id == outcome.result.source {
            continue;
        }
        req += node.report.repairs.gap_requests;
        served += node.report.repairs.retransmissions_served;
        dup += node.report.duplicates_per_message;
        n += 1;
    }
    (req, served, if n == 0 { 0.0 } else { dup / n as f64 })
}

/// Sim recovery traffic: `(gap requests, retransmissions served)`.
fn sim_recovery(r: &EngineResult) -> (u64, u64) {
    r.nodes.iter().fold((0, 0), |(a, b), n| {
        (
            a + n.report.repairs.gap_requests,
            b + n.report.repairs.retransmissions_served,
        )
    })
}

fn main() {
    let scale = Scale::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let filter: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let transport = match std::env::var("BRISA_SOAK_TRANSPORT").as_deref() {
        Ok("tcp") => TransportKind::Tcp,
        _ => TransportKind::Loopback,
    };
    banner(
        "bench_soak",
        "live chaos soak vs sim prediction (fault shim, lifecycle, divergence gate)",
        scale,
    );

    let shape = if smoke {
        SoakShape {
            nodes: 16,
            messages: 30,
            payload_bytes: 256,
            drain: Duration::from_secs(10),
            sweep_interval: Duration::from_secs(1),
        }
    } else {
        scale.pick(
            SoakShape {
                nodes: 64,
                messages: 600,
                payload_bytes: 1024,
                drain: Duration::from_secs(20),
                sweep_interval: Duration::from_secs(2),
            },
            SoakShape {
                nodes: 24,
                messages: 60,
                payload_bytes: 512,
                drain: Duration::from_secs(12),
                sweep_interval: Duration::from_secs(1),
            },
        )
    };
    let stream_probe = StreamSpec {
        messages: shape.messages,
        rate_per_sec: 5.0,
        payload_bytes: shape.payload_bytes,
    };
    let mut scheds = scenarios(shape.nodes, &stream_probe);
    if !filter.is_empty() {
        scheds.retain(|s| filter.iter().any(|f| **f == s.name));
        assert!(!scheds.is_empty(), "no scenario matches {filter:?}");
    }
    println!(
        "{} nodes, {} msgs x {} B @5/s ({:?} mesh), {} scenario(s)\n",
        shape.nodes,
        shape.messages,
        shape.payload_bytes,
        transport,
        scheds.len()
    );

    // Telemetry: one enabled handle shared by every scenario's cluster. A
    // ticker thread appends a registry snapshot line to the JSONL artifact
    // once per second; on panic (any failed assertion) the flight
    // recorder's retained events are dumped next to the artifact, and the
    // divergence/invariant failure paths below dump explicitly too.
    let telemetry = Telemetry::enabled();
    let tel_path =
        std::env::var("BRISA_TELEMETRY_OUT").unwrap_or_else(|_| "TELEMETRY_SOAK.jsonl".to_string());
    let dump_path = std::env::var("BRISA_TELEMETRY_DUMP")
        .unwrap_or_else(|_| "TELEMETRY_DUMP.jsonl".to_string());
    telemetry.install_panic_dump(std::path::Path::new(&dump_path));
    let ticker_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let ticker = {
        let tel = telemetry.clone();
        let stop = std::sync::Arc::clone(&ticker_stop);
        let path = tel_path.clone();
        std::thread::spawn(move || {
            use std::io::Write as _;
            let epoch = std::time::Instant::now();
            let mut file = std::fs::File::create(&path).expect("create telemetry snapshot file");
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(Duration::from_secs(1));
                writeln!(
                    file,
                    "{}",
                    tel.snapshot_jsonl(epoch.elapsed().as_micros() as u64)
                )
                .expect("append telemetry snapshot");
            }
            // Final tick so even a sub-second run leaves an artifact.
            writeln!(
                file,
                "{}",
                tel.snapshot_jsonl(epoch.elapsed().as_micros() as u64)
            )
            .expect("append telemetry snapshot");
        })
    };

    let results: Vec<ScenarioResult> = scheds
        .iter()
        .enumerate()
        .map(|(i, sched)| run_scenario(&shape, transport, 0xB215A + i as u64, sched, &telemetry))
        .collect();

    ticker_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    ticker.join().expect("telemetry ticker");

    let headers = [
        "scenario",
        "surv deliv%",
        "sim deliv%",
        "sweeps",
        "violations",
        "shim lost/cut",
        "live p50 ms",
        "sim p50 ms",
    ];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let mut live_lat = r.live.result.latency_samples_ms();
            live_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
            vec![
                r.name.clone(),
                format!("{:.2}", r.live.result.survivor_delivery_rate() * 100.0),
                format!("{:.2}", r.sim.delivery_rate() * 100.0),
                r.live.sweeps.to_string(),
                r.live.violations.len().to_string(),
                format!("{}/{}", r.live.shim.frames_lost, r.live.shim.frames_cut),
                format!("{:.2}", percentile_of_sorted(&live_lat, 50.0)),
                format!("{:.2}", percentile_of_sorted(&r.sim_latency_ms, 50.0)),
            ]
        })
        .collect();
    print!("{}", render_table(&headers, &rows));

    // --- BENCH_SOAK.json (schema: brisa-bench-soak/v1, see DESIGN.md).
    // `soak_secs`, not `wall_secs`: the soak's wall time is dictated by the
    // stream schedule, not by implementation speed, so the baseline gate's
    // wall-clock rule must not see it.
    let mut cells = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            cells.push_str(",\n");
        }
        let (req, served, dup) = live_recovery(&r.live);
        let (sim_req, sim_served) = sim_recovery(&r.sim);
        let (frames, bytes) = r.live.result.frames_and_bytes_out();
        let mut live_lat = r.live.result.latency_samples_ms();
        live_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lp50, lp90, lp99) = (
            percentile_of_sorted(&live_lat, 50.0),
            percentile_of_sorted(&live_lat, 90.0),
            percentile_of_sorted(&live_lat, 99.0),
        );
        let (sp50, sp90) = (
            percentile_of_sorted(&r.sim_latency_ms, 50.0),
            percentile_of_sorted(&r.sim_latency_ms, 90.0),
        );
        write!(
            cells,
            "    {{\"scenario\": \"{}\", \"nodes\": {}, \"messages\": {}, \
             \"payload_bytes\": {}, \"soak_secs\": {:.3}, \"sweeps\": {}, \
             \"invariant_violations\": {}, \"restarted\": {}, \"joined\": {},\n     \
             \"shim\": {{\"frames_passed\": {}, \"frames_lost\": {}, \"frames_cut\": {}, \
             \"frames_delayed\": {}, \"linkdowns_synthesized\": {}}},\n     \
             \"live\": {{\"delivery_rate\": {:.6}, \"completeness\": {:.6}, \
             \"survivor_delivery_rate\": {:.6}, \"survivor_completeness\": {:.6}, \
             \"duplicates_per_message\": {:.4}, \"gap_requests\": {}, \
             \"retransmissions_served\": {}, \"latency_p50_ms\": {:.3}, \
             \"latency_p90_ms\": {:.3}, \"latency_p99_ms\": {:.3}, \
             \"frames_out\": {}, \"bytes_out\": {}}},\n     \
             \"sim\": {{\"delivery_rate\": {:.6}, \"completeness\": {:.6}, \
             \"latency_p50_ms\": {:.3}, \"latency_p90_ms\": {:.3}, \
             \"messages_lost_to_faults\": {}, \"messages_cut_by_partition\": {}, \
             \"gap_requests\": {}, \"retransmissions_served\": {}}},\n     \
             \"divergence\": {{\"delivery_abs\": {:.6}, \"completeness_abs\": {:.6}, \
             \"latency_ratio\": {:.3}}}}}",
            r.name,
            shape.nodes,
            shape.messages,
            shape.payload_bytes,
            r.live.result.wall_elapsed.as_secs_f64(),
            r.live.sweeps,
            r.live.violations.len(),
            r.live.restarted.len(),
            r.live.joined.len(),
            r.live.shim.frames_passed,
            r.live.shim.frames_lost,
            r.live.shim.frames_cut,
            r.live.shim.frames_delayed,
            r.live.shim.linkdowns_synthesized,
            r.live.result.delivery_rate(),
            r.live.result.completeness(),
            r.live.result.survivor_delivery_rate(),
            r.live.result.survivor_completeness(),
            dup,
            req,
            served,
            lp50,
            lp90,
            lp99,
            frames,
            bytes,
            r.sim.delivery_rate(),
            r.sim.completeness(),
            sp50,
            sp90,
            r.sim.net_stats.messages_lost_to_faults,
            r.sim.net_stats.messages_cut_by_partition,
            sim_req,
            sim_served,
            (r.live.result.survivor_delivery_rate() - r.sim.delivery_rate()).abs(),
            (r.live.result.survivor_completeness() - r.sim.completeness()).abs(),
            if sp50 > 0.0 { lp50 / sp50 } else { 0.0 },
        )
        .unwrap();
    }
    let json = format!(
        "{{\n  \"schema\": \"brisa-bench-soak/v1\",\n  \"generated_by\": \"bench_soak\",\n  \
         \"scale\": \"{:?}\",\n  \"transport\": \"{:?}\",\n  \"protocol\": \"Brisa\",\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        scale, transport, cells
    );
    let out_path =
        std::env::var("BRISA_BENCH_OUT").unwrap_or_else(|_| "BENCH_SOAK.json".to_string());
    std::fs::write(&out_path, &json).expect("write soak result file");
    println!("\nwrote {out_path}");
    println!("wrote {tel_path}");

    // Dump-on-divergence: on a failed gate or invariant the flight
    // recorder's retained events (ring-bounded — the "last N seconds" of
    // each shard) land next to the artifact for post-mortem.
    let dump = |why: &str| {
        let mut out = telemetry.snapshot_jsonl(u64::MAX);
        out.push('\n');
        out.push_str(&telemetry.dump_events_jsonl(0));
        std::fs::write(&dump_path, out).expect("write telemetry dump");
        eprintln!("telemetry: dumped flight recorder to {dump_path} ({why})");
    };

    // --- Acceptance: clean sweeps, survivors fully served, live inside
    // the divergence band around the sim prediction.
    for r in &results {
        if !r.live.violations.is_empty() {
            dump("online invariant violations");
            panic!(
                "[{}] online invariant violations:\n  {}",
                r.name,
                r.live.violations.join("\n  ")
            );
        }
        let survivors = r.live.result.survivor_delivery_rate();
        if survivors < 0.99 {
            dump("survivor delivery below the bar");
            panic!(
                "[{}] survivor delivery {survivors:.4} below the 99% bar",
                r.name
            );
        }
        r.live
            .result
            .check_delivery_invariants()
            .expect("live trace passes the delivery invariants");
    }
    let mut gate = GateReport::default();
    divergence_check(
        &parse(&json).expect("reparse own artifact"),
        &DivergenceBand::from_env(),
        &mut gate,
    );
    print!("{}", gate.render());
    let forced = std::env::var("BRISA_SOAK_FORCE_DIVERGENCE").is_ok_and(|v| v == "1");
    if forced || !gate.passed() {
        dump("divergence gate failed");
        if forced {
            panic!("divergence gate failure forced by BRISA_SOAK_FORCE_DIVERGENCE=1");
        }
        panic!("soak diverged from the sim prediction");
    }
    println!("bench_soak: all scenarios clean and inside the divergence band");
}
