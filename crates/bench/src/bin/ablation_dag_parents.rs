//! Ablation: number of DAG parents (Sections II-G and IV).
//!
//! Sweeps the target parent count from 1 (a tree) to 4 and measures the
//! trade-off the paper describes: more parents mean more duplicate traffic
//! but far fewer orphaning events under churn.
//!
//! The four parent-count cells run in parallel through `run_matrix`.

use brisa::StructureMode;
use brisa_bench::{banner, run_brisa, run_matrix, BrisaScenario, Scale};
use brisa_metrics::report::render_table;
use brisa_simnet::SimDuration;
use brisa_workloads::{ChurnSpec, StreamSpec};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Ablation",
        "DAG parent count vs duplicates and robustness",
        scale,
    );
    let nodes = scale.pick(128, 64);
    let churn = ChurnSpec {
        rate_percent: 5.0,
        interval: SimDuration::from_secs(scale.pick(60, 15)),
        duration: SimDuration::from_secs(scale.pick(600, 60)),
    };
    let headers = [
        "parents",
        "mean dup/msg",
        "mean parents found",
        "parents lost/min",
        "orphans/min",
        "% soft repairs",
        "completeness %",
    ];
    let parent_counts: Vec<usize> = (1..=4).collect();
    let cells: Vec<BrisaScenario> = parent_counts
        .iter()
        .map(|&parents| {
            let mode = if parents == 1 {
                StructureMode::Tree
            } else {
                StructureMode::Dag { parents }
            };
            BrisaScenario {
                nodes,
                view_size: 8,
                mode,
                stream: StreamSpec::short(scale.pick(500, 60), 1024),
                churn: Some(churn),
                ..Default::default()
            }
        })
        .collect();
    let results = run_matrix(&cells, |_, sc| run_brisa(sc));

    let mut rows = Vec::new();
    for (parents, result) in parent_counts.iter().zip(&results) {
        let churn_report = result.churn.clone().expect("churn report");
        let dup = result.non_source(|n| n.duplicates_per_message);
        let mean_dup = dup.iter().sum::<f64>() / dup.len().max(1) as f64;
        let found = result.non_source(|n| n.parents.len() as f64);
        let mean_found = found.iter().sum::<f64>() / found.len().max(1) as f64;
        rows.push(vec![
            parents.to_string(),
            format!("{mean_dup:.2}"),
            format!("{mean_found:.2}"),
            format!("{:.1}", churn_report.parents_lost_per_min),
            format!("{:.1}", churn_report.orphans_per_min),
            format!("{:.1}", churn_report.soft_pct),
            format!("{:.1}", result.completeness() * 100.0),
        ]);
    }
    print!("{}", render_table(&headers, &rows));
}
