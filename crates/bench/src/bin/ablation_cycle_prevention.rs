//! Ablation: cycle-prevention metadata cost (Section II-D / II-G).
//!
//! Compares the three mechanisms the paper discusses — exact path embedding
//! (trees), approximate depth labels (DAGs) and Bloom filters — on the
//! metadata each stream message must carry, plus the exactness of the
//! check. Reproduces the paper's headline numbers: for one million nodes
//! with view size 8 a path is ~7 identifiers (336 bits) whereas a Bloom
//! filter at 1e-6 false positives needs ~28.8 million bits.

use brisa::{BloomMembership, CycleGuard};
use brisa_bench::banner;
use brisa_metrics::report::render_table;
use brisa_simnet::NodeId;
use brisa_workloads::Scale;

fn main() {
    let scale = Scale::from_env();
    banner("Ablation", "cycle-prevention metadata size", scale);
    let headers = [
        "system size",
        "view",
        "tree height (hops)",
        "path embedding (bits)",
        "depth label (bits)",
        "bloom 1e-6 (bits)",
        "bloom false positives",
    ];
    let mut rows = Vec::new();
    for &(n, view) in &[
        (1_000usize, 8usize),
        (100_000, 8),
        (1_000_000, 8),
        (1_000_000, 4),
    ] {
        let height = ((n as f64).ln() / (view as f64).ln()).ceil() as usize;
        let path = CycleGuard::Path((0..height as u32).map(NodeId).collect());
        let depth = CycleGuard::Depth(height as u32);
        let mut bloom = BloomMembership::with_false_positive_rate(height, 1e-6);
        for i in 0..height as u32 {
            bloom.insert(NodeId(i));
        }
        // Measure the empirical false-positive rate over nodes not on the path.
        let probes = 100_000u32;
        let fps = (height as u32..height as u32 + probes)
            .filter(|&i| bloom.contains(NodeId(i)))
            .count();
        rows.push(vec![
            n.to_string(),
            view.to_string(),
            height.to_string(),
            (path.wire_size() * 8).to_string(),
            (depth.wire_size() * 8).to_string(),
            BloomMembership::with_false_positive_rate(1_000_000, 1e-6)
                .num_bits()
                .to_string(),
            format!("{fps}/{probes}"),
        ]);
    }
    print!("{}", render_table(&headers, &rows));
    println!();
    println!("path embedding is exact (zero false positives/negatives); depth labels are");
    println!("constant-size but approximate (false negatives only); Bloom filters trade");
    println!("enormous metadata for a configurable false-positive rate.");
}
