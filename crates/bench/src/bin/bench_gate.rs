//! CI bench-regression gate.
//!
//! ```text
//! bench_gate <baseline-dir> <fresh-dir>
//! ```
//!
//! Compares every `BENCH_*.json` present in `<baseline-dir>` (the committed
//! baselines, snapshotted by CI before the bench binaries overwrite them)
//! against the freshly produced copy in `<fresh-dir>`, using the rules of
//! `brisa_bench::gate`: >20 % wall-clock growth (`BENCH_GATE_WALL_PCT`
//! override) or any delivery-rate drop fails the job. A baseline artifact
//! with no fresh counterpart fails too — a bench silently ceasing to
//! produce its trajectory is itself a regression.
//!
//! Thresholds and the consumed schemas are documented in DESIGN.md.

use brisa_bench::gate::{compare, parse, GateConfig, GateReport};
use std::path::Path;

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(baseline_dir), Some(fresh_dir)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_gate <baseline-dir> <fresh-dir>");
        std::process::exit(2);
    };
    let cfg = GateConfig::from_env();
    println!(
        "bench_gate: baselines {baseline_dir} vs fresh {fresh_dir} \
         (wall tolerance +{:.0}%, any delivery drop fails)",
        cfg.wall_tolerance * 100.0
    );

    let mut names: Vec<String> = std::fs::read_dir(&baseline_dir)
        .expect("read baseline dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        eprintln!("bench_gate: no BENCH_*.json baselines in {baseline_dir}");
        std::process::exit(2);
    }

    let mut report = GateReport::default();
    for name in &names {
        let base_path = Path::new(&baseline_dir).join(name);
        let fresh_path = Path::new(&fresh_dir).join(name);
        if !fresh_path.exists() {
            report.violations.push(format!(
                "{name}: baseline exists but no fresh artifact was produced"
            ));
            continue;
        }
        let baseline = parse(&std::fs::read_to_string(&base_path).expect("read baseline"))
            .unwrap_or_else(|e| panic!("{name} baseline: {e}"));
        let fresh = parse(&std::fs::read_to_string(&fresh_path).expect("read fresh"))
            .unwrap_or_else(|e| panic!("{name} fresh: {e}"));
        compare(name, &baseline, &fresh, &cfg, &mut report);
    }

    print!("{}", report.render());
    if !report.passed() {
        eprintln!("bench_gate: the bench trajectory regressed");
        std::process::exit(1);
    }
    println!("bench_gate: trajectory OK ({} artifacts)", names.len());
}
