//! CI bench-regression gate.
//!
//! ```text
//! bench_gate <baseline-dir> <fresh-dir>
//! bench_gate --divergence <BENCH_SOAK.json>
//! ```
//!
//! **Baseline mode** compares every `BENCH_*.json` present in
//! `<baseline-dir>` (the committed baselines, snapshotted by CI before the
//! bench binaries overwrite them) against the freshly produced copy in
//! `<fresh-dir>`, using the rules of `brisa_bench::gate`: >20 % wall-clock
//! growth (`BENCH_GATE_WALL_PCT` override) or any delivery-rate drop fails
//! the job. A baseline artifact with no fresh counterpart fails too — a
//! bench silently ceasing to produce its trajectory is itself a regression.
//!
//! **Divergence mode** gates a freshly produced soak artifact against the
//! sim predictions recorded inside it: per scenario, zero online invariant
//! violations and live delivery/completeness/latency inside the
//! `DivergenceBand` (`BRISA_DIV_DELIVERY_ABS` /
//! `BRISA_DIV_COMPLETENESS_ABS` / `BRISA_DIV_LATENCY_RATIO` overrides).
//! There is no committed baseline in this mode — the simulator *is* the
//! baseline.
//!
//! Thresholds and the consumed schemas are documented in DESIGN.md.

use brisa_bench::gate::{compare, divergence_check, parse, DivergenceBand, GateConfig, GateReport};
use std::path::Path;

fn run_divergence(artifact_path: &str) -> ! {
    let band = DivergenceBand::from_env();
    println!(
        "bench_gate: divergence gate on {artifact_path} \
         (delivery ±{:.3}, completeness ±{:.3}, latency ≤{:.0}x sim)",
        band.delivery_abs, band.completeness_abs, band.latency_ratio
    );
    let artifact = parse(&std::fs::read_to_string(artifact_path).expect("read soak artifact"))
        .unwrap_or_else(|e| panic!("{artifact_path}: {e}"));
    let mut report = GateReport::default();
    divergence_check(&artifact, &band, &mut report);
    print!("{}", report.render());
    if !report.passed() {
        eprintln!("bench_gate: live run diverged from the sim prediction");
        std::process::exit(1);
    }
    println!("bench_gate: sim-vs-live divergence OK");
    std::process::exit(0);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(baseline_dir), Some(fresh_dir)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_gate <baseline-dir> <fresh-dir> | --divergence <artifact>");
        std::process::exit(2);
    };
    if baseline_dir == "--divergence" {
        run_divergence(&fresh_dir);
    }
    let cfg = GateConfig::from_env();
    println!(
        "bench_gate: baselines {baseline_dir} vs fresh {fresh_dir} \
         (wall tolerance +{:.0}%, any delivery drop fails)",
        cfg.wall_tolerance * 100.0
    );

    let mut names: Vec<String> = std::fs::read_dir(&baseline_dir)
        .expect("read baseline dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        eprintln!("bench_gate: no BENCH_*.json baselines in {baseline_dir}");
        std::process::exit(2);
    }

    let mut report = GateReport::default();
    for name in &names {
        let base_path = Path::new(&baseline_dir).join(name);
        let fresh_path = Path::new(&fresh_dir).join(name);
        if !fresh_path.exists() {
            report.violations.push(format!(
                "{name}: baseline exists but no fresh artifact was produced"
            ));
            continue;
        }
        let baseline = parse(&std::fs::read_to_string(&base_path).expect("read baseline"))
            .unwrap_or_else(|e| panic!("{name} baseline: {e}"));
        let fresh = parse(&std::fs::read_to_string(&fresh_path).expect("read fresh"))
            .unwrap_or_else(|e| panic!("{name} fresh: {e}"));
        compare(name, &baseline, &fresh, &cfg, &mut report);
    }

    print!("{}", report.render());
    if !report.passed() {
        eprintln!("bench_gate: the bench trajectory regressed");
        std::process::exit(1);
    }
    println!("bench_gate: trajectory OK ({} artifacts)", names.len());
}
