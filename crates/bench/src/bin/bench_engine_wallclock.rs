//! Wall-clock benchmark of the simulator hot path: the timing-wheel
//! scheduler against the `BinaryHeap` reference, on the Table I churn grid.
//!
//! Two measurements, both on the exact Table I workload at the current
//! `BRISA_SCALE`:
//!
//! 1. **engine** — end-to-end wall clock of the full grid (bootstrap, churn,
//!    stream, collect) under each scheduler, reported as simulator
//!    events/sec. This is the number the ROADMAP's trajectory tracks; it
//!    includes all protocol work, so scheduler gains are diluted by design.
//! 2. **sched_replay** — the recorded push/pop trace of the grid replayed
//!    through each scheduler in isolation. This isolates the data structure
//!    the PR replaces and is where the ≥2× target applies.
//!
//! Before timing anything, the binary asserts that both schedulers produce
//! bit-identical results (the determinism contract).
//!
//! Results are printed and written to `BENCH_PR2.json` (override the path
//! with `BRISA_BENCH_OUT`), which CI uploads as an artifact so every future
//! PR extends the perf trajectory. See DESIGN.md for the JSON schema.

use brisa::BrisaNode;
use brisa_bench::{
    banner, run_matrix_sequential, BrisaStackConfig, EngineResult, IntoRunSpec, Runner, Scale,
};
use brisa_simnet::sched::{HeapScheduler, TimingWheel, TraceOp};
use brisa_workloads::{scenarios, SchedulerKind};
use std::hint::black_box;
use std::time::Instant;

/// One timed measurement: wall seconds and the events-per-second it implies.
struct Measurement {
    wall_secs: f64,
    events: u64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(1e-9)
    }
}

/// Everything behaviour-relevant in a grid result, for the equivalence
/// assertion between schedulers.
fn grid_fingerprint(results: &[EngineResult]) -> String {
    results.iter().map(EngineResult::fingerprint).collect()
}

fn run_grid(
    cells: &[(
        u32,
        f64,
        brisa::StructureMode,
        brisa_workloads::BrisaScenario,
    )],
    scheduler: SchedulerKind,
    trace_events: bool,
) -> (Measurement, Vec<EngineResult>) {
    let start = Instant::now();
    let results = run_matrix_sequential(cells, |_, (_, _, _, sc)| {
        let cfg = BrisaStackConfig {
            hpv: sc.hyparview_config(),
            brisa: sc.brisa_config(),
        };
        let mut spec = sc.run_spec();
        spec.scheduler = scheduler;
        spec.trace_events = trace_events;
        Runner::<BrisaNode>::new(&cfg, &spec).run()
    });
    let wall_secs = start.elapsed().as_secs_f64();
    let events = results.iter().map(EngineResult::sim_events).sum();
    (Measurement { wall_secs, events }, results)
}

/// Replays the recorded per-cell push/pop traces through a scheduler — one
/// fresh queue per cell, exactly as the engine runs one fresh simulator per
/// cell — returning the best (fastest) of `iters` passes.
fn replay<Q, PushFn, PopFn>(
    traces: &[Vec<TraceOp>],
    iters: usize,
    mut fresh: impl FnMut() -> Q,
    push: PushFn,
    pop: PopFn,
) -> Measurement
where
    PushFn: Fn(&mut Q, brisa_simnet::SimTime),
    PopFn: Fn(&mut Q) -> bool,
{
    let mut best = f64::INFINITY;
    let mut pops = 0u64;
    for _ in 0..iters.max(1) {
        pops = 0;
        let start = Instant::now();
        for trace in traces {
            let mut q = fresh();
            for op in trace {
                match *op {
                    TraceOp::Push(t) => push(&mut q, t),
                    TraceOp::Pop => {
                        if pop(&mut q) {
                            pops += 1;
                        }
                    }
                }
            }
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    Measurement {
        wall_secs: best,
        events: pops,
    }
}

fn json_measurement(m: &Measurement) -> String {
    format!(
        r#"{{"wall_secs": {:.6}, "events": {}, "events_per_sec": {:.1}}}"#,
        m.wall_secs,
        m.events,
        m.events_per_sec()
    )
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "bench_engine_wallclock",
        "timing wheel vs BinaryHeap on the Table I churn grid",
        scale,
    );
    let cells = scenarios::table1(scale);

    // --- Correctness first: both schedulers must produce identical runs.
    let (_, wheel_results) = run_grid(&cells, SchedulerKind::TimingWheel, false);
    let (_, heap_results) = run_grid(&cells, SchedulerKind::BinaryHeap, false);
    assert_eq!(
        grid_fingerprint(&wheel_results),
        grid_fingerprint(&heap_results),
        "schedulers diverged: the determinism contract is broken"
    );
    println!(
        "determinism: timing wheel == BinaryHeap on all {} cells",
        cells.len()
    );

    // --- End-to-end engine wall clock (the warm runs above primed caches).
    let (heap_engine, _) = run_grid(&cells, SchedulerKind::BinaryHeap, false);
    let (wheel_engine, _) = run_grid(&cells, SchedulerKind::TimingWheel, false);
    let engine_speedup = wheel_engine.events_per_sec() / heap_engine.events_per_sec();

    // --- Scheduler-only replay of the recorded grid trace. Entries carry a
    // payload of the same size as the simulator's real in-queue event
    // records, so each scheduler moves as many bytes per operation as it
    // does inside the engine.
    let (_, traced) = run_grid(&cells, SchedulerKind::TimingWheel, true);
    let traces: Vec<Vec<TraceOp>> = traced.into_iter().map(|r| r.event_trace).collect();
    let trace_ops: usize = traces.iter().map(Vec::len).sum();
    type Payload = [u64; 6];
    assert_eq!(
        std::mem::size_of::<Payload>(),
        brisa_simnet::event_record_size::<BrisaNode>(),
        "replay payload must match the simulator's event record size"
    );
    let payload: Payload = [7; 6];
    let replay_iters = 9;
    let heap_replay = replay(
        &traces,
        replay_iters,
        HeapScheduler::<Payload>::new,
        |q, t| q.push(t, payload),
        |q| black_box(q.pop()).is_some(),
    );
    let wheel_replay = replay(
        &traces,
        replay_iters,
        TimingWheel::<Payload>::new,
        |q, t| q.push(t, payload),
        |q| black_box(q.pop()).is_some(),
    );
    let replay_speedup = wheel_replay.events_per_sec() / heap_replay.events_per_sec();

    println!();
    println!("engine (end-to-end, all protocol work included):");
    println!(
        "  BinaryHeap  : {:>12.0} events/sec  ({} events in {:.3}s)",
        heap_engine.events_per_sec(),
        heap_engine.events,
        heap_engine.wall_secs
    );
    println!(
        "  TimingWheel : {:>12.0} events/sec  ({} events in {:.3}s)",
        wheel_engine.events_per_sec(),
        wheel_engine.events,
        wheel_engine.wall_secs
    );
    println!("  speedup     : {engine_speedup:.2}x");
    println!();
    println!("sched_replay (scheduler isolated on the recorded grid traces, {trace_ops} ops):");
    println!(
        "  BinaryHeap  : {:>12.0} events/sec  ({:.3}s)",
        heap_replay.events_per_sec(),
        heap_replay.wall_secs
    );
    println!(
        "  TimingWheel : {:>12.0} events/sec  ({:.3}s)",
        wheel_replay.events_per_sec(),
        wheel_replay.wall_secs
    );
    println!("  speedup     : {replay_speedup:.2}x  (target: >= 2x)");
    println!(
        "  target met  : {}",
        if replay_speedup >= 2.0 { "yes" } else { "NO" }
    );

    let json = format!(
        r#"{{
  "schema": "brisa-bench-pr2/v1",
  "generated_by": "bench_engine_wallclock",
  "scale": "{scale:?}",
  "grid": "table1",
  "cells": {cells_len},
  "engine": {{
    "binary_heap": {heap_engine_json},
    "timing_wheel": {wheel_engine_json},
    "speedup": {engine_speedup:.3}
  }},
  "sched_replay": {{
    "trace_ops": {trace_ops},
    "replay_iters": {replay_iters},
    "binary_heap": {heap_replay_json},
    "timing_wheel": {wheel_replay_json},
    "speedup": {replay_speedup:.3},
    "target_speedup": 2.0,
    "target_met": {target_met}
  }}
}}
"#,
        cells_len = cells.len(),
        heap_engine_json = json_measurement(&heap_engine),
        wheel_engine_json = json_measurement(&wheel_engine),
        trace_ops = trace_ops,
        heap_replay_json = json_measurement(&heap_replay),
        wheel_replay_json = json_measurement(&wheel_replay),
        target_met = replay_speedup >= 2.0,
    );
    let out_path =
        std::env::var("BRISA_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR2.json".to_string());
    std::fs::write(&out_path, json).expect("write bench result file");
    println!();
    println!("wrote {out_path}");
}
