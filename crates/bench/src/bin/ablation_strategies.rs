//! Ablation: parent selection strategies (Sections II-E and IV).
//!
//! Compares first-come first-picked, delay-aware, gerontocratic and
//! load-balancing on routing delay, structure depth, and the spread of the
//! dissemination load (degree percentiles), on the PlanetLab latency model
//! where strategy differences are visible.
//!
//! The four strategy cells run in parallel through `run_matrix`.

use brisa::ParentStrategy;
use brisa_bench::{banner, run_brisa, run_matrix, BrisaScenario, Scale};
use brisa_metrics::report::render_table;
use brisa_metrics::{Cdf, PercentileSummary};
use brisa_workloads::{StreamSpec, Testbed};

fn main() {
    let scale = Scale::from_env();
    banner("Ablation", "parent selection strategies", scale);
    let nodes = scale.pick(150, 48);
    let headers = [
        "strategy",
        "mean routing delay (ms)",
        "p90 routing delay (ms)",
        "max depth",
        "p90 degree",
        "completeness %",
    ];
    let strategies = [
        (ParentStrategy::FirstComeFirstPicked, "first-come"),
        (ParentStrategy::DelayAware, "delay-aware"),
        (ParentStrategy::Gerontocratic, "gerontocratic"),
        (ParentStrategy::LoadBalancing, "load-balancing"),
    ];
    let cells: Vec<BrisaScenario> = strategies
        .iter()
        .map(|&(strategy, _)| BrisaScenario {
            nodes,
            view_size: 4,
            strategy,
            testbed: Testbed::PlanetLab,
            stream: StreamSpec::short(scale.pick(200, 30), 1024),
            ..Default::default()
        })
        .collect();
    let results = run_matrix(&cells, |_, sc| run_brisa(sc));

    let mut rows = Vec::new();
    for ((_, label), result) in strategies.iter().zip(&results) {
        let mut delays = Cdf::from_samples(
            result
                .nodes
                .iter()
                .filter(|n| !n.is_source)
                .filter_map(|n| n.routing_delay_ms),
        );
        let depths = result.structure.depths();
        let degrees =
            PercentileSummary::from_samples(result.structure.degrees().values().map(|&d| d as f64));
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", delays.mean()),
            format!("{:.1}", delays.quantile(0.9)),
            format!("{}", depths.values().max().copied().unwrap_or(0)),
            format!("{:.1}", degrees.p90),
            format!("{:.1}", result.completeness() * 100.0),
        ]);
    }
    print!("{}", render_table(&headers, &rows));
}
