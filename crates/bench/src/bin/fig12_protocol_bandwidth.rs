//! Figure 12: data transmitted per node (stabilisation + dissemination) for
//! a 512-node network and payload sizes 0/1/10/20 KB, comparing SimpleTree,
//! BRISA (tree, view 4), TAG (view 4) and SimpleGossip.
//!
//! Paper shape: BRISA and TAG are comparable and dominated by payload
//! traffic; SimpleTree has the smallest management overhead (one exchange
//! with the coordinator); SimpleGossip is competitive for tiny payloads but
//! quickly becomes the most expensive as payloads grow, because of its
//! duplicate factor.

use brisa_bench::banner;
use brisa_metrics::report::render_table;
use brisa_workloads::{
    run_brisa, run_simple_gossip, run_simple_tree, run_tag, scenarios, BaselineScenario,
    BrisaScenario, Scale, StreamSpec,
};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 12",
        "data transmitted per node, by protocol and payload",
        scale,
    );
    let (nodes, payloads, stream) = scenarios::comparison(scale);
    let headers = [
        "payload (KB)",
        "SimpleTree (MB)",
        "BRISA tree v4 (MB)",
        "TAG v4 (MB)",
        "SimpleGossip (MB)",
    ];
    let mut rows = Vec::new();
    for payload in payloads {
        let stream = StreamSpec {
            payload_bytes: payload,
            ..stream
        };
        let baseline_sc = BaselineScenario {
            nodes,
            view_size: 4,
            stream,
            ..Default::default()
        };
        let brisa_sc = BrisaScenario {
            nodes,
            view_size: 4,
            stream,
            ..Default::default()
        };

        let tree = run_simple_tree(&baseline_sc);
        let brisa_run = run_brisa(&brisa_sc);
        let tag = run_tag(&baseline_sc);
        let gossip = run_simple_gossip(&baseline_sc);

        let brisa_mb = brisa_run
            .nodes
            .iter()
            .map(|n| n.bandwidth.total_uploaded_mb())
            .sum::<f64>()
            / brisa_run.nodes.len().max(1) as f64;
        rows.push(vec![
            format!("{}", payload / 1024),
            format!("{:.2}", tree.mean_data_transmitted_mb()),
            format!("{:.2}", brisa_mb),
            format!("{:.2}", tag.mean_data_transmitted_mb()),
            format!("{:.2}", gossip.mean_data_transmitted_mb()),
        ]);
    }
    print!("{}", render_table(&headers, &rows));
}
