//! # brisa-bench — figure/table regeneration harness
//!
//! One binary per figure and table of the paper's evaluation (see
//! `DESIGN.md` for the experiment index), plus Criterion micro-benchmarks of
//! the hot protocol paths. The binaries print the same rows/series the paper
//! reports as aligned plain-text tables.
//!
//! Every binary honours the `BRISA_SCALE` environment variable: the default
//! `quick` scale runs in seconds and preserves the qualitative shape of the
//! results; `BRISA_SCALE=full` reproduces the paper's sizes (512/200/150/128
//! nodes, 500 messages). Sweep binaries additionally honour `BRISA_THREADS`:
//! independent cells fan out across threads through
//! [`run_matrix`], with results bit-identical to a sequential run.
//!
//! The experiment engine is re-exported here so every binary — and any
//! downstream experiment — shares one entry point: [`Runner`] for a single
//! cell, [`run_matrix`] for a sweep, [`run_brisa`]/`run_*` for the
//! protocol-flavoured result types.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gate;

use brisa_metrics::report::render_table;
use brisa_metrics::Cdf;

pub use brisa_workloads::{
    derive_seed, matrix_threads, run_brisa, run_flood, run_matrix, run_matrix_sequential,
    run_simple_gossip, run_simple_tree, run_tag, BaselineScenario, BrisaScenario, BrisaStackConfig,
    DisseminationProtocol, EngineResult, IntoRunSpec, RunSpec, Runner, Scale,
};

/// Prints the standard experiment banner (experiment id, scale, seed).
pub fn banner(experiment: &str, description: &str, scale: Scale) {
    println!("=== {experiment} — {description}");
    println!(
        "    scale: {:?} (set BRISA_SCALE=full for the paper's sizes)",
        scale
    );
    println!();
}

/// Prints a set of labelled CDF series side by side, sampled at the union of
/// the series' value ranges. This is the textual equivalent of the paper's
/// multi-line CDF plots.
pub fn print_cdf_series(value_label: &str, series: &mut [(String, Cdf)], points: usize) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, cdf) in series.iter_mut() {
        if let Some((a, b)) = cdf.range() {
            lo = lo.min(a);
            hi = hi.max(b);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        println!("(no samples)");
        return;
    }
    let points = points.max(2);
    let mut headers: Vec<String> = vec![value_label.to_string()];
    headers.extend(series.iter().map(|(l, _)| format!("% <= ({l})")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rows = Vec::new();
    for i in 0..points {
        let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
        let mut row = vec![format!("{x:.3}")];
        for (_, cdf) in series.iter_mut() {
            row.push(format!("{:.1}", cdf.percent_at(x)));
        }
        rows.push(row);
    }
    print!("{}", render_table(&header_refs, &rows));
}

/// Formats an `Option<f64>` with a dash for missing values.
pub fn opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.2}"))
        .unwrap_or_else(|| "-".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_formats_missing_values() {
        assert_eq!(opt(None), "-");
        assert_eq!(opt(Some(1.5)), "1.50");
    }

    #[test]
    fn cdf_series_printing_does_not_panic() {
        let mut series = vec![
            ("a".to_string(), Cdf::from_samples([1.0, 2.0, 3.0])),
            ("b".to_string(), Cdf::from_samples([2.0, 4.0])),
        ];
        print_cdf_series("value", &mut series, 5);
        let mut empty: Vec<(String, Cdf)> = vec![("x".to_string(), Cdf::new())];
        print_cdf_series("value", &mut empty, 5);
    }
}
