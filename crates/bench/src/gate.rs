//! Bench-regression gate: compares freshly produced `BENCH_*.json` files
//! against the committed baselines and fails CI when the trajectory
//! regresses.
//!
//! Two rules, applied to every numeric field the walker finds (schemas in
//! DESIGN.md):
//!
//! * **wall-clock** (`wall_secs`): the fresh value may exceed the baseline
//!   by at most the tolerance (default 20 %, `BENCH_GATE_WALL_PCT`
//!   override — hosted CI runners are noisier than the bench box that
//!   produced the committed baselines). Cells whose baseline is below the
//!   one-second noise floor are skipped, not gated;
//! * **delivery** (`delivery_rate`, `loss_1pct_delivery`, `completeness`):
//!   any drop below the baseline fails (small float-formatting epsilon).
//!
//! Arrays of result cells are matched by identity fields (`scenario`,
//! `nodes`, `loss_rate`, `partition_secs`, `payload_bytes`), not by index,
//! so a smoke-row artifact gates cleanly against a full-row baseline: only
//! cells present on both sides are compared, the rest are reported as
//! skipped.
//!
//! The module also carries the **sim-vs-live divergence gate**
//! ([`divergence_check`]): a `BENCH_SOAK.json` artifact records, per chaos
//! scenario, the live cluster's outcome next to the simulator's prediction
//! of the *same* schedule, and the gate fails when the live numbers drift
//! outside a configurable [`DivergenceBand`] — or when any online
//! invariant sweep tripped during the soak.
//!
//! The vendored serde stub has no JSON support, so this module carries its
//! own small recursive-descent parser — sufficient for the machine-written
//! artifacts the benches emit.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; the artifacts never need 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number behind this value, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        // The artifacts never emit \u escapes; keep them
                        // readable rather than wrong.
                        other => {
                            out.push('\\');
                            out.push(other as char);
                        }
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

/// Gate thresholds.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Allowed relative wall-clock growth (0.20 = +20 %).
    pub wall_tolerance: f64,
    /// Wall-clock fields whose *baseline* is below this many seconds are
    /// skipped, not gated: sub-second cells are dominated by scheduler and
    /// cache noise (same-machine reruns showed >60 % swings), so relative
    /// thresholds on them only produce flakes.
    pub min_wall_secs: f64,
    /// Slack on delivery comparisons, covering float formatting only.
    pub delivery_epsilon: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            wall_tolerance: 0.20,
            min_wall_secs: 1.0,
            delivery_epsilon: 1e-6,
        }
    }
}

impl GateConfig {
    /// Reads the wall tolerance from `BENCH_GATE_WALL_PCT` (a percentage,
    /// e.g. `75`), keeping the default when unset or unparsable.
    pub fn from_env() -> Self {
        let mut cfg = GateConfig::default();
        if let Ok(pct) = std::env::var("BENCH_GATE_WALL_PCT") {
            if let Ok(pct) = pct.trim().parse::<f64>() {
                cfg.wall_tolerance = pct / 100.0;
            }
        }
        cfg
    }
}

/// Outcome of gating one or more artifacts.
#[derive(Debug, Default)]
pub struct GateReport {
    /// Human-readable regression descriptions; non-empty fails the gate.
    pub violations: Vec<String>,
    /// Numeric comparisons performed.
    pub checks: usize,
    /// Cells/fields present on only one side (informational).
    pub skipped: Vec<String>,
}

impl GateReport {
    /// True if no regression was found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report for CI logs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "bench_gate: {} comparisons, {} skipped, {} violations",
            self.checks,
            self.skipped.len(),
            self.violations.len()
        )
        .unwrap();
        for s in &self.skipped {
            writeln!(out, "  skipped: {s}").unwrap();
        }
        for v in &self.violations {
            writeln!(out, "  REGRESSION: {v}").unwrap();
        }
        out
    }
}

/// Fields gated as wall-clock (fresh may exceed baseline by the tolerance).
const WALL_KEYS: &[&str] = &["wall_secs"];
/// Fields gated as delivery (any drop below baseline fails).
const DELIVERY_KEYS: &[&str] = &["delivery_rate", "loss_1pct_delivery", "completeness"];
/// Fields identifying a result cell inside an array, used to match cells
/// across artifacts with different row sets.
const IDENTITY_KEYS: &[&str] = &[
    "scenario",
    "nodes",
    "no_fault_nodes",
    "loss_rate",
    "partition_secs",
    "payload_bytes",
];

fn identity_of(v: &Json) -> Option<String> {
    let mut id = String::new();
    for key in IDENTITY_KEYS {
        match v.get(key) {
            Some(Json::Str(s)) => write!(id, "{key}={s};").unwrap(),
            Some(Json::Num(n)) => write!(id, "{key}={n};").unwrap(),
            _ => {}
        }
    }
    (!id.is_empty()).then_some(id)
}

/// Compares a fresh artifact against its baseline, appending to `report`.
pub fn compare(
    path: &str,
    baseline: &Json,
    fresh: &Json,
    cfg: &GateConfig,
    report: &mut GateReport,
) {
    match (baseline, fresh) {
        (Json::Obj(base_members), Json::Obj(_)) => {
            // Two objects describing different cells must not be gated
            // against each other. This is how a smoke artifact's
            // `acceptance` block (anchored to the largest smoke row) stays
            // out of the way when the nightly full run gates against it —
            // its wall-clock belongs to a different node count.
            let (base_id, fresh_id) = (identity_of(baseline), identity_of(fresh));
            if let (Some(b), Some(f)) = (&base_id, &fresh_id) {
                if b != f {
                    report
                        .skipped
                        .push(format!("{path}: identity {b} vs {f} (different cells)"));
                    return;
                }
            }
            for (key, base_v) in base_members {
                match fresh.get(key) {
                    Some(fresh_v) => {
                        compare_field(&format!("{path}.{key}"), key, base_v, fresh_v, cfg, report)
                    }
                    None => report.skipped.push(format!("{path}.{key} (baseline only)")),
                }
            }
        }
        (Json::Arr(base_items), Json::Arr(fresh_items)) => {
            let keyed = base_items.iter().all(|v| identity_of(v).is_some())
                && fresh_items.iter().all(|v| identity_of(v).is_some());
            if keyed {
                for base_v in base_items {
                    let id = identity_of(base_v).expect("checked above");
                    match fresh_items
                        .iter()
                        .find(|f| identity_of(f).as_ref() == Some(&id))
                    {
                        Some(fresh_v) => {
                            compare(&format!("{path}[{id}]"), base_v, fresh_v, cfg, report)
                        }
                        None => report.skipped.push(format!("{path}[{id}] (baseline only)")),
                    }
                }
            } else {
                for (i, (b, f)) in base_items.iter().zip(fresh_items.iter()).enumerate() {
                    compare(&format!("{path}[{i}]"), b, f, cfg, report);
                }
                if base_items.len() != fresh_items.len() {
                    report.skipped.push(format!(
                        "{path}: length {} vs {}",
                        base_items.len(),
                        fresh_items.len()
                    ));
                }
            }
        }
        _ => {}
    }
}

/// Allowed sim-vs-live drift per soak scenario — the band the divergence
/// gate holds a `BENCH_SOAK.json` artifact to.
///
/// Delivery and completeness are gated **symmetrically**: live falling
/// below the sim prediction means the runtime is dropping deliveries, and
/// live sitting far *above* it means the fault shim is not applying the
/// adversity the simulator modelled — both are divergence. Latency is
/// gated one-sided as a ratio: the sim's testbed latency model and the
/// live interconnect are different clocks, so live being much faster than
/// the model is expected (loopback), but live p50 exceeding sim p50 by
/// more than the ratio means the runtime is stalling.
#[derive(Debug, Clone, Copy)]
pub struct DivergenceBand {
    /// Max absolute drift of live survivor delivery rate vs sim delivery.
    pub delivery_abs: f64,
    /// Max absolute drift of live survivor completeness vs sim
    /// completeness (wider: one node missing one message zeroes its
    /// contribution, so the metric is intrinsically coarser).
    pub completeness_abs: f64,
    /// Max live-p50 / sim-p50 latency ratio (one-sided; faster is fine).
    pub latency_ratio: f64,
}

impl Default for DivergenceBand {
    fn default() -> Self {
        DivergenceBand {
            delivery_abs: 0.05,
            completeness_abs: 0.15,
            latency_ratio: 25.0,
        }
    }
}

impl DivergenceBand {
    /// Reads overrides from `BRISA_DIV_DELIVERY_ABS`,
    /// `BRISA_DIV_COMPLETENESS_ABS` and `BRISA_DIV_LATENCY_RATIO`, keeping
    /// the defaults for anything unset or unparsable.
    pub fn from_env() -> Self {
        fn env_f64(key: &str, default: f64) -> f64 {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse::<f64>().ok())
                .unwrap_or(default)
        }
        let d = DivergenceBand::default();
        DivergenceBand {
            delivery_abs: env_f64("BRISA_DIV_DELIVERY_ABS", d.delivery_abs),
            completeness_abs: env_f64("BRISA_DIV_COMPLETENESS_ABS", d.completeness_abs),
            latency_ratio: env_f64("BRISA_DIV_LATENCY_RATIO", d.latency_ratio),
        }
    }
}

/// Pulls a required numeric field out of a soak scenario cell, recording a
/// violation when it is missing — a soak artifact losing one of its gated
/// numbers must fail loudly, not gate an empty set.
fn require_num(
    cell: &Json,
    block: Option<&str>,
    key: &str,
    name: &str,
    report: &mut GateReport,
) -> Option<f64> {
    let holder = match block {
        Some(b) => cell.get(b),
        None => Some(cell),
    };
    let v = holder.and_then(|h| h.get(key)).and_then(Json::as_num);
    if v.is_none() {
        let where_ = block.map(|b| format!("{b}.")).unwrap_or_default();
        report
            .violations
            .push(format!("{name}: missing numeric field {where_}{key}"));
    }
    v
}

/// Gates a `BENCH_SOAK.json` artifact: every scenario's online invariant
/// sweeps must be clean and its live metrics must sit inside `band` around
/// the sim prediction recorded next to them. Appends to `report`.
pub fn divergence_check(artifact: &Json, band: &DivergenceBand, report: &mut GateReport) {
    match artifact.get("schema") {
        Some(Json::Str(s)) if s.starts_with("brisa-bench-soak/") => {}
        other => {
            report.violations.push(format!(
                "artifact is not a soak artifact (schema {other:?})"
            ));
            return;
        }
    }
    let scenarios = match artifact.get("scenarios") {
        Some(Json::Arr(items)) if !items.is_empty() => items,
        _ => {
            report
                .violations
                .push("artifact has no scenarios to gate".to_string());
            return;
        }
    };
    for cell in scenarios {
        let name = match cell.get("scenario") {
            Some(Json::Str(s)) => s.clone(),
            _ => {
                report
                    .violations
                    .push("scenario cell without a scenario name".to_string());
                continue;
            }
        };
        if let Some(v) = require_num(cell, None, "invariant_violations", &name, report) {
            report.checks += 1;
            if v != 0.0 {
                report.violations.push(format!(
                    "{name}: {v:.0} online invariant violations during the soak"
                ));
            }
        }
        let live_delivery =
            require_num(cell, Some("live"), "survivor_delivery_rate", &name, report);
        let sim_delivery = require_num(cell, Some("sim"), "delivery_rate", &name, report);
        if let (Some(live), Some(sim)) = (live_delivery, sim_delivery) {
            report.checks += 1;
            if (live - sim).abs() > band.delivery_abs {
                report.violations.push(format!(
                    "{name}: live survivor delivery {live:.4} diverges from sim {sim:.4} \
                     by more than {:.4}",
                    band.delivery_abs
                ));
            }
        }
        let live_comp = require_num(cell, Some("live"), "survivor_completeness", &name, report);
        let sim_comp = require_num(cell, Some("sim"), "completeness", &name, report);
        if let (Some(live), Some(sim)) = (live_comp, sim_comp) {
            report.checks += 1;
            if (live - sim).abs() > band.completeness_abs {
                report.violations.push(format!(
                    "{name}: live survivor completeness {live:.4} diverges from sim {sim:.4} \
                     by more than {:.4}",
                    band.completeness_abs
                ));
            }
        }
        let live_p50 = require_num(cell, Some("live"), "latency_p50_ms", &name, report);
        let sim_p50 = require_num(cell, Some("sim"), "latency_p50_ms", &name, report);
        if let (Some(live), Some(sim)) = (live_p50, sim_p50) {
            report.checks += 1;
            if sim > 0.0 && live > sim * band.latency_ratio {
                report.violations.push(format!(
                    "{name}: live p50 latency {live:.2}ms exceeds {:.0}x the sim \
                     prediction {sim:.2}ms",
                    band.latency_ratio
                ));
            }
        }
    }
}

fn compare_field(
    path: &str,
    key: &str,
    baseline: &Json,
    fresh: &Json,
    cfg: &GateConfig,
    report: &mut GateReport,
) {
    if let (Some(base), Some(new)) = (baseline.as_num(), fresh.as_num()) {
        if WALL_KEYS.contains(&key) {
            if base < cfg.min_wall_secs {
                report
                    .skipped
                    .push(format!("{path}: baseline {base:.3}s below the noise floor"));
                return;
            }
            report.checks += 1;
            let limit = base * (1.0 + cfg.wall_tolerance);
            if new > limit {
                report.violations.push(format!(
                    "{path}: wall-clock {new:.3}s exceeds baseline {base:.3}s by more than {:.0}%",
                    cfg.wall_tolerance * 100.0
                ));
            }
        } else if DELIVERY_KEYS.contains(&key) {
            report.checks += 1;
            if new < base - cfg.delivery_epsilon {
                report.violations.push(format!(
                    "{path}: delivery {new:.6} dropped below baseline {base:.6}"
                ));
            }
        }
        return;
    }
    compare(path, baseline, fresh, cfg, report);
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
      "schema": "x/v1", "ok": true, "none": null,
      "rows": [
        {"scenario": "a", "nodes": 100, "wall_secs": 1.0, "delivery_rate": 1.0},
        {"scenario": "b", "nodes": 100, "wall_secs": 2.0, "delivery_rate": 0.99}
      ],
      "acceptance": {"loss_1pct_delivery": 1.0}
    }"#;

    #[test]
    fn parses_artifacts() {
        let v = parse(SAMPLE).unwrap();
        assert_eq!(v.get("schema"), Some(&Json::Str("x/v1".into())));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("none"), Some(&Json::Null));
        let rows = match v.get("rows") {
            Some(Json::Arr(items)) => items,
            other => panic!("{other:?}"),
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("wall_secs").unwrap().as_num(), Some(1.0));
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert_eq!(
            parse("[1, -2.5e1]").unwrap(),
            Json::Arr(vec![Json::Num(1.0), Json::Num(-25.0)])
        );
        assert_eq!(parse(r#""a\nb\"c""#).unwrap(), Json::Str("a\nb\"c".into()));
    }

    fn gate(baseline: &str, fresh: &str) -> GateReport {
        let mut report = GateReport::default();
        compare(
            "t",
            &parse(baseline).unwrap(),
            &parse(fresh).unwrap(),
            &GateConfig::default(),
            &mut report,
        );
        report
    }

    #[test]
    fn identical_artifacts_pass() {
        let r = gate(SAMPLE, SAMPLE);
        assert!(r.passed(), "{}", r.render());
        // 2 wall + 2 delivery + 1 acceptance.
        assert_eq!(r.checks, 5);
    }

    #[test]
    fn wall_clock_regression_fails_beyond_tolerance() {
        let fresh = SAMPLE.replace(r#""wall_secs": 1.0"#, r#""wall_secs": 1.15"#);
        assert!(gate(SAMPLE, &fresh).passed(), "+15% is inside the 20% band");
        let fresh = SAMPLE.replace(r#""wall_secs": 1.0"#, r#""wall_secs": 1.3"#);
        let r = gate(SAMPLE, &fresh);
        assert!(!r.passed());
        assert!(r.violations[0].contains("wall-clock"), "{}", r.render());
    }

    #[test]
    fn any_delivery_drop_fails() {
        let fresh = SAMPLE.replace(r#""delivery_rate": 0.99"#, r#""delivery_rate": 0.989"#);
        let r = gate(SAMPLE, &fresh);
        assert!(!r.passed());
        assert!(r.violations[0].contains("delivery"));
        // Improvements pass.
        let fresh = SAMPLE.replace(r#""delivery_rate": 0.99"#, r#""delivery_rate": 1.0"#);
        assert!(gate(SAMPLE, &fresh).passed());
    }

    #[test]
    fn rows_match_by_identity_not_index() {
        // Fresh artifact has the rows reversed plus an extra row; the "a"
        // row regressed its wall-clock.
        let fresh = r#"{
          "rows": [
            {"scenario": "c", "nodes": 900, "wall_secs": 9.0, "delivery_rate": 0.5},
            {"scenario": "b", "nodes": 100, "wall_secs": 2.0, "delivery_rate": 0.99},
            {"scenario": "a", "nodes": 100, "wall_secs": 5.0, "delivery_rate": 1.0}
          ],
          "acceptance": {"loss_1pct_delivery": 1.0}
        }"#;
        let r = gate(SAMPLE, fresh);
        assert_eq!(r.violations.len(), 1, "{}", r.render());
        assert!(r.violations[0].contains("[scenario=a;nodes=100;]"));
        // The baseline-only fields are reported, not failed.
        assert!(r.skipped.iter().any(|s| s.contains("schema")));
    }

    #[test]
    fn smoke_rows_gate_against_full_baseline() {
        // Baseline has a 100k row the smoke artifact does not produce.
        let baseline = r#"{"rows": [
          {"scenario": "a", "nodes": 10000, "wall_secs": 4.0, "delivery_rate": 1.0},
          {"scenario": "a", "nodes": 100000, "wall_secs": 60.0, "delivery_rate": 1.0}
        ]}"#;
        let fresh = r#"{"rows": [
          {"scenario": "a", "nodes": 10000, "wall_secs": 4.1, "delivery_rate": 1.0}
        ]}"#;
        let r = gate(baseline, fresh);
        assert!(r.passed(), "{}", r.render());
        assert!(r.skipped.iter().any(|s| s.contains("nodes=100000")));
    }

    #[test]
    fn acceptance_blocks_of_different_rows_are_not_gated() {
        // A full-run artifact anchors its acceptance to the 100k row; the
        // committed smoke baseline anchors to 10k. Wildly different
        // wall-clock, but not a regression — different cells.
        let baseline =
            r#"{"acceptance": {"no_fault_nodes": 10000, "delivery_rate": 1.0, "wall_secs": 3.2}}"#;
        let fresh = r#"{"acceptance": {"no_fault_nodes": 100000, "delivery_rate": 1.0, "wall_secs": 76.0}}"#;
        let r = gate(baseline, fresh);
        assert!(r.passed(), "{}", r.render());
        assert!(r.skipped.iter().any(|s| s.contains("different cells")));
        // Same row: gated as usual.
        let fresh_same =
            r#"{"acceptance": {"no_fault_nodes": 10000, "delivery_rate": 0.9, "wall_secs": 3.2}}"#;
        assert!(!gate(baseline, fresh_same).passed());
    }

    #[test]
    fn sub_second_wall_cells_are_noise_not_gate() {
        let baseline =
            r#"{"rows": [{"scenario": "a", "nodes": 10, "wall_secs": 0.4, "delivery_rate": 1.0}]}"#;
        let fresh =
            r#"{"rows": [{"scenario": "a", "nodes": 10, "wall_secs": 0.9, "delivery_rate": 1.0}]}"#;
        let r = gate(baseline, fresh);
        assert!(r.passed(), "{}", r.render());
        assert!(r.skipped.iter().any(|s| s.contains("noise floor")));
    }

    #[test]
    fn env_tolerance_override() {
        let cfg = GateConfig::default();
        assert!((cfg.wall_tolerance - 0.20).abs() < 1e-12);
        assert!((GateConfig::from_env().wall_tolerance - 0.20).abs() < 1e-12);
    }

    /// A healthy two-scenario soak artifact: live tracks sim closely, no
    /// invariant violations.
    const SOAK: &str = r#"{
      "schema": "brisa-bench-soak/v1",
      "scenarios": [
        {"scenario": "steady_loss_1pct", "nodes": 16, "invariant_violations": 0,
         "live": {"survivor_delivery_rate": 0.998, "survivor_completeness": 0.95,
                  "latency_p50_ms": 4.0},
         "sim": {"delivery_rate": 1.0, "completeness": 1.0, "latency_p50_ms": 60.0}},
        {"scenario": "kill_restart", "nodes": 16, "invariant_violations": 0,
         "live": {"survivor_delivery_rate": 1.0, "survivor_completeness": 1.0,
                  "latency_p50_ms": 3.5},
         "sim": {"delivery_rate": 1.0, "completeness": 1.0, "latency_p50_ms": 55.0}}
      ]
    }"#;

    fn divergence(artifact: &str, band: &DivergenceBand) -> GateReport {
        let mut report = GateReport::default();
        divergence_check(&parse(artifact).unwrap(), band, &mut report);
        report
    }

    #[test]
    fn healthy_soak_passes_the_divergence_gate() {
        let r = divergence(SOAK, &DivergenceBand::default());
        assert!(r.passed(), "{}", r.render());
        // 2 scenarios x (invariants + delivery + completeness + latency).
        assert_eq!(r.checks, 8);
    }

    #[test]
    fn dropped_delivery_trace_fails_the_gate() {
        // Live survivor delivery collapsed while sim predicts full delivery
        // — the exact signature of the runtime dropping messages.
        let broken = SOAK.replace(
            r#""survivor_delivery_rate": 0.998"#,
            r#""survivor_delivery_rate": 0.80"#,
        );
        let r = divergence(&broken, &DivergenceBand::default());
        assert!(!r.passed());
        assert!(
            r.violations[0].contains("diverges from sim"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn deliberately_broken_band_fails_even_a_healthy_trace() {
        // Zero-width delivery band: the healthy artifact's 0.002 drift must
        // now trip the gate — proof the band is actually load-bearing.
        let band = DivergenceBand {
            delivery_abs: 0.0,
            ..DivergenceBand::default()
        };
        let r = divergence(SOAK, &band);
        assert!(!r.passed(), "{}", r.render());
    }

    #[test]
    fn live_exceeding_sim_prediction_is_also_divergence() {
        // Sim predicts partition damage; live sailed through untouched —
        // the fault shim is not applying the modelled adversity.
        let inert_shim = SOAK.replace(r#""delivery_rate": 1.0"#, r#""delivery_rate": 0.85"#);
        let r = divergence(&inert_shim, &DivergenceBand::default());
        assert!(!r.passed(), "{}", r.render());
    }

    #[test]
    fn invariant_violations_fail_the_gate() {
        let broken = SOAK.replacen(
            r#""invariant_violations": 0"#,
            r#""invariant_violations": 3"#,
            1,
        );
        let r = divergence(&broken, &DivergenceBand::default());
        assert!(!r.passed());
        assert!(r.violations[0].contains("invariant"), "{}", r.render());
    }

    #[test]
    fn stalled_live_latency_fails_the_gate() {
        let stalled = SOAK.replace(r#""latency_p50_ms": 4.0"#, r#""latency_p50_ms": 2000.0"#);
        let r = divergence(&stalled, &DivergenceBand::default());
        assert!(!r.passed());
        assert!(r.violations[0].contains("latency"), "{}", r.render());
    }

    #[test]
    fn missing_gated_fields_fail_loudly() {
        let gutted = SOAK.replace(r#""survivor_delivery_rate": 0.998, "#, "");
        let r = divergence(&gutted, &DivergenceBand::default());
        assert!(!r.passed());
        assert!(r.violations[0].contains("missing"), "{}", r.render());

        let r = divergence(r#"{"schema": "x/v1"}"#, &DivergenceBand::default());
        assert!(!r.passed());
        let r = divergence(
            r#"{"schema": "brisa-bench-soak/v1", "scenarios": []}"#,
            &DivergenceBand::default(),
        );
        assert!(!r.passed());
    }
}
