//! Analysis of emerged dissemination structures.
//!
//! Given the parent links reported by every node, this module computes the
//! structural properties the paper studies: per-node depth (Figure 6, the
//! *maximum* distance from the source), per-node degree (Figure 7, the
//! number of children) and a Graphviz DOT rendering of sample trees
//! (Figure 8).
//!
//! Node identifiers are plain `u32` values so this crate stays free of
//! simulator dependencies.

use std::collections::{HashMap, HashSet, VecDeque};

/// A snapshot of the emerged structure: for every node, its parents.
#[derive(Debug, Clone, Default)]
pub struct StructureSnapshot {
    /// `node -> parents` (one parent per node for trees, possibly several
    /// for DAGs).
    pub parents: HashMap<u32, Vec<u32>>,
    /// The stream source (root).
    pub source: u32,
}

impl StructureSnapshot {
    /// Creates a snapshot rooted at `source`.
    pub fn new(source: u32) -> Self {
        StructureSnapshot {
            parents: HashMap::new(),
            source,
        }
    }

    /// Records the parent set of `node`.
    pub fn set_parents(&mut self, node: u32, parents: Vec<u32>) {
        self.parents.insert(node, parents);
    }

    /// All nodes known to the snapshot (sources and nodes with parents).
    pub fn nodes(&self) -> Vec<u32> {
        let mut all: HashSet<u32> = self.parents.keys().copied().collect();
        all.insert(self.source);
        for ps in self.parents.values() {
            all.extend(ps.iter().copied());
        }
        let mut v: Vec<u32> = all.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// `node -> children` derived from the parent links.
    pub fn children_map(&self) -> HashMap<u32, Vec<u32>> {
        let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
        for (&node, parents) in &self.parents {
            for &p in parents {
                map.entry(p).or_default().push(node);
            }
        }
        for v in map.values_mut() {
            v.sort_unstable();
        }
        map
    }

    /// Out-degree (number of children) of every node, including zero-degree
    /// leaves. This is the distribution of Figure 7.
    pub fn degrees(&self) -> HashMap<u32, usize> {
        let children = self.children_map();
        self.nodes()
            .into_iter()
            .map(|n| (n, children.get(&n).map(|c| c.len()).unwrap_or(0)))
            .collect()
    }

    /// Depth of every node: the *longest* path from the source following
    /// child links, matching the paper's definition for DAGs ("depth
    /// measures the maximum distance, i.e. the longest path from the root to
    /// the node"). Nodes unreachable from the source are absent from the
    /// result.
    pub fn depths(&self) -> HashMap<u32, usize> {
        let children = self.children_map();
        let mut depth: HashMap<u32, usize> = HashMap::new();
        depth.insert(self.source, 0);
        // Longest-path computation by relaxation over a BFS-like frontier.
        // The structure is expected to be acyclic; a visit bound protects
        // against pathological snapshots.
        let mut queue: VecDeque<u32> = VecDeque::new();
        queue.push_back(self.source);
        let bound = self
            .nodes()
            .len()
            .saturating_mul(self.nodes().len())
            .max(16);
        let mut visits = 0usize;
        while let Some(cur) = queue.pop_front() {
            visits += 1;
            if visits > bound {
                break;
            }
            let d = depth[&cur];
            if let Some(kids) = children.get(&cur) {
                for &k in kids {
                    let nd = d + 1;
                    let better = depth.get(&k).map(|&old| nd > old).unwrap_or(true);
                    if better && nd <= self.nodes().len() {
                        depth.insert(k, nd);
                        queue.push_back(k);
                    }
                }
            }
        }
        depth
    }

    /// True if every node in the snapshot is reachable from the source.
    pub fn is_complete(&self) -> bool {
        let depths = self.depths();
        self.nodes().iter().all(|n| depths.contains_key(n))
    }

    /// True if following parent links never revisits a node (acyclicity).
    pub fn is_acyclic(&self) -> bool {
        // Kahn-style check over the child graph.
        let children = self.children_map();
        let nodes = self.nodes();
        let mut indegree: HashMap<u32, usize> = nodes.iter().map(|&n| (n, 0)).collect();
        for kids in children.values() {
            for &k in kids {
                *indegree.entry(k).or_insert(0) += 1;
            }
        }
        let mut queue: VecDeque<u32> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut seen = 0;
        while let Some(cur) = queue.pop_front() {
            seen += 1;
            if let Some(kids) = children.get(&cur) {
                for &k in kids {
                    let d = indegree.get_mut(&k).expect("child node is known");
                    *d -= 1;
                    if *d == 0 {
                        queue.push_back(k);
                    }
                }
            }
        }
        seen == nodes.len()
    }

    /// Renders the structure as a Graphviz DOT digraph (Figure 8).
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("digraph {name} {{\n"));
        out.push_str("  rankdir=TB;\n  node [shape=circle, fontsize=10];\n");
        out.push_str(&format!(
            "  n{} [style=filled, fillcolor=lightblue];\n",
            self.source
        ));
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (&node, parents) in &self.parents {
            for &p in parents {
                edges.push((p, node));
            }
        }
        edges.sort_unstable();
        for (from, to) in edges {
            out.push_str(&format!("  n{from} -> n{to};\n"));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -> 1 -> 3, 0 -> 2, and 3 also has parent 2 (a small DAG).
    fn sample_dag() -> StructureSnapshot {
        let mut s = StructureSnapshot::new(0);
        s.set_parents(1, vec![0]);
        s.set_parents(2, vec![0]);
        s.set_parents(3, vec![1, 2]);
        s
    }

    #[test]
    fn degrees_and_children() {
        let s = sample_dag();
        let deg = s.degrees();
        assert_eq!(deg[&0], 2);
        assert_eq!(deg[&1], 1);
        assert_eq!(deg[&2], 1);
        assert_eq!(deg[&3], 0);
        let children = s.children_map();
        assert_eq!(children[&0], vec![1, 2]);
    }

    #[test]
    fn depths_use_longest_path() {
        let s = sample_dag();
        let d = s.depths();
        assert_eq!(d[&0], 0);
        assert_eq!(d[&1], 1);
        assert_eq!(d[&2], 1);
        assert_eq!(d[&3], 2);
        // Deepen one branch: 0 -> 1 -> 4 -> 3 makes 3's longest path 3.
        let mut s2 = sample_dag();
        s2.set_parents(4, vec![1]);
        s2.set_parents(3, vec![4, 2]);
        assert_eq!(s2.depths()[&3], 3);
    }

    #[test]
    fn completeness_and_acyclicity() {
        let s = sample_dag();
        assert!(s.is_complete());
        assert!(s.is_acyclic());
        // Disconnected node: 9's parent 8 is not reachable from the source.
        let mut s2 = sample_dag();
        s2.set_parents(9, vec![8]);
        assert!(!s2.is_complete());
        assert!(s2.is_acyclic());
        // Cycle 5 <-> 6.
        let mut s3 = StructureSnapshot::new(0);
        s3.set_parents(5, vec![6]);
        s3.set_parents(6, vec![5]);
        assert!(!s3.is_acyclic());
    }

    #[test]
    fn dot_output_contains_all_edges() {
        let s = sample_dag();
        let dot = s.to_dot("sample");
        assert!(dot.starts_with("digraph sample {"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n1 -> n3;"));
        assert!(dot.contains("n2 -> n3;"));
        assert!(dot.contains("lightblue"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn nodes_includes_parents_not_listed_as_keys() {
        let mut s = StructureSnapshot::new(0);
        s.set_parents(2, vec![7]);
        assert_eq!(s.nodes(), vec![0, 2, 7]);
    }
}
