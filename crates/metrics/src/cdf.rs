//! Empirical cumulative distribution functions.
//!
//! The paper reports most of its results as CDFs over nodes (Figures 2, 6,
//! 7, 9, 13, 14). [`Cdf`] collects samples and produces the `(value, %)`
//! series those plots show.

/// An empirical CDF built from a set of samples.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// Creates an empty CDF.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a CDF from an iterator of samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut c = Cdf::new();
        for s in iter {
            c.add(s);
        }
        c
    }

    /// Adds one sample.
    pub fn add(&mut self, sample: f64) {
        self.samples.push(sample);
        self.sorted = false;
    }

    /// Number of samples collected.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.sorted = true;
        }
    }

    /// Fraction of samples that are `<= x`, in `[0, 1]`.
    pub fn fraction_at(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let count = self.samples.partition_point(|&s| s <= x);
        count as f64 / self.samples.len() as f64
    }

    /// Percentage (0–100) of samples that are `<= x`.
    pub fn percent_at(&mut self, x: f64) -> f64 {
        self.fraction_at(x) * 100.0
    }

    /// The value below which `q` (0–1) of the samples fall.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        self.samples[idx]
    }

    /// Smallest and largest samples.
    pub fn range(&mut self) -> Option<(f64, f64)> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        Some((self.samples[0], *self.samples.last().unwrap()))
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Produces the `(value, cumulative %)` series for plotting, evaluated at
    /// every distinct sample value.
    pub fn series(&mut self) -> Vec<(f64, f64)> {
        if self.samples.is_empty() {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &v) in self.samples.iter().enumerate() {
            let pct = (i + 1) as f64 / n * 100.0;
            match out.last_mut() {
                Some(last) if (last.0 - v).abs() < f64::EPSILON => last.1 = pct,
                _ => out.push((v, pct)),
            }
        }
        out
    }

    /// Produces the `(value, cumulative %)` series sampled at `points`
    /// equally spaced values across the sample range. Convenient for
    /// printing fixed-width tables.
    pub fn series_at(&mut self, points: usize) -> Vec<(f64, f64)> {
        let Some((lo, hi)) = self.range() else {
            return Vec::new();
        };
        let points = points.max(2);
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                let pct = self.percent_at(x);
                (x, pct)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_quantiles() {
        let mut c = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert!((c.fraction_at(2.0) - 0.5).abs() < 1e-9);
        assert!((c.fraction_at(0.5) - 0.0).abs() < 1e-9);
        assert!((c.fraction_at(10.0) - 1.0).abs() < 1e-9);
        assert!((c.percent_at(3.0) - 75.0).abs() < 1e-9);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 4.0);
        assert_eq!(c.quantile(0.5), 3.0);
        assert_eq!(c.range(), Some((1.0, 4.0)));
        assert!((c.mean() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn empty_cdf_is_safe() {
        let mut c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.fraction_at(1.0), 0.0);
        assert_eq!(c.quantile(0.5), 0.0);
        assert_eq!(c.range(), None);
        assert_eq!(c.mean(), 0.0);
        assert!(c.series().is_empty());
        assert!(c.series_at(5).is_empty());
    }

    #[test]
    fn series_collapses_duplicates() {
        let mut c = Cdf::from_samples([1.0, 1.0, 2.0, 2.0, 2.0]);
        let s = c.series();
        assert_eq!(s.len(), 2);
        assert!((s[0].1 - 40.0).abs() < 1e-9);
        assert!((s[1].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn series_at_covers_range() {
        let mut c = Cdf::from_samples((0..=10).map(|i| i as f64));
        let s = c.series_at(11);
        assert_eq!(s.len(), 11);
        assert!((s[0].0 - 0.0).abs() < 1e-9);
        assert!((s[10].0 - 10.0).abs() < 1e-9);
        assert!((s[10].1 - 100.0).abs() < 1e-9);
        // Monotone non-decreasing.
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }
}
