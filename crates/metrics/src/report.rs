//! Plain-text rendering of experiment results.
//!
//! The bench binaries print the same rows and series the paper reports;
//! these helpers keep that output aligned and uniform.

use crate::cdf::Cdf;
use crate::percentile::PercentileSummary;

/// Renders a fixed-width table: a header row followed by data rows.
/// Column widths adapt to the widest cell.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&sep, &widths));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a CDF as a two-column `value  cumulative-%` listing with at most
/// `max_points` rows (the paper's CDF plots, in text form).
pub fn render_cdf(label: &str, cdf: &mut Cdf, max_points: usize) -> String {
    let mut out = format!("# CDF: {label} ({} samples)\n", cdf.len());
    let series = cdf.series();
    let step = (series.len() / max_points.max(1)).max(1);
    let rows: Vec<Vec<String>> = series
        .iter()
        .step_by(step)
        .chain(
            series
                .last()
                .into_iter()
                .filter(|_| series.len() > 1 && step > 1),
        )
        .map(|(v, p)| vec![format!("{v:.3}"), format!("{p:.1}")])
        .collect();
    out.push_str(&render_table(&["value", "% <= value"], &rows));
    out
}

/// Renders a percentile summary as a single table row cell set, matching the
/// stacked-bar figures of the paper.
pub fn percentile_row(label: &str, s: &PercentileSummary) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{:.2}", s.p5),
        format!("{:.2}", s.p25),
        format!("{:.2}", s.p50),
        format!("{:.2}", s.p75),
        format!("{:.2}", s.p90),
        format!("{:.2}", s.mean),
    ]
}

/// Header matching [`percentile_row`].
pub fn percentile_headers(metric: &str) -> Vec<String> {
    vec![
        metric.to_string(),
        "p5".to_string(),
        "p25".to_string(),
        "p50".to_string(),
        "p75".to_string(),
        "p90".to_string(),
        "mean".to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["long-name".to_string(), "22".to_string()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("long-name"));
        // The value column starts at the same offset on every row.
        let col = lines[3].find("22").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    fn cdf_rendering_has_header_and_rows() {
        let mut c = Cdf::from_samples((0..100).map(|i| i as f64));
        let r = render_cdf("latency", &mut c, 10);
        assert!(r.contains("# CDF: latency (100 samples)"));
        assert!(r.lines().count() >= 10);
    }

    #[test]
    fn percentile_row_matches_headers() {
        let s = PercentileSummary::from_samples([1.0, 2.0, 3.0]);
        let row = percentile_row("tree", &s);
        let headers = percentile_headers("config");
        assert_eq!(row.len(), headers.len());
        assert_eq!(row[0], "tree");
    }
}
