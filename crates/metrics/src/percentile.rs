//! Percentile summaries.
//!
//! Figures 10 and 11 of the paper show bandwidth usage as stacked percentile
//! bars (5th, 25th, 50th, 75th, 90th). [`PercentileSummary`] computes those
//! values from a set of per-node samples.

use serde::{Deserialize, Serialize};

/// The percentile levels used by the paper's bandwidth figures.
pub const PAPER_PERCENTILES: [f64; 5] = [5.0, 25.0, 50.0, 75.0, 90.0];

/// A five-point percentile summary of a sample set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PercentileSummary {
    /// 5th percentile.
    pub p5: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Arithmetic mean (reported alongside the bars in Figure 12).
    pub mean: f64,
    /// Number of samples summarised.
    pub count: usize,
}

/// Computes the `p`-th percentile (0–100) of `sorted` samples using nearest
/// rank interpolation. `sorted` must be sorted ascending.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = (p / 100.0) * (sorted.len() as f64 - 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

impl PercentileSummary {
    /// Summarises a set of samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut v: Vec<f64> = iter.into_iter().collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mean = if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        };
        PercentileSummary {
            p5: percentile_of_sorted(&v, 5.0),
            p25: percentile_of_sorted(&v, 25.0),
            p50: percentile_of_sorted(&v, 50.0),
            p75: percentile_of_sorted(&v, 75.0),
            p90: percentile_of_sorted(&v, 90.0),
            mean,
            count: v.len(),
        }
    }

    /// The five paper percentiles as `(level, value)` pairs, low to high.
    pub fn levels(&self) -> [(f64, f64); 5] {
        [
            (5.0, self.p5),
            (25.0, self.p25),
            (50.0, self.p50),
            (75.0, self.p75),
            (90.0, self.p90),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_uniform_ramp() {
        let s = PercentileSummary::from_samples((0..=100).map(|i| i as f64));
        assert!((s.p5 - 5.0).abs() < 1e-9);
        assert!((s.p50 - 50.0).abs() < 1e-9);
        assert!((s.p90 - 90.0).abs() < 1e-9);
        assert!((s.mean - 50.0).abs() < 1e-9);
        assert_eq!(s.count, 101);
        let levels = s.levels();
        assert_eq!(levels[0].0, 5.0);
        assert!(levels.windows(2).all(|w| w[1].1 >= w[0].1));
    }

    #[test]
    fn empty_and_single_sample() {
        let e = PercentileSummary::from_samples(std::iter::empty());
        assert_eq!(e.count, 0);
        assert_eq!(e.p50, 0.0);
        let one = PercentileSummary::from_samples([7.5]);
        assert_eq!(one.p5, 7.5);
        assert_eq!(one.p90, 7.5);
        assert_eq!(one.mean, 7.5);
    }

    #[test]
    fn interpolation_between_ranks() {
        let sorted = [0.0, 10.0];
        assert!((percentile_of_sorted(&sorted, 50.0) - 5.0).abs() < 1e-9);
        assert!((percentile_of_sorted(&sorted, 25.0) - 2.5).abs() < 1e-9);
        assert_eq!(percentile_of_sorted(&[], 50.0), 0.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = PercentileSummary::from_samples([9.0, 1.0, 5.0, 3.0, 7.0]);
        assert_eq!(s.p50, 5.0);
    }
}
