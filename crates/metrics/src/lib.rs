//! # brisa-metrics — measurement utilities for the BRISA reproduction
//!
//! Small, dependency-free analysis helpers used by the experiment harness
//! and the figure/table regeneration binaries:
//!
//! * [`Cdf`] — empirical CDFs (Figures 2, 6, 7, 9, 13, 14);
//! * [`LatencyHistogram`] — mergeable fixed-footprint log-bucket latency
//!   histograms for scale-mode streaming results;
//! * [`PercentileSummary`] — the 5/25/50/75/90th percentile bars of the
//!   bandwidth figures (Figures 10–12);
//! * [`StructureSnapshot`] — depth/degree analysis and DOT rendering of the
//!   emerged dissemination structures (Figures 6–8);
//! * [`report`] — plain-text rendering of tables and series.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cdf;
pub mod hist;
pub mod percentile;
pub mod report;
pub mod structure;

pub use cdf::Cdf;
pub use hist::{LatencyHistogram, LATENCY_BUCKETS};
pub use percentile::{percentile_of_sorted, PercentileSummary, PAPER_PERCENTILES};
pub use structure::StructureSnapshot;
