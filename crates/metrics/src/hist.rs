//! Mergeable fixed-footprint latency histograms.
//!
//! The classic result path materialises every `(sequence, delivery time)`
//! pair per node and computes latency statistics afterwards — exact, but
//! O(nodes × messages) memory. Scale-mode runs instead stream every
//! observed latency into a [`LatencyHistogram`]: 64 logarithmic buckets of
//! microseconds, a count, a sum and a maximum. Histograms merge by bucket
//! addition, so per-node histograms fold into one run-wide distribution in
//! O(64) per node regardless of message count, and two runs of the same
//! schedule produce bit-identical histograms (bucketing is integer-exact;
//! no floats are involved until a quantile is read out).

/// Number of logarithmic buckets. Bucket `i > 0` covers latencies in
/// `[2^(i-1), 2^i)` microseconds; bucket 0 covers `[0, 1)` (i.e. zero).
/// 63 doublings of 1 µs exceed any representable simulated latency, so the
/// top bucket is a catch-all that cannot overflow in practice.
pub const LATENCY_BUCKETS: usize = 64;

/// A fixed-size, mergeable histogram of latencies in microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

/// Bucket index for a latency of `us` microseconds.
fn bucket_of(us: u64) -> usize {
    ((64 - us.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency observation of `us` microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.buckets[bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact arithmetic mean in milliseconds (the sum is kept exactly; only
    /// the bucket positions are approximate).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64 / 1000.0
        }
    }

    /// Largest recorded observation in milliseconds (exact).
    pub fn max_ms(&self) -> f64 {
        self.max_us as f64 / 1000.0
    }

    /// Approximate `q`-quantile (`0.0..=1.0`) in milliseconds: the upper
    /// edge of the bucket containing the `q`-th observation. The relative
    /// error is bounded by the bucket width (a factor of two).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // Upper bucket edge: 2^i µs (bucket 0 holds exact zeros).
                let upper_us = if i == 0 { 0u64 } else { 1u64 << i };
                return (upper_us.min(self.max_us)) as f64 / 1000.0;
            }
        }
        self.max_ms()
    }

    /// The raw bucket counts (bucket `i > 0` covers `[2^(i-1), 2^i)` µs).
    pub fn buckets(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }

    /// Bytes of memory one histogram occupies (it is entirely inline).
    pub const fn approx_bytes() -> usize {
        std::mem::size_of::<LatencyHistogram>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn record_count_mean_max() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        for us in [100, 200, 300, 1000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean_ms() - 0.4).abs() < 1e-9);
        assert!((h.max_ms() - 1.0).abs() < 1e-9);
        assert!(!h.is_empty());
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_us(10);
        a.record_us(5000);
        b.record_us(10);
        b.record_us(70);
        let mut direct = LatencyHistogram::new();
        for us in [10, 5000, 10, 70] {
            direct.record_us(us);
        }
        a.merge(&b);
        assert_eq!(a, direct);
        assert_eq!(a.count(), 4);
    }

    #[test]
    fn quantiles_are_bucket_upper_edges() {
        let mut h = LatencyHistogram::new();
        // 100 observations of ~1 ms (bucket [512, 1024) µs → upper edge 1024).
        for _ in 0..100 {
            h.record_us(1000);
        }
        let p50 = h.quantile_ms(0.5);
        // Upper edge is min(2^i, max) = 1000 µs here.
        assert!((p50 - 1.0).abs() < 1e-9, "p50 = {p50}");
        assert_eq!(h.quantile_ms(0.0), h.quantile_ms(1.0));
        // Empty histogram is safe.
        assert_eq!(LatencyHistogram::new().quantile_ms(0.5), 0.0);
        assert_eq!(LatencyHistogram::new().mean_ms(), 0.0);
    }

    #[test]
    fn quantile_spans_buckets() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record_us(100); // bucket upper edge 128
        }
        for _ in 0..10 {
            h.record_us(60_000); // bucket upper edge 65536
        }
        assert!((h.quantile_ms(0.5) - 0.128).abs() < 1e-9);
        assert!((h.quantile_ms(0.99) - 60.0).abs() < 1e-9, "capped at max");
    }

    #[test]
    fn determinism_same_inputs_same_histogram() {
        let build = || {
            let mut h = LatencyHistogram::new();
            for us in (0..1000).map(|i| i * 37 % 10_000) {
                h.record_us(us);
            }
            h
        };
        assert_eq!(build(), build());
    }
}
