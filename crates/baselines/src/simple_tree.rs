//! SimpleTree: a centrally-constructed random tree.
//!
//! The efficiency end of the design spectrum (Section III-D): a centralized
//! coordinator assigns every joining node a parent picked uniformly at
//! random among previously joined nodes, which trivially avoids cycles.
//! Dissemination pushes messages down the tree links immediately, which
//! minimises latency. The protocol has no provision for failures or churn.

use crate::common::DeliveryStats;
use brisa_simnet::{Context, NodeId, Protocol, TimerTag, WireSize};
use rand::Rng;
use std::collections::BTreeSet;

/// Messages of the SimpleTree protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeMsg {
    /// Sent by a joining node to the coordinator.
    JoinRequest,
    /// Coordinator's answer: attach to `parent`.
    AssignParent {
        /// The assigned parent.
        parent: NodeId,
    },
    /// Sent by a new node to its assigned parent.
    AttachChild,
    /// A stream message pushed down the tree.
    Data {
        /// Sequence number.
        seq: u64,
        /// Payload size in bytes.
        payload_bytes: usize,
    },
}

impl WireSize for TreeMsg {
    fn wire_size(&self) -> usize {
        match self {
            TreeMsg::JoinRequest => 8,
            TreeMsg::AssignParent { .. } => 8 + NodeId::WIRE_SIZE,
            TreeMsg::AttachChild => 8,
            TreeMsg::Data { payload_bytes, .. } => 16 + payload_bytes,
        }
    }
}

/// A node of the SimpleTree baseline. The coordinator (and tree root /
/// stream source) is the node created without a coordinator reference.
pub struct SimpleTreeNode {
    /// Coordinator to contact when joining; `None` if this node *is* the
    /// coordinator.
    coordinator: Option<NodeId>,
    /// Registry of joined nodes (coordinator only).
    registry: Vec<NodeId>,
    parent: Option<NodeId>,
    children: BTreeSet<NodeId>,
    stats: DeliveryStats,
    next_seq: u64,
}

impl SimpleTreeNode {
    /// Creates a node. Pass `None` for the coordinator/root node.
    pub fn new(coordinator: Option<NodeId>) -> Self {
        SimpleTreeNode {
            coordinator,
            registry: Vec::new(),
            parent: None,
            children: BTreeSet::new(),
            stats: DeliveryStats::default(),
            next_seq: 0,
        }
    }

    /// Delivery statistics.
    pub fn stats(&self) -> &DeliveryStats {
        &self.stats
    }

    /// The node's parent in the tree, if assigned.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// The node's children.
    pub fn children(&self) -> Vec<NodeId> {
        self.children.iter().copied().collect()
    }

    /// Publishes the next stream message (root only) by pushing it to every
    /// child.
    pub fn publish(&mut self, ctx: &mut Context<'_, TreeMsg>, payload_bytes: usize) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.record(seq, ctx.now());
        for &c in &self.children {
            ctx.send(c, TreeMsg::Data { seq, payload_bytes });
        }
    }
}

impl Protocol for SimpleTreeNode {
    type Message = TreeMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, TreeMsg>) {
        if let Some(coord) = self.coordinator {
            ctx.send(coord, TreeMsg::JoinRequest);
        } else {
            // The coordinator registers itself as the first possible parent.
            self.registry.push(ctx.id());
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, TreeMsg>, from: NodeId, msg: TreeMsg) {
        match msg {
            TreeMsg::JoinRequest => {
                // Coordinator: pick a random previously joined node as parent.
                let idx = ctx.rng().gen_range(0..self.registry.len().max(1));
                let parent = *self.registry.get(idx).unwrap_or(&ctx.id());
                self.registry.push(from);
                ctx.send(from, TreeMsg::AssignParent { parent });
            }
            TreeMsg::AssignParent { parent } => {
                self.parent = Some(parent);
                if parent == ctx.id() {
                    return;
                }
                ctx.send(parent, TreeMsg::AttachChild);
            }
            TreeMsg::AttachChild => {
                self.children.insert(from);
            }
            TreeMsg::Data { seq, payload_bytes } => {
                if self.stats.record(seq, ctx.now()) {
                    for &c in &self.children {
                        if c != from {
                            ctx.send(c, TreeMsg::Data { seq, payload_bytes });
                        }
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, TreeMsg>, _tag: TimerTag) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisa_simnet::latency::ClusterLatency;
    use brisa_simnet::{Network, NetworkConfig, SimDuration, SimTime};

    #[test]
    fn centralized_tree_disseminates_without_duplicates() {
        let mut net: Network<SimpleTreeNode> = Network::new(
            NetworkConfig::default(),
            Box::new(ClusterLatency::default()),
        );
        let root = net.add_node(|_| SimpleTreeNode::new(None));
        let mut ids = vec![root];
        for i in 1..50u64 {
            ids.push(net.add_node_at(SimTime::from_millis(5 * i), move |_| {
                SimpleTreeNode::new(Some(root))
            }));
        }
        net.run_until(SimTime::from_secs(5));
        for _ in 0..10 {
            net.invoke(root, |n, ctx| n.publish(ctx, 1024));
            net.run_for(SimDuration::from_millis(200));
        }
        net.run_for(SimDuration::from_secs(2));
        for &id in &ids {
            let s = net.node(id).unwrap().stats();
            assert_eq!(s.delivered, 10, "node {id} delivered everything");
            assert_eq!(s.duplicates, 0, "a tree never produces duplicates");
        }
        // Every non-root node has a parent; the root is everyone's ancestor.
        for &id in ids.iter().skip(1) {
            assert!(net.node(id).unwrap().parent().is_some());
        }
    }
}
