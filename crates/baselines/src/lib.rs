//! # brisa-baselines — comparison protocols from the BRISA evaluation
//!
//! The protocols BRISA is compared against in Section III-D of the paper,
//! each implemented as a full simulator stack:
//!
//! * [`flood`] — plain flooding over HyParView (the duplicate-heavy baseline
//!   of Figure 2 and the `flood` series of Figure 9);
//! * [`simple_gossip`] — Cyclon + push rumor mongering + anti-entropy pull
//!   (the robustness end of the spectrum);
//! * [`simple_tree`] — a centrally constructed random tree with push
//!   dissemination (the efficiency end of the spectrum);
//! * [`tag`] — TAG, the tree-assisted gossip hybrid with a join-time-sorted
//!   linked list and pull-based dissemination.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod common;
pub mod flood;
pub mod simple_gossip;
pub mod simple_tree;
pub mod tag;

pub use common::DeliveryStats;
pub use flood::{FloodMsg, FloodNode};
pub use simple_gossip::{GossipConfig, GossipMsg, SimpleGossipNode};
pub use simple_tree::{SimpleTreeNode, TreeMsg};
pub use tag::{TagConfig, TagMsg, TagNode, TagStats};
