//! TAG: tree-assisted gossip (Liu & Zhou, 2006).
//!
//! The hybrid baseline the paper compares BRISA against (Section III-D).
//! Nodes are organised in a linked list sorted by join time, with pointers
//! to predecessors and successors up to two hops away. A joining node
//! traverses the list backwards — one connection round-trip per hop — until
//! it finds a suitable parent, and picks `k` random peers met during the
//! traversal as its gossip overlay. Dissemination is *pull based*: nodes
//! periodically pull missing messages from their parent and pre-fetch from
//! gossip partners, which adds round-trips (and therefore latency) compared
//! to BRISA's push.
//!
//! Upon a parent failure the node walks the list again to find a
//! replacement; when the list itself is broken at the node's position (its
//! predecessor failed too) the repair is classified as *hard* and starts
//! from a farther live pointer, which is what Figure 14 measures.

use crate::common::DeliveryStats;
use brisa_simnet::{Context, NodeId, Protocol, SimDuration, SimTime, TimerTag, WireSize};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Timer for the periodic pull.
const TIMER_PULL: u16 = 1;

/// Configuration of the TAG baseline.
#[derive(Debug, Clone)]
pub struct TagConfig {
    /// Maximum children a node accepts before the traversal moves on.
    pub max_children: usize,
    /// Maximum number of hops a join/repair traversal walks backwards.
    pub traverse_hops: usize,
    /// Number of gossip partners picked during the traversal.
    pub gossip_peers: usize,
    /// Pull period (parent and gossip partners are polled at this rate).
    pub pull_period: SimDuration,
    /// Maximum messages returned by one pull reply.
    pub pull_batch: usize,
}

impl Default for TagConfig {
    fn default() -> Self {
        TagConfig {
            max_children: 4,
            traverse_hops: 6,
            gossip_peers: 2,
            pull_period: SimDuration::from_millis(400),
            pull_batch: 64,
        }
    }
}

/// Messages of the TAG protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum TagMsg {
    /// A joining node announces itself to the current list tail.
    JoinReq,
    /// The tail accepts the joiner and tells it its list predecessors.
    JoinAck {
        /// The joiner's new 1-hop predecessor (the sender).
        prev1: NodeId,
        /// The joiner's new 2-hop predecessor.
        prev2: Option<NodeId>,
    },
    /// Informs a node that a new tail joined two hops after it.
    UpdateNext2 {
        /// The new 2-hop successor.
        next2: NodeId,
    },
    /// Traversal probe: "could you be my parent?".
    Probe,
    /// Probe answer with the information the traversal needs.
    ProbeReply {
        /// The replier's own predecessor (the next traversal hop).
        prev: Option<NodeId>,
        /// How many children the replier currently serves.
        children: usize,
    },
    /// Attach to the receiver as a child.
    Attach,
    /// Attach accepted.
    AttachAck,
    /// Establish a gossip partnership.
    PeerLink,
    /// Pull request: "send me what I am missing above this sequence number".
    Pull {
        /// Highest contiguous sequence number the requester holds.
        have_max: Option<u64>,
    },
    /// Pull answer.
    PullData {
        /// `(seq, payload_bytes)` pairs.
        messages: Vec<(u64, usize)>,
    },
}

impl WireSize for TagMsg {
    fn wire_size(&self) -> usize {
        match self {
            TagMsg::JoinReq
            | TagMsg::Probe
            | TagMsg::Attach
            | TagMsg::AttachAck
            | TagMsg::PeerLink => 8,
            TagMsg::JoinAck { .. } => 8 + 2 * NodeId::WIRE_SIZE,
            TagMsg::UpdateNext2 { .. } => 8 + NodeId::WIRE_SIZE,
            TagMsg::ProbeReply { .. } => 8 + NodeId::WIRE_SIZE + 4,
            TagMsg::Pull { .. } => 16,
            TagMsg::PullData { messages } => {
                8 + messages.iter().map(|(_, p)| 16 + p).sum::<usize>()
            }
        }
    }
}

/// Statistics specific to the TAG baseline (beyond plain delivery counts).
#[derive(Debug, Clone, Default)]
pub struct TagStats {
    /// Time the node started joining.
    pub join_started: Option<SimTime>,
    /// Time the node settled its position (parent attached).
    pub settled_at: Option<SimTime>,
    /// Completed parent recoveries classified as soft (list intact).
    pub soft_repairs: u64,
    /// Completed parent recoveries classified as hard (list broken at this
    /// node's position).
    pub hard_repairs: u64,
    /// Recovery delays (microseconds) for soft repairs.
    pub soft_repair_delays_us: Vec<u64>,
    /// Recovery delays (microseconds) for hard repairs.
    pub hard_repair_delays_us: Vec<u64>,
    /// Number of traversal probes sent (join + repairs).
    pub probes_sent: u64,
}

impl TagStats {
    /// Construction time: from join start to the settled position.
    pub fn construction_time(&self) -> Option<SimDuration> {
        match (self.join_started, self.settled_at) {
            (Some(a), Some(b)) if b >= a => Some(b - a),
            _ => None,
        }
    }
}

/// What an ongoing traversal is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraversalGoal {
    Join,
    Repair { hard: bool, started: SimTime },
}

/// A node running the TAG protocol.
pub struct TagNode {
    cfg: TagConfig,
    /// The node to contact when joining (the most recently joined node);
    /// `None` for the first node, which is also the stream source.
    contact: Option<NodeId>,
    prev1: Option<NodeId>,
    prev2: Option<NodeId>,
    next1: Option<NodeId>,
    next2: Option<NodeId>,
    parent: Option<NodeId>,
    children: BTreeSet<NodeId>,
    gossip: BTreeSet<NodeId>,
    store: BTreeMap<u64, usize>,
    delivery: DeliveryStats,
    stats: TagStats,
    next_seq: u64,
    /// Ongoing traversal: remaining hops, best candidate so far and goal.
    traversal: Option<(usize, Vec<NodeId>, TraversalGoal)>,
}

impl TagNode {
    /// Creates a node. `contact` must be the previously joined node so the
    /// list stays sorted by join time (`None` for the first node).
    pub fn new(cfg: TagConfig, contact: Option<NodeId>) -> Self {
        TagNode {
            cfg,
            contact,
            prev1: None,
            prev2: None,
            next1: None,
            next2: None,
            parent: None,
            children: BTreeSet::new(),
            gossip: BTreeSet::new(),
            store: BTreeMap::new(),
            delivery: DeliveryStats::default(),
            stats: TagStats::default(),
            next_seq: 0,
            traversal: None,
        }
    }

    /// Delivery statistics.
    pub fn stats(&self) -> &DeliveryStats {
        &self.delivery
    }

    /// TAG-specific statistics (construction time, repairs).
    pub fn tag_stats(&self) -> &TagStats {
        &self.stats
    }

    /// The node's parent, if attached.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// The node's children.
    pub fn children(&self) -> Vec<NodeId> {
        self.children.iter().copied().collect()
    }

    /// Publishes the next stream message (source only). TAG is pull-based:
    /// the message is stored locally and propagates when children and gossip
    /// partners pull.
    pub fn publish(&mut self, ctx: &mut Context<'_, TagMsg>, payload_bytes: usize) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.delivery.record(seq, ctx.now());
        self.store.insert(seq, payload_bytes);
    }

    fn highest_contiguous(&self) -> Option<u64> {
        let mut expected = 0u64;
        for &seq in self.store.keys() {
            if seq == expected {
                expected += 1;
            } else {
                break;
            }
        }
        expected.checked_sub(1)
    }

    fn start_traversal(
        &mut self,
        ctx: &mut Context<'_, TagMsg>,
        from: NodeId,
        goal: TraversalGoal,
    ) {
        self.traversal = Some((self.cfg.traverse_hops, Vec::new(), goal));
        self.stats.probes_sent += 1;
        ctx.send(from, TagMsg::Probe);
    }

    fn finish_attach(&mut self, ctx: &mut Context<'_, TagMsg>, parent: NodeId) {
        self.parent = Some(parent);
        ctx.open_connection(parent);
        ctx.send(parent, TagMsg::Attach);
    }
}

impl Protocol for TagNode {
    type Message = TagMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, TagMsg>) {
        let period = self.cfg.pull_period;
        let off = SimDuration::from_micros(ctx.rng().gen_range(0..period.as_micros().max(1)));
        ctx.set_timer(off, TimerTag::of_kind(TIMER_PULL));
        match self.contact {
            None => {
                // First node: root of the tree and head of the list.
                self.stats.join_started = Some(ctx.now());
                self.stats.settled_at = Some(ctx.now());
            }
            Some(contact) => {
                self.stats.join_started = Some(ctx.now());
                ctx.open_connection(contact);
                ctx.send(contact, TagMsg::JoinReq);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, TagMsg>, from: NodeId, msg: TagMsg) {
        match msg {
            TagMsg::JoinReq => {
                // We are the current tail: the joiner becomes our successor.
                self.next1 = Some(from);
                ctx.open_connection(from);
                if let Some(prev) = self.prev1 {
                    ctx.send(prev, TagMsg::UpdateNext2 { next2: from });
                }
                ctx.send(
                    from,
                    TagMsg::JoinAck {
                        prev1: ctx.id(),
                        prev2: self.prev1,
                    },
                );
            }
            TagMsg::JoinAck { prev1, prev2 } => {
                self.prev1 = Some(prev1);
                self.prev2 = prev2;
                // Traverse the list backwards to find a parent, starting at
                // our predecessor.
                self.start_traversal(ctx, prev1, TraversalGoal::Join);
            }
            TagMsg::UpdateNext2 { next2 } => {
                self.next2 = Some(next2);
            }
            TagMsg::Probe => {
                let reply = TagMsg::ProbeReply {
                    prev: self.prev1,
                    children: self.children.len(),
                };
                ctx.send(from, reply);
            }
            TagMsg::ProbeReply { prev, children } => {
                let Some((hops_left, mut met, goal)) = self.traversal.take() else {
                    return;
                };
                met.push(from);
                let suitable = children < self.cfg.max_children;
                let next_hop = prev
                    .filter(|&p| p != ctx.id())
                    .filter(|_| !suitable && hops_left > 0);
                if let Some(next) = next_hop {
                    self.stats.probes_sent += 1;
                    self.traversal = Some((hops_left - 1, met, goal));
                    ctx.send(next, TagMsg::Probe);
                } else {
                    // Settle here: attach to the best node met (the current
                    // one if suitable, otherwise the least loaded we saw —
                    // we only have the last one's counter, so take it).
                    let parent = from;
                    self.finish_attach(ctx, parent);
                    // Pick gossip partners among the nodes met.
                    let mut pool: Vec<NodeId> = met.into_iter().filter(|&n| n != parent).collect();
                    pool.shuffle(ctx.rng());
                    for p in pool.into_iter().take(self.cfg.gossip_peers) {
                        self.gossip.insert(p);
                        ctx.open_connection(p);
                        ctx.send(p, TagMsg::PeerLink);
                    }
                    self.traversal = Some((0, Vec::new(), goal));
                }
            }
            TagMsg::Attach => {
                self.children.insert(from);
                ctx.open_connection(from);
                ctx.send(from, TagMsg::AttachAck);
            }
            TagMsg::AttachAck => {
                if self.parent != Some(from) {
                    return;
                }
                if let Some((_, _, goal)) = self.traversal.take() {
                    match goal {
                        TraversalGoal::Join => {
                            if self.stats.settled_at.is_none() {
                                self.stats.settled_at = Some(ctx.now());
                            }
                        }
                        TraversalGoal::Repair { hard, started } => {
                            let delay = ctx.now().saturating_since(started).as_micros();
                            if hard {
                                self.stats.hard_repairs += 1;
                                self.stats.hard_repair_delays_us.push(delay);
                            } else {
                                self.stats.soft_repairs += 1;
                                self.stats.soft_repair_delays_us.push(delay);
                            }
                        }
                    }
                }
                // Catch up immediately rather than waiting for the next pull.
                ctx.send(
                    from,
                    TagMsg::Pull {
                        have_max: self.highest_contiguous(),
                    },
                );
            }
            TagMsg::PeerLink => {
                self.gossip.insert(from);
                ctx.open_connection(from);
            }
            TagMsg::Pull { have_max } => {
                let start = have_max.map_or(0, |h| h + 1);
                let messages: Vec<(u64, usize)> = self
                    .store
                    .range(start..)
                    .take(self.cfg.pull_batch)
                    .map(|(&s, &p)| (s, p))
                    .collect();
                if !messages.is_empty() {
                    ctx.send(from, TagMsg::PullData { messages });
                }
            }
            TagMsg::PullData { messages } => {
                for (seq, payload) in messages {
                    if self.delivery.record(seq, ctx.now()) {
                        self.store.insert(seq, payload);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TagMsg>, tag: TimerTag) {
        if tag.kind != TIMER_PULL {
            return;
        }
        let have = self.highest_contiguous();
        if let Some(parent) = self.parent {
            ctx.send(parent, TagMsg::Pull { have_max: have });
        }
        // Pre-fetch from one gossip partner as well.
        let partners: Vec<NodeId> = self.gossip.iter().copied().collect();
        if let Some(&peer) = partners.as_slice().choose(ctx.rng()) {
            ctx.send(peer, TagMsg::Pull { have_max: have });
        }
        ctx.set_timer(self.cfg.pull_period, TimerTag::of_kind(TIMER_PULL));
    }

    fn on_link_down(&mut self, ctx: &mut Context<'_, TagMsg>, peer: NodeId) {
        self.children.remove(&peer);
        self.gossip.remove(&peer);
        let was_parent = self.parent == Some(peer);
        let list_broken = self.prev1 == Some(peer);
        if self.prev1 == Some(peer) {
            self.prev1 = self.prev2.take();
        }
        if self.prev2 == Some(peer) {
            self.prev2 = None;
        }
        if self.next1 == Some(peer) {
            self.next1 = self.next2.take();
        }
        if self.next2 == Some(peer) {
            self.next2 = None;
        }
        if !was_parent {
            return;
        }
        self.parent = None;
        // Find a live entry point for the repair traversal: the list
        // predecessor if the list survived, otherwise a farther pointer or a
        // gossip partner (hard repair).
        let hard = list_broken;
        let entry = self
            .prev1
            .or(self.prev2)
            .or(self.next1)
            .or_else(|| self.gossip.iter().next().copied())
            .or_else(|| self.children.iter().next().copied());
        if let Some(entry) = entry {
            let goal = TraversalGoal::Repair {
                hard,
                started: ctx.now(),
            };
            self.start_traversal(ctx, entry, goal);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisa_simnet::latency::ClusterLatency;
    use brisa_simnet::{Network, NetworkConfig, SimTime};

    fn build(n: u32) -> (Network<TagNode>, Vec<NodeId>) {
        let mut net: Network<TagNode> = Network::new(
            NetworkConfig::default(),
            Box::new(ClusterLatency::default()),
        );
        let mut ids: Vec<NodeId> = Vec::new();
        for i in 0..n {
            let contact = ids.last().copied();
            let at = SimTime::from_millis(20 * i as u64);
            ids.push(net.add_node_at(at, move |_| TagNode::new(TagConfig::default(), contact)));
        }
        net.run_until(SimTime::from_secs(20));
        (net, ids)
    }

    #[test]
    fn tag_builds_a_tree_and_pull_disseminates() {
        let (mut net, ids) = build(40);
        // Every node settled and has a parent (except the root).
        for (i, &id) in ids.iter().enumerate() {
            let node = net.node(id).unwrap();
            assert!(node.tag_stats().settled_at.is_some(), "node {i} settled");
            if i > 0 {
                assert!(node.parent().is_some(), "node {i} attached to a parent");
            }
        }
        let source = ids[0];
        for _ in 0..5 {
            net.invoke(source, |n, ctx| n.publish(ctx, 512));
            net.run_for(SimDuration::from_millis(200));
        }
        // Pull-based dissemination needs several pull periods to drain.
        net.run_for(SimDuration::from_secs(30));
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(
                net.node(id).unwrap().stats().delivered,
                5,
                "node {i} delivered all"
            );
        }
    }

    #[test]
    fn parent_failure_triggers_repair_with_measured_delay() {
        let (mut net, ids) = build(30);
        let source = ids[0];
        for _ in 0..3 {
            net.invoke(source, |n, ctx| n.publish(ctx, 128));
            net.run_for(SimDuration::from_millis(200));
        }
        net.run_for(SimDuration::from_secs(10));
        // Crash a node that has children (not the source).
        let victim = ids
            .iter()
            .skip(1)
            .copied()
            .find(|&id| !net.node(id).unwrap().children().is_empty())
            .expect("some interior node exists");
        net.crash(victim);
        net.run_for(SimDuration::from_secs(20));
        let repaired: u64 = ids
            .iter()
            .filter(|&&id| id != victim)
            .map(|&id| {
                let s = net.node(id).unwrap().tag_stats();
                s.soft_repairs + s.hard_repairs
            })
            .sum();
        assert!(
            repaired >= 1,
            "orphaned children re-attach after the failure"
        );
        // The stream keeps flowing afterwards.
        for _ in 0..2 {
            net.invoke(source, |n, ctx| n.publish(ctx, 128));
            net.run_for(SimDuration::from_millis(200));
        }
        net.run_for(SimDuration::from_secs(30));
        for &id in ids.iter().filter(|&&id| id != victim) {
            let delivered = net.node(id).unwrap().stats().delivered;
            assert_eq!(delivered, 5, "node {id} caught up after the repair");
        }
    }
}
