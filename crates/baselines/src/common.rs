//! Shared building blocks for the baseline protocols.

use brisa_simnet::SimTime;
use std::collections::HashMap;

/// Delivery bookkeeping shared by every baseline dissemination protocol,
/// mirroring the subset of `brisa::BrisaStats` the comparison experiments
/// need (delivered counts, duplicates, per-message first delivery time).
#[derive(Debug, Clone, Default)]
pub struct DeliveryStats {
    /// Stream messages delivered to the application (first receptions).
    pub delivered: u64,
    /// Receptions of already-delivered messages.
    pub duplicates: u64,
    /// Per-sequence-number first reception time.
    pub first_delivery: HashMap<u64, SimTime>,
}

impl DeliveryStats {
    /// Records a reception of `seq` at `now`; returns true if it was the
    /// first one.
    pub fn record(&mut self, seq: u64, now: SimTime) -> bool {
        if let std::collections::hash_map::Entry::Vacant(e) = self.first_delivery.entry(seq) {
            e.insert(now);
            self.delivered += 1;
            true
        } else {
            self.duplicates += 1;
            false
        }
    }

    /// Time of the first and last delivery, if any.
    pub fn delivery_span(&self) -> Option<(SimTime, SimTime)> {
        let min = self.first_delivery.values().min()?;
        let max = self.first_delivery.values().max()?;
        Some((*min, *max))
    }

    /// Average duplicates per delivered message.
    pub fn duplicates_per_message(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.duplicates as f64 / self.delivered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_firsts_and_duplicates() {
        let mut s = DeliveryStats::default();
        assert!(s.record(1, SimTime::from_millis(10)));
        assert!(!s.record(1, SimTime::from_millis(12)));
        assert!(s.record(2, SimTime::from_millis(20)));
        assert_eq!(s.delivered, 2);
        assert_eq!(s.duplicates, 1);
        assert!((s.duplicates_per_message() - 0.5).abs() < 1e-9);
        let (a, b) = s.delivery_span().unwrap();
        assert_eq!(a, SimTime::from_millis(10));
        assert_eq!(b, SimTime::from_millis(20));
    }

    #[test]
    fn empty_stats() {
        let s = DeliveryStats::default();
        assert!(s.delivery_span().is_none());
        assert_eq!(s.duplicates_per_message(), 0.0);
    }
}
