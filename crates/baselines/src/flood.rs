//! Flooding over HyParView.
//!
//! The simplest dissemination strategy on top of the PSS: a node receiving a
//! message for the first time relays it to every active-view neighbor except
//! the sender. Completeness follows from the connectivity and
//! bidirectionality of the HyParView overlay (Section II-A); the price is
//! the duplicate distribution of Figure 2, which grows with the view size.
//!
//! BRISA uses exactly this mechanism for the bootstrap flood of the first
//! stream message and as the fallback during hard repairs; here it is also a
//! standalone baseline (the `flood` series of Figure 9).

use crate::common::DeliveryStats;
use brisa_membership::{HpvMsg, HpvOut, HyParView, HyParViewConfig};
use brisa_simnet::{Context, NodeId, Protocol, SimDuration, TimerTag, WireSize};
use rand::Rng;
use std::collections::BTreeSet;

/// Timer for the periodic HyParView shuffle.
const TIMER_SHUFFLE: u16 = 1;
/// Timer for the periodic HyParView keep-alives.
const TIMER_KEEPALIVE: u16 = 2;

/// Messages of the flooding stack.
#[derive(Debug, Clone, PartialEq)]
pub enum FloodMsg {
    /// Membership traffic.
    Hpv(HpvMsg),
    /// A flooded stream message.
    Data {
        /// Sequence number.
        seq: u64,
        /// Payload size in bytes.
        payload_bytes: usize,
    },
}

impl WireSize for FloodMsg {
    fn wire_size(&self) -> usize {
        match self {
            FloodMsg::Hpv(m) => m.wire_size(),
            FloodMsg::Data { payload_bytes, .. } => 16 + payload_bytes,
        }
    }
}

/// A node running HyParView + flooding.
pub struct FloodNode {
    hpv: HyParView,
    contact: Option<NodeId>,
    neighbors: BTreeSet<NodeId>,
    stats: DeliveryStats,
    next_seq: u64,
}

impl FloodNode {
    /// Creates a node joining through `contact` (`None` for the first node).
    pub fn new(id: NodeId, hpv_cfg: HyParViewConfig, contact: Option<NodeId>) -> Self {
        FloodNode {
            hpv: HyParView::new(id, hpv_cfg),
            contact,
            neighbors: BTreeSet::new(),
            stats: DeliveryStats::default(),
            next_seq: 0,
        }
    }

    /// Delivery statistics.
    pub fn stats(&self) -> &DeliveryStats {
        &self.stats
    }

    /// The membership layer.
    pub fn hyparview(&self) -> &HyParView {
        &self.hpv
    }

    /// Publishes the next stream message from this node (the source).
    pub fn publish(&mut self, ctx: &mut Context<'_, FloodMsg>, payload_bytes: usize) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.record(seq, ctx.now());
        for &peer in &self.neighbors {
            ctx.send(peer, FloodMsg::Data { seq, payload_bytes });
        }
    }

    fn apply_hpv(&mut self, ctx: &mut Context<'_, FloodMsg>, outs: Vec<HpvOut>) {
        for out in outs {
            match out {
                HpvOut::Send { to, msg } => ctx.send(to, FloodMsg::Hpv(msg)),
                HpvOut::OpenConnection(p) => ctx.open_connection(p),
                HpvOut::CloseConnection(p) => ctx.close_connection(p),
                HpvOut::NeighborUp(p) => {
                    self.neighbors.insert(p);
                }
                HpvOut::NeighborDown(p) => {
                    self.neighbors.remove(&p);
                }
            }
        }
    }
}

impl Protocol for FloodNode {
    type Message = FloodMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, FloodMsg>) {
        if let Some(contact) = self.contact {
            let outs = self.hpv.join(ctx.now(), contact);
            self.apply_hpv(ctx, outs);
        }
        let shuffle = self.hpv.config().shuffle_period;
        let keepalive = self.hpv.config().keepalive_period;
        let off1 = SimDuration::from_micros(ctx.rng().gen_range(0..shuffle.as_micros().max(1)));
        let off2 = SimDuration::from_micros(ctx.rng().gen_range(0..keepalive.as_micros().max(1)));
        ctx.set_timer(off1, TimerTag::of_kind(TIMER_SHUFFLE));
        ctx.set_timer(off2, TimerTag::of_kind(TIMER_KEEPALIVE));
    }

    fn on_message(&mut self, ctx: &mut Context<'_, FloodMsg>, from: NodeId, msg: FloodMsg) {
        match msg {
            FloodMsg::Hpv(m) => {
                let now = ctx.now();
                let outs = self.hpv.handle(now, from, m, ctx.rng());
                self.apply_hpv(ctx, outs);
            }
            FloodMsg::Data { seq, payload_bytes } => {
                if self.stats.record(seq, ctx.now()) {
                    for &peer in &self.neighbors {
                        if peer != from {
                            ctx.send(peer, FloodMsg::Data { seq, payload_bytes });
                        }
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, FloodMsg>, tag: TimerTag) {
        match tag.kind {
            TIMER_SHUFFLE => {
                let outs = self.hpv.shuffle_tick(ctx.rng());
                self.apply_hpv(ctx, outs);
                let p = self.hpv.config().shuffle_period;
                ctx.set_timer(p, TimerTag::of_kind(TIMER_SHUFFLE));
            }
            TIMER_KEEPALIVE => {
                let outs = self.hpv.keepalive_tick(ctx.now());
                self.apply_hpv(ctx, outs);
                let p = self.hpv.config().keepalive_period;
                ctx.set_timer(p, TimerTag::of_kind(TIMER_KEEPALIVE));
            }
            _ => {}
        }
    }

    fn on_link_down(&mut self, ctx: &mut Context<'_, FloodMsg>, peer: NodeId) {
        let now = ctx.now();
        let outs = self.hpv.link_down(now, peer, ctx.rng());
        self.apply_hpv(ctx, outs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisa_simnet::latency::ClusterLatency;
    use brisa_simnet::{Network, NetworkConfig, SimTime};

    fn build(n: u32, view: usize) -> (Network<FloodNode>, Vec<NodeId>) {
        let mut net: Network<FloodNode> = Network::new(
            NetworkConfig {
                seed: 7,
                ..Default::default()
            },
            Box::new(ClusterLatency::default()),
        );
        let cfg = HyParViewConfig::with_active_size(view);
        let mut ids = Vec::new();
        let first =
            net.add_node(|id| FloodNode::new(id, HyParViewConfig::with_active_size(view), None));
        ids.push(first);
        for i in 1..n {
            let cfg = cfg.clone();
            ids.push(
                net.add_node_at(SimTime::from_millis(5 * i as u64), move |id| {
                    FloodNode::new(id, cfg, Some(first))
                }),
            );
        }
        net.run_until(SimTime::from_secs(20));
        (net, ids)
    }

    #[test]
    fn flooding_reaches_every_node() {
        let (mut net, ids) = build(40, 4);
        let source = ids[0];
        for _ in 0..5 {
            net.invoke(source, |n, ctx| n.publish(ctx, 512));
            net.run_for(SimDuration::from_millis(300));
        }
        net.run_for(SimDuration::from_secs(5));
        for &id in &ids {
            assert_eq!(net.node(id).unwrap().stats().delivered, 5, "node {id}");
        }
    }

    #[test]
    fn larger_views_cause_more_duplicates() {
        let dup_for = |view: usize| {
            let (mut net, ids) = build(48, view);
            let source = ids[0];
            for _ in 0..5 {
                net.invoke(source, |n, ctx| n.publish(ctx, 128));
                net.run_for(SimDuration::from_millis(300));
            }
            net.run_for(SimDuration::from_secs(5));
            let total: f64 = ids
                .iter()
                .map(|&id| net.node(id).unwrap().stats().duplicates_per_message())
                .sum::<f64>()
                / ids.len() as f64;
            total
        };
        let small = dup_for(3);
        let large = dup_for(8);
        assert!(
            large > small,
            "duplicates grow with the view size (view 3: {small:.2}, view 8: {large:.2})"
        );
    }
}
