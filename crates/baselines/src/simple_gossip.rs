//! SimpleGossip: push rumor mongering plus anti-entropy over Cyclon.
//!
//! The robustness end of the design spectrum (Section III-D): messages are
//! pushed to `fanout ≈ ln(N)` random peers following an infect-and-die
//! strategy, and a periodic anti-entropy pull (at twice the message creation
//! rate) repairs any omissions. Cyclon provides the random peer samples and
//! performs no explicit failure detection.

use crate::common::DeliveryStats;
use brisa_membership::{Cyclon, CyclonConfig, CyclonMsg, CyclonOut};
use brisa_simnet::{Context, NodeId, Protocol, SimDuration, TimerTag, WireSize};
use rand::Rng;
use std::collections::BTreeMap;

/// Timer for the periodic Cyclon shuffle.
const TIMER_SHUFFLE: u16 = 1;
/// Timer for the periodic anti-entropy exchange.
const TIMER_ANTI_ENTROPY: u16 = 2;

/// Configuration of the SimpleGossip baseline.
#[derive(Debug, Clone)]
pub struct GossipConfig {
    /// Rumor-mongering fanout (the paper uses `ln(N)`).
    pub fanout: usize,
    /// Cyclon configuration.
    pub cyclon: CyclonConfig,
    /// Cyclon shuffle period.
    pub shuffle_period: SimDuration,
    /// Anti-entropy period (the paper uses half the message inter-arrival
    /// time, i.e. twice the creation rate).
    pub anti_entropy_period: SimDuration,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            fanout: 6,
            cyclon: CyclonConfig::default(),
            shuffle_period: SimDuration::from_secs(5),
            anti_entropy_period: SimDuration::from_millis(100),
        }
    }
}

impl GossipConfig {
    /// Sets the fanout to `ln(n)` rounded up, as in the paper.
    pub fn for_system_size(mut self, n: usize) -> Self {
        self.fanout = (n as f64).ln().ceil().max(1.0) as usize;
        self
    }
}

/// Messages of the SimpleGossip stack.
#[derive(Debug, Clone, PartialEq)]
pub enum GossipMsg {
    /// Cyclon membership traffic.
    Cyclon(CyclonMsg),
    /// A pushed rumor.
    Rumor {
        /// Sequence number.
        seq: u64,
        /// Payload size in bytes.
        payload_bytes: usize,
    },
    /// Anti-entropy digest: the sequence numbers the sender already has.
    Digest {
        /// Known sequence numbers (the stream is short enough for an
        /// explicit list; a production system would exchange ranges).
        known: Vec<u64>,
    },
    /// Anti-entropy response: messages the requester was missing.
    Missing {
        /// `(seq, payload_bytes)` pairs.
        messages: Vec<(u64, usize)>,
    },
}

impl WireSize for GossipMsg {
    fn wire_size(&self) -> usize {
        match self {
            GossipMsg::Cyclon(m) => m.wire_size(),
            GossipMsg::Rumor { payload_bytes, .. } => 16 + payload_bytes,
            GossipMsg::Digest { known } => 8 + known.len() * 8,
            GossipMsg::Missing { messages } => {
                8 + messages.iter().map(|(_, p)| 16 + p).sum::<usize>()
            }
        }
    }
}

/// A node running Cyclon + rumor mongering + anti-entropy.
pub struct SimpleGossipNode {
    cfg: GossipConfig,
    cyclon: Cyclon,
    seeds: Vec<NodeId>,
    /// Store of received messages (`seq -> payload size`), used both for
    /// delivery bookkeeping and to answer anti-entropy requests.
    store: BTreeMap<u64, usize>,
    stats: DeliveryStats,
    next_seq: u64,
}

impl SimpleGossipNode {
    /// Creates a node bootstrapped with the given Cyclon seeds.
    pub fn new(id: NodeId, cfg: GossipConfig, seeds: Vec<NodeId>) -> Self {
        SimpleGossipNode {
            cyclon: Cyclon::new(id, cfg.cyclon.clone()),
            cfg,
            seeds,
            store: BTreeMap::new(),
            stats: DeliveryStats::default(),
            next_seq: 0,
        }
    }

    /// Delivery statistics.
    pub fn stats(&self) -> &DeliveryStats {
        &self.stats
    }

    /// The Cyclon view.
    pub fn cyclon(&self) -> &Cyclon {
        &self.cyclon
    }

    /// Publishes the next stream message from this node (the source).
    pub fn publish(&mut self, ctx: &mut Context<'_, GossipMsg>, payload_bytes: usize) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.record(seq, ctx.now());
        self.store.insert(seq, payload_bytes);
        self.push_rumor(ctx, seq, payload_bytes, None);
    }

    fn push_rumor(
        &mut self,
        ctx: &mut Context<'_, GossipMsg>,
        seq: u64,
        payload_bytes: usize,
        exclude: Option<NodeId>,
    ) {
        let targets = self.cyclon.sample(ctx.rng(), self.cfg.fanout + 1);
        let mut sent = 0;
        for t in targets {
            if Some(t) == exclude || t == ctx.id() {
                continue;
            }
            if sent == self.cfg.fanout {
                break;
            }
            ctx.send(t, GossipMsg::Rumor { seq, payload_bytes });
            sent += 1;
        }
    }

    fn apply_cyclon(&mut self, ctx: &mut Context<'_, GossipMsg>, outs: Vec<CyclonOut>) {
        for CyclonOut::Send { to, msg } in outs {
            ctx.send(to, GossipMsg::Cyclon(msg));
        }
    }
}

impl Protocol for SimpleGossipNode {
    type Message = GossipMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, GossipMsg>) {
        let seeds = self.seeds.clone();
        self.cyclon.bootstrap(&seeds);
        let off1 = SimDuration::from_micros(
            ctx.rng()
                .gen_range(0..self.cfg.shuffle_period.as_micros().max(1)),
        );
        let off2 = SimDuration::from_micros(
            ctx.rng()
                .gen_range(0..self.cfg.anti_entropy_period.as_micros().max(1)),
        );
        ctx.set_timer(off1, TimerTag::of_kind(TIMER_SHUFFLE));
        ctx.set_timer(off2, TimerTag::of_kind(TIMER_ANTI_ENTROPY));
    }

    fn on_message(&mut self, ctx: &mut Context<'_, GossipMsg>, from: NodeId, msg: GossipMsg) {
        match msg {
            GossipMsg::Cyclon(m) => {
                let outs = self.cyclon.handle(from, m, ctx.rng());
                self.apply_cyclon(ctx, outs);
            }
            GossipMsg::Rumor { seq, payload_bytes } => {
                if self.stats.record(seq, ctx.now()) {
                    self.store.insert(seq, payload_bytes);
                    // Infect-and-die: forward only upon the first reception.
                    self.push_rumor(ctx, seq, payload_bytes, Some(from));
                }
            }
            GossipMsg::Digest { known } => {
                let missing: Vec<(u64, usize)> = self
                    .store
                    .iter()
                    .filter(|(seq, _)| !known.contains(seq))
                    .map(|(&seq, &p)| (seq, p))
                    .collect();
                if !missing.is_empty() {
                    ctx.send(from, GossipMsg::Missing { messages: missing });
                }
            }
            GossipMsg::Missing { messages } => {
                for (seq, payload_bytes) in messages {
                    if self.stats.record(seq, ctx.now()) {
                        self.store.insert(seq, payload_bytes);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, GossipMsg>, tag: TimerTag) {
        match tag.kind {
            TIMER_SHUFFLE => {
                let outs = self.cyclon.shuffle_tick(ctx.rng());
                self.apply_cyclon(ctx, outs);
                ctx.set_timer(self.cfg.shuffle_period, TimerTag::of_kind(TIMER_SHUFFLE));
            }
            TIMER_ANTI_ENTROPY => {
                if let Some(peer) = self.cyclon.sample(ctx.rng(), 1).first().copied() {
                    let known: Vec<u64> = self.store.keys().copied().collect();
                    ctx.send(peer, GossipMsg::Digest { known });
                }
                ctx.set_timer(
                    self.cfg.anti_entropy_period,
                    TimerTag::of_kind(TIMER_ANTI_ENTROPY),
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisa_simnet::latency::ClusterLatency;
    use brisa_simnet::{Network, NetworkConfig, SimTime};

    #[test]
    fn gossip_delivers_to_everyone_with_duplicates() {
        let n = 48u32;
        let mut net: Network<SimpleGossipNode> = Network::new(
            NetworkConfig::default(),
            Box::new(ClusterLatency::default()),
        );
        let cfg = GossipConfig::default().for_system_size(n as usize);
        let mut ids = Vec::new();
        for i in 0..n {
            let cfg = cfg.clone();
            // Ring-ish bootstrap seeds.
            let seeds: Vec<NodeId> = (1..=4).map(|k| NodeId((i + k) % n)).collect();
            ids.push(net.add_node(move |id| SimpleGossipNode::new(id, cfg, seeds)));
        }
        net.run_until(SimTime::from_secs(10));
        let source = ids[0];
        for _ in 0..5 {
            net.invoke(source, |node, ctx| node.publish(ctx, 256));
            net.run_for(SimDuration::from_millis(200));
        }
        net.run_for(SimDuration::from_secs(10));
        let mut complete = 0;
        let mut dups = 0u64;
        for &id in &ids {
            let s = net.node(id).unwrap().stats();
            if s.delivered == 5 {
                complete += 1;
            }
            dups += s.duplicates;
        }
        assert_eq!(complete, n as usize, "anti-entropy guarantees completeness");
        assert!(dups > 0, "rumor mongering necessarily produces duplicates");
    }
}
