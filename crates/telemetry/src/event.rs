//! Structured flight-recorder events.
//!
//! Every event is a fixed-size record: a timestamp in microseconds (the
//! simulator's clock or the live cluster's wall clock since its epoch —
//! the two are directly comparable by construction), the node it concerns,
//! a [`EventKind`] discriminant and two kind-specific operands. Keeping
//! the record flat and `Copy` makes recording a memcpy under a short
//! mutex hold and lets the ring buffers hold tens of thousands of events
//! in a few hundred kilobytes.

/// What happened. The taxonomy covers every layer the recorder is wired
/// through: transport links and dials, fault windows, BRISA tree
/// transitions and loss recovery, membership maintenance, invariant
/// sweeps, and the reactor's own loop health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An outbound link came up (`a` = peer).
    LinkUp,
    /// A link went down / surfaced as a failure (`a` = peer).
    LinkDown,
    /// The idle sweep reaped an unmonitored link (`a` = peer).
    LinkReap,
    /// A dial was requested (`a` = peer).
    Dial,
    /// A dial attempt failed (`a` = peer, `b` = attempts so far).
    DialFailed,
    /// A scheduled re-dial fired after backoff (`a` = peer).
    Redial,
    /// A partition window was installed (`a` = start µs, `b` = end µs).
    PartitionApply,
    /// A partition window healed (`a` = heal instant µs).
    PartitionHeal,
    /// The stochastic link-fault profile switched on.
    FaultsEnabled,
    /// A delivery gap was detected (`a` = first missing seq, `b` = count).
    GapDetected,
    /// A Retransmit request was sent (`a` = target, `b` = seq).
    RetransmitSent,
    /// A buffered message was re-served to a requester (`a` = requester,
    /// `b` = seq).
    RetransmitServed,
    /// An Edge advertisement was sent (`a` = peer).
    EdgeAdvertised,
    /// A feeder was adopted as a tree parent (`a` = parent, `b` = parent
    /// count after).
    Adopt,
    /// A redundant feeder was deactivated (`a` = peer).
    Deactivate,
    /// The node lost its last active parent (`a` = lost parent).
    Orphan,
    /// An orphaned node regained a parent (`a` = parent, `b` = orphan
    /// duration µs).
    OrphanHealed,
    /// An online invariant sweep completed (`a` = reports checked,
    /// `b` = violations found so far).
    InvariantSweep,
    /// One reactor worker loop iteration (`a` = iteration latency µs,
    /// `b` = inbox batch size). `node` holds the worker index.
    PollLoop,
    /// Write-queue census of one worker (`a` = queued frames, `b` = links
    /// with a non-empty queue). `node` holds the worker index.
    WriteQueueDepth,
    /// A frame was queued behind an already-backlogged link (`a` = peer,
    /// `b` = queue depth after).
    BackpressureStall,
    /// A membership shuffle ran (`a` = active view size, `b` = passive
    /// view size).
    ShuffleTick,
    /// A node was killed / crashed.
    Crash,
    /// A node was restarted.
    Restart,
    /// A protocol callback panicked and the node was poisoned.
    NodePanic,
}

impl EventKind {
    /// Stable snake_case name used in the JSON-lines dump.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::LinkUp => "link_up",
            EventKind::LinkDown => "link_down",
            EventKind::LinkReap => "link_reap",
            EventKind::Dial => "dial",
            EventKind::DialFailed => "dial_failed",
            EventKind::Redial => "redial",
            EventKind::PartitionApply => "partition_apply",
            EventKind::PartitionHeal => "partition_heal",
            EventKind::FaultsEnabled => "faults_enabled",
            EventKind::GapDetected => "gap_detected",
            EventKind::RetransmitSent => "retransmit_sent",
            EventKind::RetransmitServed => "retransmit_served",
            EventKind::EdgeAdvertised => "edge_advertised",
            EventKind::Adopt => "adopt",
            EventKind::Deactivate => "deactivate",
            EventKind::Orphan => "orphan",
            EventKind::OrphanHealed => "orphan_healed",
            EventKind::InvariantSweep => "invariant_sweep",
            EventKind::PollLoop => "poll_loop",
            EventKind::WriteQueueDepth => "write_queue_depth",
            EventKind::BackpressureStall => "backpressure_stall",
            EventKind::ShuffleTick => "shuffle_tick",
            EventKind::Crash => "crash",
            EventKind::Restart => "restart",
            EventKind::NodePanic => "node_panic",
        }
    }
}

/// One flight-recorder record. `a` and `b` are kind-specific operands
/// (see the [`EventKind`] variant docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Microseconds since the run's epoch.
    pub at_us: u64,
    /// The node (or, for reactor loop events, the worker) concerned.
    pub node: u32,
    /// What happened.
    pub kind: EventKind,
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
}

impl Event {
    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t\":\"event\",\"at_us\":{},\"node\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
            self.at_us,
            self.node,
            self.kind.name(),
            self.a,
            self.b
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_shape() {
        let ev = Event {
            at_us: 1500,
            node: 7,
            kind: EventKind::Adopt,
            a: 3,
            b: 1,
        };
        assert_eq!(
            ev.to_json(),
            "{\"t\":\"event\",\"at_us\":1500,\"node\":7,\"kind\":\"adopt\",\"a\":3,\"b\":1}"
        );
    }

    #[test]
    fn names_are_snake_case_and_unique() {
        let kinds = [
            EventKind::LinkUp,
            EventKind::LinkDown,
            EventKind::LinkReap,
            EventKind::Dial,
            EventKind::DialFailed,
            EventKind::Redial,
            EventKind::PartitionApply,
            EventKind::PartitionHeal,
            EventKind::FaultsEnabled,
            EventKind::GapDetected,
            EventKind::RetransmitSent,
            EventKind::RetransmitServed,
            EventKind::EdgeAdvertised,
            EventKind::Adopt,
            EventKind::Deactivate,
            EventKind::Orphan,
            EventKind::OrphanHealed,
            EventKind::InvariantSweep,
            EventKind::PollLoop,
            EventKind::WriteQueueDepth,
            EventKind::BackpressureStall,
            EventKind::ShuffleTick,
            EventKind::Crash,
            EventKind::Restart,
            EventKind::NodePanic,
        ];
        let mut names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate event name");
        for name in names {
            assert!(name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()));
        }
    }
}
