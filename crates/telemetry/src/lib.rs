//! Zero-dependency observability for the BRISA reproduction.
//!
//! Two cooperating pieces, behind one cheap handle:
//!
//! * a [`Registry`] of named counters, gauges and log2 histograms — the
//!   always-on numeric health of a run, exported as JSON-lines snapshots
//!   on whatever tick the harness chooses, and
//! * a [`FlightRecorder`] — bounded per-shard ring buffers of structured
//!   [`Event`]s (link churn, dial attempts, tree transitions, loss
//!   recovery, invariant sweeps, reactor loop health), dumped on demand:
//!   on a failed divergence gate, a tripped invariant, or a panic.
//!
//! The [`Telemetry`] handle is the only type the instrumented crates
//! see. It is either *enabled* (wrapping an `Arc` of the registry and
//! recorder) or *disabled* (`Telemetry::disabled()`, the default
//! everywhere) — and the disabled form is **strictly out-of-band**: every
//! record method is a no-op on a `None`, no RNG is touched, no event is
//! scheduled, no time is read. A sim run with a disabled handle is
//! bit-identical to one with no telemetry wired at all, and a run with an
//! *enabled* handle is bit-identical to both (recording only touches
//! atomics and mutexes outside the simulation state) — the fingerprint
//! tests in `tests/integration_telemetry.rs` enforce exactly this, the
//! same discipline as the inert fault layer.
//!
//! Timestamps are microseconds since the run's epoch: the simulator's
//! clock in a simulated run, [`WallClock`](../brisa_runtime) micros in a
//! live one — directly comparable, which is the point: a flight-recorder
//! dump from a live soak lines up against the sim's prediction of the
//! same schedule.

mod event;
mod recorder;
mod registry;

pub use event::{Event, EventKind};
pub use recorder::FlightRecorder;
pub use registry::{Counter, Gauge, Histo, Registry, HIST_BUCKETS};

use std::sync::Arc;

/// Sizing of an enabled telemetry instance.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Flight-recorder shards (one per expected concurrent writer; the
    /// live runtime uses its reactor worker count).
    pub shards: usize,
    /// Events retained per shard before the ring overwrites the oldest.
    pub ring_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            shards: 8,
            ring_capacity: 8192,
        }
    }
}

struct Inner {
    registry: Registry,
    recorder: FlightRecorder,
}

/// The handle instrumented code holds. Cloning is an `Arc` clone (or a
/// copy of `None` when disabled); every method is a no-op on a disabled
/// handle.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<Inner>>);

/// A disabled handle usable in constant/static position (what
/// `Context::external` wires when the driver passes no telemetry).
pub static DISABLED: Telemetry = Telemetry(None);

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// The disabled handle: every operation is a no-op.
    pub const fn disabled() -> Self {
        Telemetry(None)
    }

    /// An enabled handle with default sizing.
    pub fn enabled() -> Self {
        Self::with_config(TelemetryConfig::default())
    }

    /// An enabled handle with explicit recorder sizing.
    pub fn with_config(cfg: TelemetryConfig) -> Self {
        Telemetry(Some(Arc::new(Inner {
            registry: Registry::new(),
            recorder: FlightRecorder::new(cfg.shards, cfg.ring_capacity),
        })))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Resolves the counter `name` (a no-op handle when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.0 {
            Some(inner) => inner.registry.counter(name),
            None => Counter::noop(),
        }
    }

    /// Resolves the gauge `name` (a no-op handle when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.0 {
            Some(inner) => inner.registry.gauge(name),
            None => Gauge::noop(),
        }
    }

    /// Resolves the histogram `name` (a no-op handle when disabled).
    pub fn histogram(&self, name: &str) -> Histo {
        match &self.0 {
            Some(inner) => inner.registry.histogram(name),
            None => Histo::noop(),
        }
    }

    /// Records a flight-recorder event, sharded by `node`.
    pub fn event(&self, at_us: u64, node: u32, kind: EventKind, a: u64, b: u64) {
        if let Some(inner) = &self.0 {
            inner.recorder.record(Event {
                at_us,
                node,
                kind,
                a,
                b,
            });
        }
    }

    /// Records a flight-recorder event onto an explicit shard (reactor
    /// workers pin their loop events to their own shard).
    pub fn event_on_shard(
        &self,
        shard: usize,
        at_us: u64,
        node: u32,
        kind: EventKind,
        a: u64,
        b: u64,
    ) {
        if let Some(inner) = &self.0 {
            inner.recorder.record_shard(
                shard,
                Event {
                    at_us,
                    node,
                    kind,
                    a,
                    b,
                },
            );
        }
    }

    /// Direct access to the recorder (None when disabled).
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.0.as_ref().map(|inner| &inner.recorder)
    }

    /// One JSON snapshot line of every registered metric, stamped
    /// `at_us`. Empty string when disabled (callers write nothing).
    pub fn snapshot_jsonl(&self, at_us: u64) -> String {
        match &self.0 {
            Some(inner) => inner.registry.snapshot_json(at_us),
            None => String::new(),
        }
    }

    /// Every retained event from `since_us` on, one JSON line each
    /// (trailing newline included; empty string when disabled or when
    /// nothing qualifies).
    pub fn dump_events_jsonl(&self, since_us: u64) -> String {
        let Some(inner) = &self.0 else {
            return String::new();
        };
        let events = inner.recorder.events_since(since_us);
        let mut out = String::with_capacity(events.len() * 80);
        for ev in events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Installs a panic hook that dumps the retained flight-recorder
    /// events (and one final metric snapshot) to `path` before the
    /// previous hook runs, so a crashed soak carries its own post-mortem.
    /// No-op on a disabled handle. The hook chain is process-global;
    /// install once per run.
    pub fn install_panic_dump(&self, path: &std::path::Path) {
        let Some(inner) = self.0.as_ref().map(Arc::clone) else {
            return;
        };
        let path = path.to_path_buf();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let mut out = inner.registry.snapshot_json(u64::MAX);
            out.push('\n');
            for ev in inner.recorder.events_since(0) {
                out.push_str(&ev.to_json());
                out.push('\n');
            }
            let _ = std::fs::write(&path, out);
            prev(info);
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.counter("x").inc();
        tel.gauge("g").set(1);
        tel.histogram("h").record(1);
        tel.event(0, 0, EventKind::LinkUp, 0, 0);
        assert_eq!(tel.snapshot_jsonl(0), "");
        assert_eq!(tel.dump_events_jsonl(0), "");
        assert!(tel.recorder().is_none());
        assert!(!DISABLED.is_enabled());
    }

    #[test]
    fn enabled_handle_records_and_dumps() {
        let tel = Telemetry::enabled();
        assert!(tel.is_enabled());
        let c = tel.counter("brisa.delivered");
        c.add(5);
        tel.event(100, 3, EventKind::Adopt, 1, 1);
        tel.event(200, 3, EventKind::Orphan, 1, 0);
        let snap = tel.snapshot_jsonl(250);
        assert!(snap.contains("\"brisa.delivered\":5"));
        let dump = tel.dump_events_jsonl(150);
        assert_eq!(dump.lines().count(), 1);
        assert!(dump.contains("\"kind\":\"orphan\""));
        // Clones share state.
        let clone = tel.clone();
        clone.counter("brisa.delivered").inc();
        assert_eq!(tel.counter("brisa.delivered").get(), 6);
    }

    #[test]
    fn event_shard_pinning_reaches_the_dump() {
        let tel = Telemetry::with_config(TelemetryConfig {
            shards: 2,
            ring_capacity: 8,
        });
        tel.event_on_shard(1, 10, 99, EventKind::PollLoop, 1500, 3);
        let dump = tel.dump_events_jsonl(0);
        assert!(dump.contains("\"kind\":\"poll_loop\""));
        assert_eq!(tel.recorder().unwrap().total_recorded(), 1);
    }
}
