//! The flight recorder: bounded per-shard rings of [`Event`]s.
//!
//! Recording is designed for many concurrent writers (one reactor worker
//! per shard, plus whatever harness thread feels like annotating the
//! run): each shard is an independent `Mutex<Ring>`, writers hash to a
//! shard by node identifier (or address one explicitly, as the reactor
//! workers do), and a record is a push under a short uncontended lock.
//! When a ring is full the oldest event is overwritten — the recorder
//! answers "what happened in the last N seconds", not "what happened
//! since boot".
//!
//! Snapshots ([`FlightRecorder::events_since`]) lock one shard at a
//! time, so they can run while writers keep recording; the merged view
//! is sorted by timestamp (ties broken by shard then per-shard sequence,
//! which preserves each shard's recording order).

use crate::event::Event;
use std::sync::Mutex;

/// One shard's bounded ring. Sequence numbers count every record ever
/// made to the shard, so wraparound is observable (`recorded` keeps
/// growing while `len` saturates at the capacity).
struct Ring {
    buf: Vec<(u64, Event)>,
    cap: usize,
    /// Index of the oldest entry once the ring has wrapped.
    head: usize,
    /// Total events ever recorded to this shard.
    recorded: u64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::with_capacity(cap.min(1024)),
            cap,
            head: 0,
            recorded: 0,
        }
    }

    fn push(&mut self, ev: Event) {
        let seq = self.recorded;
        self.recorded += 1;
        if self.buf.len() < self.cap {
            self.buf.push((seq, ev));
        } else {
            self.buf[self.head] = (seq, ev);
            self.head = (self.head + 1) % self.cap;
        }
    }
}

/// A fixed set of bounded event rings. See the module docs.
pub struct FlightRecorder {
    shards: Vec<Mutex<Ring>>,
}

impl FlightRecorder {
    /// Creates `shards` rings of `capacity` events each.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        FlightRecorder {
            shards: (0..shards)
                .map(|_| Mutex::new(Ring::new(capacity)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Records `ev`, sharded by its node identifier.
    pub fn record(&self, ev: Event) {
        self.record_shard(ev.node as usize % self.shards.len(), ev);
    }

    /// Records `ev` onto an explicit shard (reactor workers pin their
    /// loop events to their own shard regardless of node placement).
    pub fn record_shard(&self, shard: usize, ev: Event) {
        let shard = shard % self.shards.len();
        self.shards[shard].lock().unwrap().push(ev);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().unwrap().recorded).sum()
    }

    /// Events currently retained across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().buf.len())
            .sum()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every retained event with `at_us >= since_us`, sorted by
    /// `(at_us, shard, shard seq)`. Locks one shard at a time; safe to
    /// call while writers are active (the snapshot is then simply a
    /// point-in-time-per-shard view).
    pub fn events_since(&self, since_us: u64) -> Vec<Event> {
        let mut out: Vec<(u64, usize, u64, Event)> = Vec::new();
        for (idx, shard) in self.shards.iter().enumerate() {
            let ring = shard.lock().unwrap();
            for &(seq, ev) in &ring.buf {
                if ev.at_us >= since_us {
                    out.push((ev.at_us, idx, seq, ev));
                }
            }
        }
        out.sort_by_key(|&(at, shard, seq, _)| (at, shard, seq));
        out.into_iter().map(|(_, _, _, ev)| ev).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(at_us: u64, node: u32) -> Event {
        Event {
            at_us,
            node,
            kind: EventKind::LinkUp,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn ring_wraparound_keeps_the_newest_events() {
        let rec = FlightRecorder::new(1, 4);
        for i in 0..10u64 {
            rec.record(ev(i, 0));
        }
        assert_eq!(rec.total_recorded(), 10);
        assert_eq!(rec.len(), 4, "retention saturates at the capacity");
        let kept: Vec<u64> = rec.events_since(0).iter().map(|e| e.at_us).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "oldest overwritten first");
        // Exactly one more record evicts exactly the oldest survivor.
        rec.record(ev(10, 0));
        let kept: Vec<u64> = rec.events_since(0).iter().map(|e| e.at_us).collect();
        assert_eq!(kept, vec![7, 8, 9, 10]);
    }

    #[test]
    fn events_since_filters_and_merges_shards() {
        let rec = FlightRecorder::new(4, 16);
        // Nodes 0..4 land on distinct shards; interleave timestamps.
        for t in 0..8u64 {
            for node in 0..4u32 {
                rec.record(ev(t * 10 + node as u64, node));
            }
        }
        let all = rec.events_since(0);
        assert_eq!(all.len(), 32);
        let times: Vec<u64> = all.iter().map(|e| e.at_us).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "merged view is time-ordered");
        let late = rec.events_since(50);
        assert!(late.iter().all(|e| e.at_us >= 50));
        assert_eq!(late.len(), 12);
    }

    #[test]
    fn snapshot_under_concurrent_write() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let rec = Arc::new(FlightRecorder::new(8, 256));
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4u32)
            .map(|w| {
                let rec = Arc::clone(&rec);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut t = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        rec.record(ev(t, w));
                        t += 1;
                    }
                    t
                })
            })
            .collect();
        // Reader: repeated snapshots while the writers hammer the rings.
        let mut last_total = 0;
        for _ in 0..50 {
            let events = rec.events_since(0);
            assert!(events.len() <= 8 * 256);
            for pair in events.windows(2) {
                assert!(pair[0].at_us <= pair[1].at_us, "snapshot stays sorted");
            }
            let total = rec.total_recorded();
            assert!(total >= last_total, "recorded count is monotone");
            last_total = total;
        }
        stop.store(true, Ordering::Relaxed);
        let written: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(rec.total_recorded(), written);
    }
}
