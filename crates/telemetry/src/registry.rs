//! The metric registry: named counters, gauges and log2 histograms.
//!
//! Metrics are cheap enough to leave in hot paths: a handle is an
//! `Arc<AtomicU64>` (or the histogram's small block of atomics), so
//! recording is a relaxed atomic add with no lock and no allocation.
//! Name resolution (`Registry::counter` etc.) takes a mutex and is meant
//! to happen once, at wiring time — instrumented components resolve
//! their handles when telemetry is attached and hold them.
//!
//! Histograms use the same 64-bucket log2 scheme as
//! `brisa_metrics::LatencyHistogram` (bucket `i > 0` covers
//! `[2^(i-1), 2^i)` µs, bucket 0 holds exact zeros), so a telemetry
//! snapshot and a bench artifact bucket identically; this crate keeps a
//! private copy of the three-line bucket function rather than a
//! dependency, pinned by the same edge tests.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets (mirrors `brisa_metrics::LATENCY_BUCKETS`).
pub const HIST_BUCKETS: usize = 64;

/// Bucket index for value `v` (same scheme as `brisa_metrics::hist`).
fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// A monotonically increasing counter. Cloning shares the cell.
#[derive(Clone, Default, Debug)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A no-op counter (what a disabled registry hands out).
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op counter).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-write-wins gauge. Cloning shares the cell.
#[derive(Clone, Default, Debug)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A no-op gauge.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op gauge).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// The shared storage of one histogram: log2 buckets plus exact count,
/// sum and max, all atomics so concurrent recorders never lock.
#[derive(Debug)]
pub(crate) struct HistCells {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCells {
    fn new() -> Self {
        HistCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A concurrent log2 histogram handle. Cloning shares the cells.
#[derive(Clone, Default, Debug)]
pub struct Histo(Option<Arc<HistCells>>);

impl Histo {
    /// A no-op histogram.
    pub fn noop() -> Self {
        Histo(None)
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        if let Some(cells) = &self.0 {
            cells.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            cells.count.fetch_add(1, Ordering::Relaxed);
            cells.sum.fetch_add(v, Ordering::Relaxed);
            cells.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Largest recorded observation.
    pub fn max(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.max.load(Ordering::Relaxed))
    }

    /// Exact mean of the recorded observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let Some(cells) = &self.0 else { return 0.0 };
        let count = cells.count.load(Ordering::Relaxed);
        if count == 0 {
            0.0
        } else {
            cells.sum.load(Ordering::Relaxed) as f64 / count as f64
        }
    }

    /// Renders the histogram as a JSON object with sparse buckets
    /// (`[[bucket, count], …]`).
    fn to_json(&self) -> String {
        let Some(cells) = &self.0 else {
            return "{\"count\":0,\"sum\":0,\"max\":0,\"buckets\":[]}".to_string();
        };
        let mut out = String::new();
        write!(
            out,
            "{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
            cells.count.load(Ordering::Relaxed),
            cells.sum.load(Ordering::Relaxed),
            cells.max.load(Ordering::Relaxed)
        )
        .unwrap();
        let mut first = true;
        for (i, b) in cells.buckets.iter().enumerate() {
            let v = b.load(Ordering::Relaxed);
            if v > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                write!(out, "[{i},{v}]").unwrap();
            }
        }
        out.push_str("]}");
        out
    }
}

/// The named-metric store. Names are dot-separated snake_case paths
/// (`"reactor.poll_iter_us"`); snapshots render them in sorted order so
/// two snapshots of identical state are byte-identical.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histos: Mutex<BTreeMap<String, Histo>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Resolves (registering on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Counter(Some(Arc::new(AtomicU64::new(0)))))
            .clone()
    }

    /// Resolves (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Gauge(Some(Arc::new(AtomicU64::new(0)))))
            .clone()
    }

    /// Resolves (registering on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histo {
        let mut map = self.histos.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Histo(Some(Arc::new(HistCells::new()))))
            .clone()
    }

    /// Renders every metric as one JSON snapshot line (no trailing
    /// newline): `{"t":"snapshot","at_us":…,"counters":{…},"gauges":{…},
    /// "histos":{…}}`.
    pub fn snapshot_json(&self, at_us: u64) -> String {
        let mut out = String::with_capacity(512);
        write!(
            out,
            "{{\"t\":\"snapshot\",\"at_us\":{at_us},\"counters\":{{"
        )
        .unwrap();
        {
            let map = self.counters.lock().unwrap();
            for (i, (name, c)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(out, "\"{name}\":{}", c.get()).unwrap();
            }
        }
        out.push_str("},\"gauges\":{");
        {
            let map = self.gauges.lock().unwrap();
            for (i, (name, g)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(out, "\"{name}\":{}", g.get()).unwrap();
            }
        }
        out.push_str("},\"histos\":{");
        {
            let map = self.histos.lock().unwrap();
            for (i, (name, h)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(out, "\"{name}\":{}", h.to_json()).unwrap();
            }
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_match_the_metrics_crate() {
        // Pins the private copy to `brisa_metrics::hist::bucket_of`'s
        // documented edges.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn handles_share_cells_and_noops_do_nothing() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        let g = reg.gauge("g");
        g.set(7);
        assert_eq!(reg.gauge("g").get(), 7);
        let h = reg.histogram("h");
        h.record(100);
        h.record(300);
        assert_eq!(reg.histogram("h").count(), 2);
        assert_eq!(reg.histogram("h").max(), 300);
        assert!((h.mean() - 200.0).abs() < 1e-9);
        // No-op handles absorb everything silently.
        Counter::noop().inc();
        Gauge::noop().set(9);
        Histo::noop().record(9);
        assert_eq!(Counter::noop().get(), 0);
        assert_eq!(Histo::noop().count(), 0);
        assert_eq!(Histo::noop().mean(), 0.0);
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let reg = Registry::new();
        reg.counter("b.count").add(2);
        reg.counter("a.count").inc();
        reg.gauge("z.depth").set(5);
        reg.histogram("lat_us").record(1000);
        let snap = reg.snapshot_json(42);
        assert!(snap.starts_with("{\"t\":\"snapshot\",\"at_us\":42,"));
        let a_pos = snap.find("\"a.count\":1").unwrap();
        let b_pos = snap.find("\"b.count\":2").unwrap();
        assert!(a_pos < b_pos, "counters render in name order");
        assert!(snap.contains("\"z.depth\":5"));
        assert!(snap
            .contains("\"lat_us\":{\"count\":1,\"sum\":1000,\"max\":1000,\"buckets\":[[10,1]]}"));
        assert_eq!(
            snap,
            reg.snapshot_json(42),
            "identical state, identical bytes"
        );
    }
}
