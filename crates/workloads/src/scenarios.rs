//! Canonical scenario definitions, one per figure/table of the paper.
//!
//! Every regeneration binary in `brisa-bench` pulls its parameters from
//! here, so the mapping between an experiment and its configuration is
//! recorded in exactly one place. Each scenario can be instantiated at the
//! paper's full scale or at a reduced `Quick` scale for smoke runs and CI.

use crate::spec::{
    BrisaScenario, ChurnSpec, FaultSpec, MaintenanceTempo, PartitionPhase, ResultMode, ScaleEvent,
    ScaleEventKind, StreamSpec, Testbed,
};
use brisa::{ParentStrategy, StructureMode};
use brisa_simnet::SimDuration;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The sizes used in the paper (512/200/150/128 nodes, 500 messages).
    Full,
    /// A reduced size that preserves the qualitative shape but runs in
    /// seconds; used by tests and the default `cargo bench` invocation.
    Quick,
}

impl Scale {
    /// Reads the scale from the `BRISA_SCALE` environment variable
    /// (`full`/`quick`), defaulting to `Quick`.
    pub fn from_env() -> Self {
        match std::env::var("BRISA_SCALE").as_deref() {
            Ok("full") | Ok("FULL") | Ok("paper") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Picks `full` or `quick` depending on the scale.
    pub fn pick<T>(self, full: T, quick: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Quick => quick,
        }
    }
}

/// Figure 2: duplicate distribution under flooding for view sizes 4–10 over
/// a 512-node HyParView network, 500 messages. Returns `(nodes, messages,
/// payload, view_sizes)`.
pub fn fig2(scale: Scale) -> (u32, u64, usize, Vec<usize>) {
    let nodes = scale.pick(512, 64);
    let messages = scale.pick(500, 30);
    (nodes, messages, 1024, vec![4, 6, 8, 10])
}

/// Figures 6 and 7: depth and degree distributions for 512 nodes,
/// first-come first-picked, tree and DAG(2) × view 4 and 8.
pub fn fig6_7(scale: Scale) -> Vec<BrisaScenario> {
    let nodes = scale.pick(512, 96);
    let messages = scale.pick(100, 20);
    let mut out = Vec::new();
    for &(mode, view) in &[
        (StructureMode::Tree, 4),
        (StructureMode::Tree, 8),
        (StructureMode::Dag { parents: 2 }, 4),
        (StructureMode::Dag { parents: 2 }, 8),
    ] {
        out.push(BrisaScenario {
            nodes,
            view_size: view,
            mode,
            stream: StreamSpec::short(messages, 1024),
            ..Default::default()
        });
    }
    out
}

/// Figure 8: sample tree shapes for 100 nodes, view sizes 4 and 8,
/// expansion factor 1.
pub fn fig8(scale: Scale) -> Vec<BrisaScenario> {
    let nodes = scale.pick(100, 40);
    [4usize, 8]
        .iter()
        .map(|&view| BrisaScenario {
            nodes,
            view_size: view,
            expansion_factor: 1,
            stream: StreamSpec::short(20, 256),
            ..Default::default()
        })
        .collect()
}

/// Figure 9: routing delays on PlanetLab, 150 nodes, tree with view 4,
/// 200 × 1 KB messages; strategies first-pick and delay-aware (plus the
/// flood and point-to-point reference series produced by the bench binary).
pub fn fig9(scale: Scale) -> Vec<BrisaScenario> {
    let nodes = scale.pick(150, 48);
    let messages = scale.pick(200, 25);
    [
        ParentStrategy::FirstComeFirstPicked,
        ParentStrategy::DelayAware,
    ]
    .iter()
    .map(|&strategy| BrisaScenario {
        nodes,
        view_size: 4,
        strategy,
        testbed: Testbed::PlanetLab,
        stream: StreamSpec {
            messages,
            rate_per_sec: 5.0,
            payload_bytes: 1024,
        },
        bootstrap: SimDuration::from_secs(60),
        ..Default::default()
    })
    .collect()
}

/// Figures 10 and 11: bandwidth usage for 512 nodes, payloads 1/10/50/100 KB,
/// tree & DAG(2) × view 4/8. Returns `(payload sizes, scenarios per
/// structure/view)`.
pub fn fig10_11(scale: Scale) -> (Vec<usize>, Vec<BrisaScenario>) {
    let nodes = scale.pick(512, 64);
    let messages = scale.pick(200, 25);
    let payloads = scale.pick(
        vec![1024, 10 * 1024, 50 * 1024, 100 * 1024],
        vec![1024, 10 * 1024],
    );
    let scenarios = [
        (StructureMode::Tree, 4),
        (StructureMode::Tree, 8),
        (StructureMode::Dag { parents: 2 }, 4),
        (StructureMode::Dag { parents: 2 }, 8),
    ]
    .iter()
    .map(|&(mode, view)| BrisaScenario {
        nodes,
        view_size: view,
        mode,
        stream: StreamSpec {
            messages,
            rate_per_sec: 5.0,
            payload_bytes: 1024,
        },
        ..Default::default()
    })
    .collect();
    (payloads, scenarios)
}

/// Table I: churn impact for 128 and 512 nodes, view 4, churn 3% and 5% per
/// minute over 10 minutes, tree vs DAG(2). Returns the cartesian product.
pub fn table1(scale: Scale) -> Vec<(u32, f64, StructureMode, BrisaScenario)> {
    let sizes: Vec<u32> = scale.pick(vec![128, 512], vec![48, 96]);
    let churn_minutes = scale.pick(10u64, 2);
    let mut out = Vec::new();
    for &nodes in &sizes {
        for &rate in &[3.0f64, 5.0] {
            for &mode in &[StructureMode::Tree, StructureMode::Dag { parents: 2 }] {
                let sc = BrisaScenario {
                    nodes,
                    view_size: 4,
                    mode,
                    stream: StreamSpec {
                        messages: scale.pick(500, 50),
                        rate_per_sec: 5.0,
                        payload_bytes: 1024,
                    },
                    churn: Some(ChurnSpec {
                        rate_percent: rate,
                        interval: SimDuration::from_secs(60),
                        duration: SimDuration::from_secs(60 * churn_minutes),
                    }),
                    bootstrap: SimDuration::from_secs(60),
                    drain: SimDuration::from_secs(30),
                    ..Default::default()
                };
                out.push((nodes, rate, mode, sc));
            }
        }
    }
    out
}

/// Figure 12 / Table II: the cross-protocol comparison at 512 nodes (view 4
/// for BRISA and TAG). Returns `(nodes, payload sizes for Fig 12, stream for
/// Table II)`.
pub fn comparison(scale: Scale) -> (u32, Vec<usize>, StreamSpec) {
    let nodes = scale.pick(512, 64);
    let payloads = scale.pick(
        vec![0, 1024, 10 * 1024, 20 * 1024],
        vec![0, 1024, 10 * 1024],
    );
    let stream = StreamSpec {
        messages: scale.pick(500, 40),
        rate_per_sec: 5.0,
        payload_bytes: 1024,
    };
    (nodes, payloads, stream)
}

/// Figure 13: construction time, BRISA vs TAG, on the cluster (512 nodes)
/// and PlanetLab (200 nodes).
pub fn fig13(scale: Scale) -> Vec<(Testbed, u32)> {
    vec![
        (Testbed::Cluster, scale.pick(512, 64)),
        (Testbed::PlanetLab, scale.pick(200, 48)),
    ]
}

/// Figure 14: parent recovery delays under 3%/min churn for a 128-node
/// network with view 4, BRISA tree vs TAG.
pub fn fig14(scale: Scale) -> (u32, ChurnSpec, StreamSpec) {
    let nodes = scale.pick(128, 48);
    let churn = ChurnSpec {
        rate_percent: 3.0,
        interval: SimDuration::from_secs(60),
        duration: SimDuration::from_secs(scale.pick(600, 120)),
    };
    let stream = StreamSpec {
        messages: scale.pick(500, 60),
        rate_per_sec: 5.0,
        payload_bytes: 1024,
    };
    (nodes, churn, stream)
}

/// Fault sweep, loss leg: a BRISA tree streaming under per-link Bernoulli
/// loss from 0 % (control) to 5 %. The structure bootstraps under nominal
/// conditions; loss switches on at stream start. Returns
/// `(loss rate, scenario)` pairs.
pub fn fault_loss_sweep(scale: Scale) -> Vec<(f64, BrisaScenario)> {
    let nodes = scale.pick(256, 48);
    let messages = scale.pick(300, 40);
    [0.0, 0.001, 0.01, 0.02, 0.05]
        .iter()
        .map(|&loss_rate| {
            (
                loss_rate,
                BrisaScenario {
                    nodes,
                    view_size: 4,
                    stream: StreamSpec {
                        messages,
                        rate_per_sec: 5.0,
                        payload_bytes: 1024,
                    },
                    faults: FaultSpec::loss(loss_rate),
                    bootstrap: SimDuration::from_secs(30),
                    drain: SimDuration::from_secs(20),
                    ..Default::default()
                },
            )
        })
        .collect()
}

/// Offset of the partition cut from stream start in the partition sweep.
pub const PARTITION_START_AFTER: SimDuration = SimDuration::from_secs(5);

/// Fault sweep, partition leg: a quarter of the population is cut from the
/// source [`PARTITION_START_AFTER`] into the stream, for 5/10/20 s (5/10 at
/// quick scale), then the cut heals while the stream keeps flowing for
/// another 15 s — long enough to watch the island catch back up. Returns
/// `(partition duration, scenario)` pairs.
pub fn fault_partition_sweep(scale: Scale) -> Vec<(SimDuration, BrisaScenario)> {
    let nodes = scale.pick(192, 48);
    let durations: Vec<u64> = scale.pick(vec![5, 10, 20], vec![5, 10]);
    durations
        .into_iter()
        .map(|secs| {
            let duration = SimDuration::from_secs(secs);
            let stream_secs = PARTITION_START_AFTER.as_micros() / 1_000_000 + secs + 15;
            (
                duration,
                BrisaScenario {
                    nodes,
                    view_size: 4,
                    stream: StreamSpec {
                        messages: stream_secs * 5,
                        rate_per_sec: 5.0,
                        payload_bytes: 1024,
                    },
                    faults: FaultSpec {
                        partition: Some(PartitionPhase::drop(
                            0.25,
                            PARTITION_START_AFTER,
                            duration,
                        )),
                        ..Default::default()
                    },
                    bootstrap: SimDuration::from_secs(30),
                    drain: SimDuration::from_secs(20),
                    ..Default::default()
                },
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Scale-mode scenarios (beyond the paper's sizes)
// ---------------------------------------------------------------------
//
// The paper evaluates up to 512 nodes; related epidemic-broadcast systems
// (Plumtree/HyParView lineage) go to 10k+. These scenarios take the same
// stack one order of magnitude further — 100 000-node overlays — using the
// streaming result path (`ResultMode::Streaming`), and add the large-scale
// incidents the paper implies but never runs: a flash crowd joining
// mid-stream, a catastrophic correlated failure, and sustained churn at
// scale.

/// Base of every scale scenario: a short 1 KiB stream at the paper's 5/s
/// rate over a tree with view 4, collected through the streaming result
/// path.
fn scale_base(nodes: u32) -> BrisaScenario {
    BrisaScenario {
        nodes,
        view_size: 4,
        stream: StreamSpec {
            messages: 50,
            rate_per_sec: 5.0,
            payload_bytes: 1024,
        },
        bootstrap: SimDuration::from_secs(30),
        drain: SimDuration::from_secs(20),
        results: ResultMode::Streaming,
        ..Default::default()
    }
}

/// Scale, control leg: plain dissemination at `nodes`, no faults. The
/// acceptance bar of the scale sweep: 100 % delivery at 100 000 nodes.
pub fn scale_no_fault(nodes: u32) -> BrisaScenario {
    scale_base(nodes)
}

/// Scale, flash-crowd leg: 10 % of the population (10 000 fresh nodes at
/// the 100k row) joins through the contact point *at the same instant*,
/// two seconds into the stream, while the original overlay keeps
/// streaming.
pub fn scale_flash_crowd(nodes: u32) -> BrisaScenario {
    BrisaScenario {
        events: vec![ScaleEvent {
            after: SimDuration::from_secs(2),
            kind: ScaleEventKind::FlashCrowd {
                joiners: (nodes / 10).max(1),
            },
        }],
        ..scale_base(nodes)
    }
}

/// Scale, correlated-failure leg: half of the live non-source population
/// crashes simultaneously three seconds into the stream. Survivors must
/// re-form the structure and close their gaps through the repair path; the
/// drain window is stretched so recovery completes inside the run.
pub fn scale_mass_crash(nodes: u32) -> BrisaScenario {
    BrisaScenario {
        events: vec![ScaleEvent {
            after: SimDuration::from_secs(3),
            kind: ScaleEventKind::MassCrash { fraction: 0.5 },
        }],
        drain: SimDuration::from_secs(30),
        ..scale_base(nodes)
    }
}

/// Scale, sustained-churn leg: 0.5 % of the population replaced every 15 s
/// for 45 s while the stream flows (the engine keeps publishing for the
/// whole churn window, so this row streams 225 messages at the 100k row —
/// by far the heaviest cell of the sweep).
pub fn scale_churn(nodes: u32) -> BrisaScenario {
    BrisaScenario {
        churn: Some(ChurnSpec {
            rate_percent: 0.5,
            interval: SimDuration::from_secs(15),
            duration: SimDuration::from_secs(45),
        }),
        drain: SimDuration::from_secs(30),
        ..scale_base(nodes)
    }
}

/// The million-node headline scenario of the sharded simulator: plain
/// dissemination at 1 000 000 nodes with a shortened stream (10 messages
/// instead of the suite's 50), a relaxed maintenance tempo
/// ([`MaintenanceTempo::relaxed`] — at this scale the suite tempo's
/// background chatter alone is ~10 M simulator events per simulated
/// second, blowing the wall-clock budget), and a stretched bootstrap so
/// the join wave fully percolates before the stream starts. This row is
/// run sharded-only: sequential/sharded equality is pinned at the smaller
/// suite sizes (and property-tested across shard counts), so the
/// million-node row pins *capacity*, not equivalence.
pub fn scale_million() -> BrisaScenario {
    BrisaScenario {
        stream: StreamSpec {
            messages: 10,
            rate_per_sec: 5.0,
            payload_bytes: 1024,
        },
        bootstrap: SimDuration::from_secs(40),
        drain: SimDuration::from_secs(20),
        tempo: MaintenanceTempo::relaxed(),
        ..scale_base(1_000_000)
    }
}

/// The scenario grid of `bench_scale_sweep`, one labelled scenario per
/// incident family at system size `nodes`.
pub fn scale_suite(nodes: u32) -> Vec<(&'static str, BrisaScenario)> {
    vec![
        ("no_fault", scale_no_fault(nodes)),
        ("flash_crowd", scale_flash_crowd(nodes)),
        ("mass_crash", scale_mass_crash(nodes)),
        ("churn", scale_churn(nodes)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper_parameters() {
        let (nodes, messages, payload, views) = fig2(Scale::Full);
        assert_eq!((nodes, messages, payload), (512, 500, 1024));
        assert_eq!(views, vec![4, 6, 8, 10]);
        assert_eq!(fig6_7(Scale::Full).len(), 4);
        assert_eq!(fig6_7(Scale::Full)[0].nodes, 512);
        assert_eq!(fig8(Scale::Full)[0].nodes, 100);
        assert_eq!(fig8(Scale::Full)[0].expansion_factor, 1);
        assert_eq!(fig9(Scale::Full)[0].nodes, 150);
        assert_eq!(fig9(Scale::Full)[0].testbed, Testbed::PlanetLab);
        let (payloads, scenarios) = fig10_11(Scale::Full);
        assert_eq!(payloads.len(), 4);
        assert_eq!(scenarios.len(), 4);
        assert_eq!(table1(Scale::Full).len(), 8);
        let (n, p, s) = comparison(Scale::Full);
        assert_eq!(n, 512);
        assert_eq!(p, vec![0, 1024, 10240, 20480]);
        assert_eq!(s.messages, 500);
        assert_eq!(fig13(Scale::Full)[1], (Testbed::PlanetLab, 200));
        let (n14, churn, _) = fig14(Scale::Full);
        assert_eq!(n14, 128);
        assert!((churn.rate_percent - 3.0).abs() < 1e-9);
    }

    #[test]
    fn quick_scale_is_smaller() {
        let (nodes_full, ..) = fig2(Scale::Full);
        let (nodes_quick, ..) = fig2(Scale::Quick);
        assert!(nodes_quick < nodes_full);
        assert!(table1(Scale::Quick)[0].3.nodes < table1(Scale::Full)[0].3.nodes);
    }

    #[test]
    fn fault_sweeps_are_well_formed() {
        let loss = fault_loss_sweep(Scale::Quick);
        assert_eq!(loss.len(), 5);
        assert_eq!(loss[0].0, 0.0, "the control cell runs without loss");
        assert!(loss[0].1.faults.is_inert());
        assert!(loss.iter().skip(1).all(|(r, sc)| sc.faults.loss_rate == *r));
        assert!(loss.windows(2).all(|w| w[0].0 < w[1].0));

        for scale in [Scale::Quick, Scale::Full] {
            let partition = fault_partition_sweep(scale);
            assert!(
                partition
                    .iter()
                    .any(|(d, _)| *d == SimDuration::from_secs(10)),
                "the 10 s partition-then-heal scenario exists at every scale"
            );
            for (duration, sc) in &partition {
                let phase = sc.faults.partition.expect("partition phase present");
                assert_eq!(phase.duration, *duration);
                // The stream outlasts the heal by a post-heal tail.
                assert!(
                    sc.stream.duration()
                        > phase.start_after + phase.duration + SimDuration::from_secs(10)
                );
            }
        }
    }

    #[test]
    fn scale_suite_is_well_formed() {
        let suite = scale_suite(100_000);
        assert_eq!(suite.len(), 4);
        for (label, sc) in &suite {
            assert_eq!(sc.nodes, 100_000);
            assert_eq!(sc.results, ResultMode::Streaming, "{label}");
            // Streaming scenarios carry counter tracking anchored to the
            // publish schedule.
            assert!(matches!(
                sc.brisa_config().tracking,
                brisa::DeliveryTracking::Counters { .. }
            ));
        }
        let flash = scale_flash_crowd(100_000);
        assert!(matches!(
            flash.events[0].kind,
            ScaleEventKind::FlashCrowd { joiners: 10_000 }
        ));
        let crash = scale_mass_crash(64);
        assert!(matches!(
            crash.events[0].kind,
            ScaleEventKind::MassCrash { fraction } if (fraction - 0.5).abs() < 1e-9
        ));
        assert!(scale_churn(1000).churn.is_some());
        assert!(scale_no_fault(1000).events.is_empty());
    }

    #[test]
    fn million_row_relaxes_tempo_but_suite_keeps_the_default() {
        let m = scale_million();
        assert_eq!(m.nodes, 1_000_000);
        assert_eq!(m.tempo, MaintenanceTempo::relaxed());
        // The tempo flows into the per-protocol configurations...
        assert_eq!(
            m.hyparview_config().keepalive_period,
            SimDuration::from_secs(10)
        );
        assert_eq!(
            m.hyparview_config().shuffle_period,
            SimDuration::from_secs(30)
        );
        assert_eq!(
            m.brisa_config().repair_tick_period,
            SimDuration::from_secs(2)
        );
        // ... while every suite scenario keeps the evaluation defaults, so
        // their fingerprints are untouched by the knob's existence.
        for (label, sc) in scale_suite(2_000) {
            assert_eq!(sc.tempo, MaintenanceTempo::default(), "{label}");
            assert_eq!(
                sc.hyparview_config().keepalive_period,
                brisa_membership::HyParViewConfig::default().keepalive_period,
                "{label}"
            );
        }
    }

    #[test]
    fn scale_from_env_defaults_to_quick() {
        // The variable is not set in the test environment.
        assert_eq!(Scale::from_env(), Scale::Quick);
        assert_eq!(Scale::Quick.pick(1, 2), 2);
        assert_eq!(Scale::Full.pick(1, 2), 1);
    }
}
