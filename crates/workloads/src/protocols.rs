//! [`DisseminationProtocol`] implementations for every protocol stack the
//! harness drives: BRISA itself and the four comparison baselines.
//!
//! This is the *only* per-protocol code in the experiment path. Everything
//! else — bootstrap, churn, stream injection, metric collection, the
//! parallel sweep driver — is generic over this trait, so adding a protocol
//! to every figure/table experiment means implementing the four methods
//! below for it.

use crate::engine::{
    BuildCtx, DisseminationProtocol, NodeReport, RepairTelemetry, ScaleNodeReport,
};
use brisa::{BrisaConfig, BrisaNode};
use brisa_baselines::{
    DeliveryStats, FloodNode, GossipConfig, SimpleGossipNode, SimpleTreeNode, TagConfig, TagNode,
};
use brisa_membership::HyParViewConfig;
use brisa_simnet::{Context, NodeId};

/// Run-wide configuration of a BRISA node (membership + dissemination).
#[derive(Debug, Clone)]
pub struct BrisaStackConfig {
    /// HyParView parameters.
    pub hpv: HyParViewConfig,
    /// BRISA parameters.
    pub brisa: BrisaConfig,
}

/// Copies a per-sequence-number delivery map into the report's vector,
/// sorted by sequence number. The sort matters: the protocol stats keep the
/// map in a hash table whose iteration order is seeded per thread, and
/// downstream float accumulations (mean routing delay) must not depend on
/// which thread of a [`crate::matrix::run_matrix`] sweep ran the cell.
fn sorted_deliveries(
    map: &std::collections::HashMap<u64, brisa_simnet::SimTime>,
) -> Vec<(u64, brisa_simnet::SimTime)> {
    let mut v: Vec<(u64, brisa_simnet::SimTime)> = map.iter().map(|(&s, &t)| (s, t)).collect();
    v.sort_unstable_by_key(|&(s, _)| s);
    v
}

/// Shared translation of a [`DeliveryStats`] into the generic report.
fn delivery_report(stats: &DeliveryStats) -> NodeReport {
    NodeReport {
        delivered: stats.delivered,
        duplicates_per_message: stats.duplicates_per_message(),
        first_delivery: sorted_deliveries(&stats.first_delivery),
        ..NodeReport::default()
    }
}

impl DisseminationProtocol for BrisaNode {
    type Config = BrisaStackConfig;

    fn protocol_name() -> &'static str {
        "Brisa"
    }

    fn build(cfg: &Self::Config, id: NodeId, bctx: &BuildCtx) -> Self {
        let mut node = BrisaNode::new(id, cfg.hpv.clone(), cfg.brisa.clone(), bctx.contact);
        if bctx.is_source {
            node.mark_source();
        }
        node
    }

    fn publish_message(&mut self, ctx: &mut Context<'_, Self::Message>, payload_bytes: usize) {
        self.publish(ctx, payload_bytes);
    }

    fn report(&self) -> NodeReport {
        let core = self.brisa();
        let stats = core.stats();
        NodeReport {
            delivered: stats.delivered,
            duplicates_per_message: stats.duplicates_per_message(),
            // The delivery ledger is sequence-indexed, so this is already
            // in ascending sequence order (and empty under scale-mode
            // counter tracking).
            first_delivery: stats.delivery.iter_times().collect(),
            parents: core.parents(),
            depth: core.depth(),
            degree: core.children().len(),
            construction_time: stats.construction_time(),
            repairs: RepairTelemetry {
                soft_repairs: stats.soft_repairs,
                hard_repairs: stats.hard_repairs,
                soft_delays_us: stats.soft_repair_delays_us.clone(),
                hard_delays_us: stats.hard_repair_delays_us.clone(),
                parents_lost: stats.parents_lost.clone(),
                orphaned: stats.orphaned.clone(),
                gap_requests: stats.gap_retransmit_requests,
                retransmissions_served: stats.retransmissions_served,
            },
        }
    }

    fn scale_report(&self, publish_times: &[brisa_simnet::SimTime]) -> ScaleNodeReport {
        let stats = self.brisa().stats();
        let mut latency = stats.delivery.latency_hist().clone();
        if latency.is_empty() && stats.delivered > 0 {
            // Full tracking: the histogram was never streamed, so derive it
            // from the recorded first-delivery times (exactly what the
            // counter tracking would have produced — the publish schedule
            // is deterministic).
            for (seq, t) in stats.delivery.iter_times() {
                if let Some(&published) = publish_times.get(seq as usize) {
                    latency.record_us(t.saturating_since(published).as_micros());
                }
            }
        }
        ScaleNodeReport {
            delivered: stats.delivered,
            duplicates: stats.duplicates,
            latency,
        }
    }
}

impl DisseminationProtocol for FloodNode {
    type Config = HyParViewConfig;

    fn protocol_name() -> &'static str {
        "flood"
    }

    fn build(cfg: &Self::Config, id: NodeId, bctx: &BuildCtx) -> Self {
        // Everyone joins through the contact point (the source), as in the
        // BRISA bootstrap.
        FloodNode::new(id, cfg.clone(), bctx.contact)
    }

    fn publish_message(&mut self, ctx: &mut Context<'_, Self::Message>, payload_bytes: usize) {
        self.publish(ctx, payload_bytes);
    }

    fn report(&self) -> NodeReport {
        delivery_report(self.stats())
    }
}

impl DisseminationProtocol for SimpleTreeNode {
    type Config = ();

    fn protocol_name() -> &'static str {
        "SimpleTree"
    }

    fn build(_cfg: &Self::Config, _id: NodeId, bctx: &BuildCtx) -> Self {
        // The first node is the central coordinator every joiner registers
        // with.
        SimpleTreeNode::new(bctx.contact)
    }

    fn publish_message(&mut self, ctx: &mut Context<'_, Self::Message>, payload_bytes: usize) {
        self.publish(ctx, payload_bytes);
    }

    fn report(&self) -> NodeReport {
        NodeReport {
            parents: self.parent().into_iter().collect(),
            degree: self.children().len(),
            ..delivery_report(self.stats())
        }
    }
}

impl DisseminationProtocol for SimpleGossipNode {
    type Config = GossipConfig;

    fn protocol_name() -> &'static str {
        "SimpleGossip"
    }

    fn build(cfg: &Self::Config, id: NodeId, bctx: &BuildCtx) -> Self {
        // Ring-ish bootstrap seeds over the initial population; late joiners
        // seed from random early nodes.
        let n = bctx.population.max(1);
        let seeds: Vec<NodeId> = (1..=4u32)
            .map(|k| NodeId(bctx.index.wrapping_add(k * 7) % n))
            .collect();
        SimpleGossipNode::new(id, cfg.clone(), seeds)
    }

    fn publish_message(&mut self, ctx: &mut Context<'_, Self::Message>, payload_bytes: usize) {
        self.publish(ctx, payload_bytes);
    }

    fn report(&self) -> NodeReport {
        delivery_report(self.stats())
    }
}

impl DisseminationProtocol for TagNode {
    type Config = TagConfig;

    fn protocol_name() -> &'static str {
        "TAG"
    }

    fn build(cfg: &Self::Config, _id: NodeId, bctx: &BuildCtx) -> Self {
        // The join-time-sorted linked list chains through the most recently
        // joined node.
        TagNode::new(cfg.clone(), bctx.prev)
    }

    fn publish_message(&mut self, ctx: &mut Context<'_, Self::Message>, payload_bytes: usize) {
        self.publish(ctx, payload_bytes);
    }

    fn report(&self) -> NodeReport {
        let ts = self.tag_stats();
        NodeReport {
            parents: self.parent().into_iter().collect(),
            degree: self.children().len(),
            construction_time: ts.construction_time(),
            repairs: RepairTelemetry {
                soft_repairs: ts.soft_repairs,
                hard_repairs: ts.hard_repairs,
                soft_delays_us: ts.soft_repair_delays_us.clone(),
                hard_delays_us: ts.hard_repair_delays_us.clone(),
                ..RepairTelemetry::default()
            },
            ..delivery_report(self.stats())
        }
    }
}
