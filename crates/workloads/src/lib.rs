//! # brisa-workloads — experiment harness for the BRISA reproduction
//!
//! Turns the protocol crates into the experiments of the paper's evaluation:
//!
//! * [`spec`] — scenario descriptions: stream shape, testbed, churn phase
//!   (the Splay churn script of Listing 1), HyParView/BRISA parameters;
//! * [`scenarios`] — one canonical parameter set per figure/table, at the
//!   paper's full scale or a reduced quick scale;
//! * [`brisa_run`] — the BRISA runner: bootstrap → (churn) → stream →
//!   metric collection;
//! * [`baseline_runs`] — the same loop for flooding, SimpleGossip,
//!   SimpleTree and TAG;
//! * [`result`] — the collected metrics (per-node summaries, phase
//!   bandwidth, churn reports).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline_runs;
pub mod brisa_run;
pub mod result;
pub mod scenarios;
pub mod spec;

pub use baseline_runs::{
    run_flood, run_simple_gossip, run_simple_tree, run_tag, BaselineNodeSummary,
    BaselineRunResult, BaselineScenario,
};
pub use brisa_run::{run_brisa, BrisaRunResult};
pub use result::{split_bandwidth, ChurnReport, NodeSummary, PhaseBandwidth};
pub use scenarios::Scale;
pub use spec::{BrisaScenario, ChurnEvent, ChurnSpec, StreamSpec, Testbed};
