//! # brisa-workloads — experiment harness for the BRISA reproduction
//!
//! Turns the protocol crates into the experiments of the paper's evaluation,
//! all running on **one generic engine**:
//!
//! * [`engine`] — the protocol-generic pipeline (bootstrap → churn → stream
//!   → collect) behind every experiment, driven by the
//!   [`DisseminationProtocol`] trait;
//! * [`protocols`] — the trait implementations for BRISA and the four
//!   baselines (the only per-protocol code in the experiment path);
//! * [`invariants`] — online invariant checking: an [`InvariantSuite`]
//!   evaluated *during* the drive phase (delivery sanity, tree validity,
//!   FIFO link-clock monotonicity) attached through
//!   [`engine::Runner::invariants`];
//! * [`matrix`] — the parallel sweep driver: [`run_matrix`] fans independent
//!   (scenario × seed × parameter) cells across threads with bit-identical
//!   results to a sequential loop;
//! * [`spec`] — scenario descriptions: stream shape, testbed, churn phase
//!   (the Splay churn script of Listing 1), HyParView/BRISA parameters;
//! * [`chaos`] — named chaos scripts (faults + timed kills/restarts/flash
//!   joins) shared by the simulator and the live soak harness;
//! * [`scenarios`] — one canonical parameter set per figure/table, at the
//!   paper's full scale or a reduced quick scale;
//! * [`brisa_run`] / [`baseline_runs`] — thin adapters translating the
//!   engine's generic result into the BRISA/baseline result types;
//! * [`result`] — the collected metrics (per-node summaries, phase
//!   bandwidth, churn reports).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline_runs;
pub mod brisa_run;
pub mod chaos;
pub mod engine;
pub mod invariants;
pub mod matrix;
pub mod protocols;
pub mod result;
pub mod scenarios;
pub mod spec;

pub use baseline_runs::{
    delivered_map, run_flood, run_simple_gossip, run_simple_tree, run_tag, BaselineNodeSummary,
    BaselineRunResult,
};
pub use brisa_run::{run_brisa, BrisaRunResult};
pub use brisa_simnet::{PartitionMode, SchedulerKind, TraceOp};
pub use chaos::{ChaosEvent, ChaosEventKind, ChaosSchedule};
pub use engine::{
    completeness_of, delivery_rate_of, BuildCtx, DisseminationProtocol, EngineResult, IntoRunSpec,
    NodeOutcome, NodeReport, RepairTelemetry, RunSpec, Runner, ScaleNodeReport, StreamingSummary,
};
#[allow(deprecated)]
pub use engine::{run_experiment, run_experiment_checked, run_experiment_with_telemetry};
pub use invariants::{
    check_delivery_report, DeliveryInvariant, Invariant, InvariantCtx, InvariantSuite,
    InvariantViolation, LinkClockInvariant, NetQuery, TreeValidityInvariant,
};
pub use matrix::{derive_seed, matrix_threads, run_matrix, run_matrix_sequential};
pub use protocols::BrisaStackConfig;
pub use result::{split_bandwidth, ChurnReport, NodeSummary, PhaseBandwidth};
pub use scenarios::Scale;
pub use spec::{
    BaselineScenario, BrisaScenario, ChurnEvent, ChurnSpec, FaultSpec, MaintenanceTempo,
    PartitionPhase, ResultMode, ScaleEvent, ScaleEventKind, StreamSpec, Testbed,
    FIRST_PUBLISH_DELAY,
};
