//! Parallel multi-run driver.
//!
//! Sweep experiments (Figure 2's view sizes, Table I's size × churn ×
//! structure grid, the ablations) run many *independent* simulations. Each
//! cell is deterministic given its scenario (and seed), so the sweep can fan
//! out across OS threads without touching the results: [`run_matrix`]
//! produces **bit-identical output to a sequential loop** for the same
//! cells, in cell order — the only thing that changes is wall-clock time.
//!
//! Cells are handed to workers through an atomic cursor (work stealing), so
//! heterogeneous cell durations (512-node cells next to 128-node cells)
//! still keep every core busy.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Derives the deterministic seed of cell `index` from a base seed
/// (SplitMix64 of the pair). Use this when building matrix cells so that
/// every cell gets an independent, reproducible random stream no matter
/// which thread executes it.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    brisa_simnet::seed::split_mix64(base, index)
}

/// Worker count: the `BRISA_THREADS` environment variable if set, otherwise
/// the machine's available parallelism.
pub fn matrix_threads() -> usize {
    if let Ok(v) = std::env::var("BRISA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `run` over every cell, fanning out across up to
/// [`matrix_threads`] OS threads, and returns the results **in cell
/// order**. Each invocation receives the cell index alongside the cell, so
/// cells can derive per-cell seeds with [`derive_seed`].
///
/// Because every cell is an independent deterministic simulation, the
/// result is identical to [`run_matrix_sequential`] for the same input
/// (asserted by the engine's determinism tests).
pub fn run_matrix<S, R, F>(cells: &[S], run: F) -> Vec<R>
where
    S: Sync,
    R: Send,
    F: Fn(usize, &S) -> R + Sync,
{
    let threads = matrix_threads().min(cells.len());
    if threads <= 1 {
        return run_matrix_sequential(cells, run);
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let result = run(i, &cells[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every cell index below len() is executed")
        })
        .collect()
}

/// The sequential reference implementation of [`run_matrix`]: same
/// signature, same results, one cell at a time on the calling thread.
pub fn run_matrix_sequential<S, R, F>(cells: &[S], run: F) -> Vec<R>
where
    F: Fn(usize, &S) -> R,
{
    cells
        .iter()
        .enumerate()
        .map(|(i, cell)| run(i, cell))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential_and_preserves_order() {
        let cells: Vec<u64> = (0..64).collect();
        let run = |i: usize, c: &u64| derive_seed(*c, i as u64);
        let par = run_matrix(&cells, run);
        let seq = run_matrix_sequential(&cells, run);
        assert_eq!(par, seq);
        assert_eq!(par.len(), 64);
    }

    #[test]
    fn empty_and_single_cell_matrices() {
        let none: Vec<u32> = Vec::new();
        assert!(run_matrix(&none, |_, c| *c).is_empty());
        assert_eq!(run_matrix(&[7u32], |_, c| *c * 2), vec![14]);
    }

    #[test]
    fn derived_seeds_differ_per_cell() {
        let s: Vec<u64> = (0..100).map(|i| derive_seed(0xB215A, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len(), "cell seeds must not collide");
    }

    #[test]
    fn thread_count_env_override() {
        // Cannot mutate the environment safely in tests; just sanity-check
        // the default path.
        assert!(matrix_threads() >= 1);
    }
}
