//! Experiment runners for the baseline protocols.
//!
//! Each runner mirrors [`crate::brisa_run::run_brisa`]: bootstrap, optional
//! churn, stream injection, metric collection. The collected fields are the
//! ones the comparison experiments need (Figures 9, 12, 13, 14 and
//! Tables I–II).

use crate::result::{split_bandwidth, PhaseBandwidth};
use crate::spec::{ChurnEvent, ChurnSpec, StreamSpec, Testbed};
use brisa_baselines::{
    FloodNode, GossipConfig, SimpleGossipNode, SimpleTreeNode, TagConfig, TagNode,
};
use brisa_membership::HyParViewConfig;
use brisa_simnet::{Network, NetworkConfig, NodeId, Protocol, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Common per-node metrics for a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineNodeSummary {
    /// The node.
    pub id: NodeId,
    /// True for the stream source.
    pub is_source: bool,
    /// Messages delivered.
    pub delivered: u64,
    /// Average duplicates per delivered message.
    pub duplicates_per_message: f64,
    /// Mean injection-to-delivery delay in milliseconds.
    pub routing_delay_ms: Option<f64>,
    /// Time between first and last delivery in seconds.
    pub dissemination_latency_secs: Option<f64>,
    /// Construction time in milliseconds (TAG only).
    pub construction_time_ms: Option<f64>,
    /// Bandwidth by phase.
    pub bandwidth: PhaseBandwidth,
}

/// Outcome of a baseline run.
#[derive(Debug)]
pub struct BaselineRunResult {
    /// Which protocol ran (display label).
    pub protocol: &'static str,
    /// The stream source.
    pub source: NodeId,
    /// Messages injected.
    pub messages_published: u64,
    /// Per-node summaries (live nodes only).
    pub nodes: Vec<BaselineNodeSummary>,
    /// Soft repairs observed (TAG only).
    pub soft_repairs: u64,
    /// Hard repairs observed (TAG only).
    pub hard_repairs: u64,
    /// Hard-repair recovery delays in milliseconds (TAG only).
    pub hard_repair_delays_ms: Vec<f64>,
    /// Soft-repair recovery delays in milliseconds (TAG only).
    pub soft_repair_delays_ms: Vec<f64>,
}

impl BaselineRunResult {
    /// Fraction of live non-source nodes that delivered every message.
    pub fn completeness(&self) -> f64 {
        let non_source: Vec<&BaselineNodeSummary> =
            self.nodes.iter().filter(|n| !n.is_source).collect();
        if non_source.is_empty() {
            return 1.0;
        }
        non_source
            .iter()
            .filter(|n| n.delivered >= self.messages_published)
            .count() as f64
            / non_source.len() as f64
    }

    /// Mean upload MB transmitted per node (stabilisation + dissemination),
    /// the quantity of Figure 12.
    pub fn mean_data_transmitted_mb(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.bandwidth.total_uploaded_mb()).sum::<f64>()
            / self.nodes.len() as f64
    }
}

/// Parameters shared by every baseline run.
#[derive(Debug, Clone)]
pub struct BaselineScenario {
    /// System size.
    pub nodes: u32,
    /// HyParView view size (flooding) / list-tree fanout knobs use defaults.
    pub view_size: usize,
    /// Testbed latency model.
    pub testbed: Testbed,
    /// Deterministic seed.
    pub seed: u64,
    /// Stream shape.
    pub stream: StreamSpec,
    /// Optional churn phase (only TAG reacts meaningfully; SimpleTree and
    /// SimpleGossip tolerate it passively).
    pub churn: Option<ChurnSpec>,
    /// Bootstrap duration.
    pub bootstrap: SimDuration,
    /// Drain duration after the last injection.
    pub drain: SimDuration,
}

impl Default for BaselineScenario {
    fn default() -> Self {
        BaselineScenario {
            nodes: 128,
            view_size: 4,
            testbed: Testbed::Cluster,
            seed: 0xB215A,
            stream: StreamSpec::default(),
            churn: None,
            bootstrap: SimDuration::from_secs(30),
            drain: SimDuration::from_secs(30),
        }
    }
}

impl BaselineScenario {
    /// A small scenario suitable for tests.
    pub fn small_test(nodes: u32) -> Self {
        BaselineScenario {
            nodes,
            stream: StreamSpec::short(10, 256),
            bootstrap: SimDuration::from_secs(20),
            drain: SimDuration::from_secs(20),
            ..Default::default()
        }
    }
}

/// Everything the generic driver needs to know about a protocol.
struct Driver<P: Protocol> {
    protocol: &'static str,
    publish: fn(&mut P, &mut brisa_simnet::Context<'_, P::Message>, usize),
}

/// Generic bootstrap + churn + stream + collect loop.
#[allow(clippy::too_many_arguments)]
fn drive<P, FBuild, FCollect>(
    sc: &BaselineScenario,
    driver: Driver<P>,
    mut build: FBuild,
    collect: FCollect,
) -> BaselineRunResult
where
    P: Protocol,
    FBuild: FnMut(&mut Network<P>, u32, Option<NodeId>, SimTime) -> NodeId,
    FCollect: Fn(&P, &[SimTime]) -> (BaselineNodeSummaryPartial, TagExtras),
{
    let mut net: Network<P> = Network::new(
        NetworkConfig { seed: sc.seed, ..Default::default() },
        sc.testbed.latency_model(sc.seed),
    );
    let mut harness_rng = SmallRng::seed_from_u64(sc.seed ^ 0x5EED);
    let source = build(&mut net, 0, None, SimTime::ZERO);
    let join_window = sc.bootstrap / 2;
    let mut last = source;
    for i in 1..sc.nodes {
        let at = SimTime::ZERO + join_window * i as u64 / sc.nodes.max(1) as u64;
        last = build(&mut net, i, Some(last), at);
    }
    net.run_until(SimTime::ZERO + sc.bootstrap);
    let stab_end_sec = net.now().second_bucket() + 1;

    let stream_start = net.now() + SimDuration::from_millis(100);
    let interval = sc.stream.interval();
    let churn_events: Vec<(SimTime, ChurnEvent)> = sc
        .churn
        .map(|c| c.schedule(stream_start, sc.nodes as usize))
        .unwrap_or_default();
    let stream_duration = match sc.churn {
        Some(c) if c.duration > sc.stream.duration() => c.duration,
        _ => sc.stream.duration(),
    };
    let total_messages = (stream_duration.as_micros() / interval.as_micros().max(1)).max(1);

    enum Step {
        Publish,
        Churn(ChurnEvent),
    }
    let mut schedule: Vec<(SimTime, Step)> = (0..total_messages)
        .map(|seq| (stream_start + interval * seq, Step::Publish))
        .collect();
    schedule.extend(churn_events.into_iter().map(|(t, e)| (t, Step::Churn(e))));
    schedule.sort_by_key(|(t, _)| *t);

    let mut publish_times = Vec::with_capacity(total_messages as usize);
    let mut next_join_index = sc.nodes;
    for (at, step) in schedule {
        net.run_until(at);
        match step {
            Step::Publish => {
                publish_times.push(net.now());
                net.invoke(source, |node, ctx| {
                    (driver.publish)(node, ctx, sc.stream.payload_bytes)
                });
            }
            Step::Churn(ChurnEvent::Fail) => {
                let mut alive: Vec<NodeId> = net
                    .alive_ids()
                    .into_iter()
                    .filter(|&id| id != source)
                    .collect();
                alive.shuffle(&mut harness_rng);
                if let Some(victim) = alive.first().copied() {
                    net.crash(victim);
                }
            }
            Step::Churn(ChurnEvent::Join) => {
                let now = net.now();
                let joined = build(&mut net, next_join_index, Some(last), now);
                last = joined;
                next_join_index += 1;
            }
        }
    }
    net.run_for(sc.drain);
    let end_sec = net.now().second_bucket() + 1;
    let bw = split_bandwidth(net.bandwidth(), stab_end_sec, end_sec);

    let mut nodes = Vec::new();
    let mut soft_repairs = 0;
    let mut hard_repairs = 0;
    let mut soft_delays = Vec::new();
    let mut hard_delays = Vec::new();
    for id in net.alive_ids() {
        let p = net.node(id).expect("alive");
        let (partial, extras) = collect(p, &publish_times);
        soft_repairs += extras.soft_repairs;
        hard_repairs += extras.hard_repairs;
        soft_delays.extend(extras.soft_delays_ms);
        hard_delays.extend(extras.hard_delays_ms);
        nodes.push(BaselineNodeSummary {
            id,
            is_source: id == source,
            delivered: partial.delivered,
            duplicates_per_message: partial.duplicates_per_message,
            routing_delay_ms: if id == source { None } else { partial.routing_delay_ms },
            dissemination_latency_secs: partial.dissemination_latency_secs,
            construction_time_ms: partial.construction_time_ms,
            bandwidth: bw.get(&id).cloned().unwrap_or_default(),
        });
    }
    BaselineRunResult {
        protocol: driver.protocol,
        source,
        messages_published: total_messages,
        nodes,
        soft_repairs,
        hard_repairs,
        hard_repair_delays_ms: hard_delays,
        soft_repair_delays_ms: soft_delays,
    }
}

/// Protocol-agnostic per-node fields produced by the collector closures.
struct BaselineNodeSummaryPartial {
    delivered: u64,
    duplicates_per_message: f64,
    routing_delay_ms: Option<f64>,
    dissemination_latency_secs: Option<f64>,
    construction_time_ms: Option<f64>,
}

/// TAG-only aggregates.
#[derive(Default)]
struct TagExtras {
    soft_repairs: u64,
    hard_repairs: u64,
    soft_delays_ms: Vec<f64>,
    hard_delays_ms: Vec<f64>,
}

fn delivery_metrics(
    stats: &brisa_baselines::DeliveryStats,
    publish_times: &[SimTime],
) -> (u64, f64, Option<f64>, Option<f64>) {
    let mut delays = Vec::new();
    for (seq, &t) in &stats.first_delivery {
        if let Some(&pub_t) = publish_times.get(*seq as usize) {
            delays.push(t.saturating_since(pub_t).as_millis_f64());
        }
    }
    let routing = if delays.is_empty() {
        None
    } else {
        Some(delays.iter().sum::<f64>() / delays.len() as f64)
    };
    let span = stats
        .delivery_span()
        .map(|(a, b)| b.saturating_since(a).as_secs_f64());
    (stats.delivered, stats.duplicates_per_message(), routing, span)
}

/// Runs plain flooding over HyParView.
pub fn run_flood(sc: &BaselineScenario) -> BaselineRunResult {
    let view = sc.view_size;
    let source_cell = std::cell::Cell::new(None::<NodeId>);
    drive(
        sc,
        Driver { protocol: "flood", publish: |n: &mut FloodNode, ctx, p| n.publish(ctx, p) },
        move |net, _idx, contact, at| {
            let cfg = HyParViewConfig::with_active_size(view);
            // Everyone joins through the first node (the source/contact
            // point), as in the BRISA bootstrap.
            let join_target = source_cell.get().or(contact);
            let id = net.add_node_at(at, move |id| FloodNode::new(id, cfg, join_target));
            if source_cell.get().is_none() {
                source_cell.set(Some(id));
            }
            id
        },
        |node, publish_times| {
            let (delivered, dups, routing, span) = delivery_metrics(node.stats(), publish_times);
            (
                BaselineNodeSummaryPartial {
                    delivered,
                    duplicates_per_message: dups,
                    routing_delay_ms: routing,
                    dissemination_latency_secs: span,
                    construction_time_ms: None,
                },
                TagExtras::default(),
            )
        },
    )
}

/// Runs the SimpleTree baseline (centralized random tree, push).
pub fn run_simple_tree(sc: &BaselineScenario) -> BaselineRunResult {
    let coordinator_cell = std::cell::Cell::new(None::<NodeId>);
    drive(
        sc,
        Driver {
            protocol: "SimpleTree",
            publish: |n: &mut SimpleTreeNode, ctx, p| n.publish(ctx, p),
        },
        move |net, _idx, _contact, at| {
            let coord = coordinator_cell.get();
            let id = net.add_node_at(at, move |_| SimpleTreeNode::new(coord));
            if coordinator_cell.get().is_none() {
                coordinator_cell.set(Some(id));
            }
            id
        },
        |node, publish_times| {
            let (delivered, dups, routing, span) = delivery_metrics(node.stats(), publish_times);
            (
                BaselineNodeSummaryPartial {
                    delivered,
                    duplicates_per_message: dups,
                    routing_delay_ms: routing,
                    dissemination_latency_secs: span,
                    construction_time_ms: None,
                },
                TagExtras::default(),
            )
        },
    )
}

/// Runs the SimpleGossip baseline (Cyclon + rumor mongering + anti-entropy).
pub fn run_simple_gossip(sc: &BaselineScenario) -> BaselineRunResult {
    let n = sc.nodes;
    drive(
        sc,
        Driver {
            protocol: "SimpleGossip",
            publish: |node: &mut SimpleGossipNode, ctx, p| node.publish(ctx, p),
        },
        move |net, idx, _contact, at| {
            let cfg = GossipConfig::default().for_system_size(n as usize);
            // Ring-ish bootstrap seeds over the initial population; late
            // joiners seed from random early nodes.
            let seeds: Vec<NodeId> = (1..=4u32)
                .map(|k| NodeId((idx.wrapping_add(k * 7)) % n.max(1)))
                .collect();
            net.add_node_at(at, move |id| SimpleGossipNode::new(id, cfg, seeds))
        },
        |node, publish_times| {
            let (delivered, dups, routing, span) = delivery_metrics(node.stats(), publish_times);
            (
                BaselineNodeSummaryPartial {
                    delivered,
                    duplicates_per_message: dups,
                    routing_delay_ms: routing,
                    dissemination_latency_secs: span,
                    construction_time_ms: None,
                },
                TagExtras::default(),
            )
        },
    )
}

/// Runs the TAG baseline (linked list + tree + gossip, pull dissemination).
pub fn run_tag(sc: &BaselineScenario) -> BaselineRunResult {
    drive(
        sc,
        Driver { protocol: "TAG", publish: |n: &mut TagNode, ctx, p| n.publish(ctx, p) },
        move |net, _idx, contact, at| {
            net.add_node_at(at, move |_| TagNode::new(TagConfig::default(), contact))
        },
        |node, publish_times| {
            let (delivered, dups, routing, span) = delivery_metrics(node.stats(), publish_times);
            let ts = node.tag_stats();
            (
                BaselineNodeSummaryPartial {
                    delivered,
                    duplicates_per_message: dups,
                    routing_delay_ms: routing,
                    dissemination_latency_secs: span,
                    construction_time_ms: ts.construction_time().map(|d| d.as_millis_f64()),
                },
                TagExtras {
                    soft_repairs: ts.soft_repairs,
                    hard_repairs: ts.hard_repairs,
                    soft_delays_ms: ts
                        .soft_repair_delays_us
                        .iter()
                        .map(|&us| us as f64 / 1000.0)
                        .collect(),
                    hard_delays_ms: ts
                        .hard_repair_delays_us
                        .iter()
                        .map(|&us| us as f64 / 1000.0)
                        .collect(),
                },
            )
        },
    )
}

/// Helper: map of node -> delivered for quick assertions in tests.
pub fn delivered_map(result: &BaselineRunResult) -> HashMap<NodeId, u64> {
    result.nodes.iter().map(|n| (n.id, n.delivered)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_run_is_complete_with_duplicates() {
        let sc = BaselineScenario::small_test(32);
        let r = run_flood(&sc);
        assert_eq!(r.protocol, "flood");
        assert!((r.completeness() - 1.0).abs() < 1e-9);
        let dup_total: f64 = r.nodes.iter().map(|n| n.duplicates_per_message).sum();
        assert!(dup_total > 0.0, "flooding always yields duplicates");
    }

    #[test]
    fn simple_tree_run_has_zero_duplicates() {
        let sc = BaselineScenario::small_test(32);
        let r = run_simple_tree(&sc);
        assert!((r.completeness() - 1.0).abs() < 1e-9);
        assert!(r.nodes.iter().all(|n| n.duplicates_per_message == 0.0));
    }

    #[test]
    fn simple_gossip_run_is_complete() {
        let sc = BaselineScenario::small_test(32);
        let r = run_simple_gossip(&sc);
        assert!((r.completeness() - 1.0).abs() < 1e-9, "anti-entropy ensures completeness");
    }

    #[test]
    fn tag_run_is_complete_and_reports_construction_times() {
        let mut sc = BaselineScenario::small_test(32);
        // Pull-based dissemination needs a longer drain.
        sc.drain = SimDuration::from_secs(60);
        let r = run_tag(&sc);
        assert!((r.completeness() - 1.0).abs() < 1e-9);
        let with_ct = r.nodes.iter().filter(|n| n.construction_time_ms.is_some()).count();
        assert!(with_ct > r.nodes.len() / 2, "most nodes report a construction time");
        assert!(!delivered_map(&r).is_empty());
    }
}
