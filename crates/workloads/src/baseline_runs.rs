//! Experiment runners for the baseline protocols.
//!
//! Each runner is a two-line adapter over [`crate::engine::Runner`]: it
//! builds the protocol's run-wide configuration from the
//! [`BaselineScenario`] and translates the generic [`EngineResult`] into the
//! comparison-friendly [`BaselineRunResult`]. The bootstrap, churn, stream
//! and collection phases all live in the engine, shared with the BRISA
//! runner — there is exactly one experiment loop in the workspace.

use crate::engine::{EngineResult, IntoRunSpec, Runner};
use crate::result::PhaseBandwidth;
use crate::spec::BaselineScenario;
use brisa_baselines::{
    FloodNode, GossipConfig, SimpleGossipNode, SimpleTreeNode, TagConfig, TagNode,
};
use brisa_membership::HyParViewConfig;
use brisa_simnet::NodeId;
use std::collections::HashMap;

/// Common per-node metrics for a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineNodeSummary {
    /// The node.
    pub id: NodeId,
    /// True for the stream source.
    pub is_source: bool,
    /// Messages delivered.
    pub delivered: u64,
    /// Average duplicates per delivered message.
    pub duplicates_per_message: f64,
    /// Mean injection-to-delivery delay in milliseconds.
    pub routing_delay_ms: Option<f64>,
    /// Time between first and last delivery in seconds.
    pub dissemination_latency_secs: Option<f64>,
    /// Construction time in milliseconds (TAG only).
    pub construction_time_ms: Option<f64>,
    /// Bandwidth by phase.
    pub bandwidth: PhaseBandwidth,
}

/// Outcome of a baseline run.
#[derive(Debug)]
pub struct BaselineRunResult {
    /// Which protocol ran (display label).
    pub protocol: &'static str,
    /// The stream source.
    pub source: NodeId,
    /// Nodes bootstrapped before the stream started (churn joiners have
    /// identifiers `>= original_nodes`).
    pub original_nodes: u32,
    /// Messages injected.
    pub messages_published: u64,
    /// Per-node summaries (live nodes only).
    pub nodes: Vec<BaselineNodeSummary>,
    /// Soft repairs observed (TAG only).
    pub soft_repairs: u64,
    /// Hard repairs observed (TAG only).
    pub hard_repairs: u64,
    /// Hard-repair recovery delays in milliseconds (TAG only).
    pub hard_repair_delays_ms: Vec<f64>,
    /// Soft-repair recovery delays in milliseconds (TAG only).
    pub soft_repair_delays_ms: Vec<f64>,
}

impl BaselineRunResult {
    /// Fraction of live, non-source nodes *present before the stream
    /// started* that delivered every message — the same eligibility rule as
    /// [`crate::engine::EngineResult::completeness`]: nodes joined by churn
    /// legitimately miss the messages published before they existed.
    pub fn completeness(&self) -> f64 {
        let eligible: Vec<&BaselineNodeSummary> = self
            .nodes
            .iter()
            .filter(|n| !n.is_source && n.id.0 < self.original_nodes)
            .collect();
        if eligible.is_empty() {
            return 1.0;
        }
        eligible
            .iter()
            .filter(|n| n.delivered >= self.messages_published)
            .count() as f64
            / eligible.len() as f64
    }

    /// Mean upload MB transmitted per node (stabilisation + dissemination),
    /// the quantity of Figure 12.
    pub fn mean_data_transmitted_mb(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes
            .iter()
            .map(|n| n.bandwidth.total_uploaded_mb())
            .sum::<f64>()
            / self.nodes.len() as f64
    }
}

/// Translates an [`EngineResult`] into the baseline result type,
/// aggregating TAG's repair telemetry.
fn adapt(r: EngineResult) -> BaselineRunResult {
    let mut soft_repairs = 0;
    let mut hard_repairs = 0;
    let mut soft_delays = Vec::new();
    let mut hard_delays = Vec::new();
    let nodes = r
        .nodes
        .iter()
        .map(|o| {
            let repairs = &o.report.repairs;
            soft_repairs += repairs.soft_repairs;
            hard_repairs += repairs.hard_repairs;
            soft_delays.extend(repairs.soft_delays_us.iter().map(|&us| us as f64 / 1000.0));
            hard_delays.extend(repairs.hard_delays_us.iter().map(|&us| us as f64 / 1000.0));
            BaselineNodeSummary {
                id: o.id,
                is_source: o.is_source,
                delivered: o.report.delivered,
                duplicates_per_message: o.report.duplicates_per_message,
                routing_delay_ms: o.routing_delay_ms,
                dissemination_latency_secs: o.dissemination_latency_secs,
                construction_time_ms: o.report.construction_time.map(|d| d.as_millis_f64()),
                bandwidth: o.bandwidth.clone(),
            }
        })
        .collect();
    BaselineRunResult {
        protocol: r.protocol,
        source: r.source,
        original_nodes: r.original_nodes,
        messages_published: r.messages_published,
        nodes,
        soft_repairs,
        hard_repairs,
        hard_repair_delays_ms: hard_delays,
        soft_repair_delays_ms: soft_delays,
    }
}

/// Runs plain flooding over HyParView.
pub fn run_flood(sc: &BaselineScenario) -> BaselineRunResult {
    let cfg = HyParViewConfig::with_active_size(sc.view_size);
    adapt(Runner::<FloodNode>::new(&cfg, &sc.run_spec()).run())
}

/// Runs the SimpleTree baseline (centralized random tree, push).
pub fn run_simple_tree(sc: &BaselineScenario) -> BaselineRunResult {
    adapt(Runner::<SimpleTreeNode>::new(&(), &sc.run_spec()).run())
}

/// Runs the SimpleGossip baseline (Cyclon + rumor mongering + anti-entropy).
pub fn run_simple_gossip(sc: &BaselineScenario) -> BaselineRunResult {
    let cfg = GossipConfig::default().for_system_size(sc.nodes as usize);
    adapt(Runner::<SimpleGossipNode>::new(&cfg, &sc.run_spec()).run())
}

/// Runs the TAG baseline (linked list + tree + gossip, pull dissemination).
pub fn run_tag(sc: &BaselineScenario) -> BaselineRunResult {
    adapt(Runner::<TagNode>::new(&TagConfig::default(), &sc.run_spec()).run())
}

/// Helper: map of node -> delivered for quick assertions in tests.
pub fn delivered_map(result: &BaselineRunResult) -> HashMap<NodeId, u64> {
    result.nodes.iter().map(|n| (n.id, n.delivered)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisa_simnet::SimDuration;

    #[test]
    fn flood_run_is_complete_with_duplicates() {
        let sc = BaselineScenario::small_test(32);
        let r = run_flood(&sc);
        assert_eq!(r.protocol, "flood");
        assert!((r.completeness() - 1.0).abs() < 1e-9);
        let dup_total: f64 = r.nodes.iter().map(|n| n.duplicates_per_message).sum();
        assert!(dup_total > 0.0, "flooding always yields duplicates");
    }

    #[test]
    fn simple_tree_run_has_zero_duplicates() {
        let sc = BaselineScenario::small_test(32);
        let r = run_simple_tree(&sc);
        assert!((r.completeness() - 1.0).abs() < 1e-9);
        assert!(r.nodes.iter().all(|n| n.duplicates_per_message == 0.0));
    }

    #[test]
    fn simple_gossip_run_is_complete() {
        let sc = BaselineScenario::small_test(32);
        let r = run_simple_gossip(&sc);
        assert!(
            (r.completeness() - 1.0).abs() < 1e-9,
            "anti-entropy ensures completeness"
        );
    }

    #[test]
    fn tag_run_is_complete_and_reports_construction_times() {
        let mut sc = BaselineScenario::small_test(32);
        // Pull-based dissemination needs a longer drain.
        sc.drain = SimDuration::from_secs(60);
        let r = run_tag(&sc);
        assert!((r.completeness() - 1.0).abs() < 1e-9);
        let with_ct = r
            .nodes
            .iter()
            .filter(|n| n.construction_time_ms.is_some())
            .count();
        assert!(
            with_ct > r.nodes.len() / 2,
            "most nodes report a construction time"
        );
        assert!(!delivered_map(&r).is_empty());
    }
}
