//! Result types shared by the experiment runners.

use brisa_simnet::{BandwidthMeter, NodeId};
use std::collections::HashMap;

/// Per-node, per-phase bandwidth figures (KB/s averaged over the phase, plus
/// total bytes), matching what Figures 10–12 report.
#[derive(Debug, Clone, Default)]
pub struct PhaseBandwidth {
    /// Upload KB/s during the stabilisation (bootstrap) phase.
    pub stab_up_kbps: f64,
    /// Download KB/s during the stabilisation phase.
    pub stab_down_kbps: f64,
    /// Upload KB/s during the dissemination phase.
    pub diss_up_kbps: f64,
    /// Download KB/s during the dissemination phase.
    pub diss_down_kbps: f64,
    /// Total bytes uploaded during stabilisation.
    pub stab_up_bytes: u64,
    /// Total bytes downloaded during stabilisation.
    pub stab_down_bytes: u64,
    /// Total bytes uploaded during dissemination.
    pub diss_up_bytes: u64,
    /// Total bytes downloaded during dissemination.
    pub diss_down_bytes: u64,
}

impl PhaseBandwidth {
    /// Total data transmitted (upload side), both phases, in MB.
    pub fn total_uploaded_mb(&self) -> f64 {
        (self.stab_up_bytes + self.diss_up_bytes) as f64 / (1024.0 * 1024.0)
    }
}

/// Splits every node's bandwidth counters into a stabilisation phase
/// `[0, boundary_sec)` and a dissemination phase `[boundary_sec, end_sec)`.
pub fn split_bandwidth(
    meter: &BandwidthMeter,
    boundary_sec: usize,
    end_sec: usize,
) -> HashMap<NodeId, PhaseBandwidth> {
    let mut out = HashMap::new();
    for (id, bw) in meter.iter() {
        let sum = |buckets: &[u64], from: usize, to: usize| -> u64 {
            let to = to.min(buckets.len());
            if from < to {
                buckets[from..to].iter().sum()
            } else {
                0
            }
        };
        let stab_up_bytes = sum(&bw.upload_per_sec, 0, boundary_sec);
        let stab_down_bytes = sum(&bw.download_per_sec, 0, boundary_sec);
        let diss_up_bytes = sum(&bw.upload_per_sec, boundary_sec, end_sec);
        let diss_down_bytes = sum(&bw.download_per_sec, boundary_sec, end_sec);
        let stab_secs = boundary_sec.max(1) as f64;
        let diss_secs = end_sec.saturating_sub(boundary_sec).max(1) as f64;
        out.insert(
            id,
            PhaseBandwidth {
                stab_up_kbps: stab_up_bytes as f64 / 1024.0 / stab_secs,
                stab_down_kbps: stab_down_bytes as f64 / 1024.0 / stab_secs,
                diss_up_kbps: diss_up_bytes as f64 / 1024.0 / diss_secs,
                diss_down_kbps: diss_down_bytes as f64 / 1024.0 / diss_secs,
                stab_up_bytes,
                stab_down_bytes,
                diss_up_bytes,
                diss_down_bytes,
            },
        );
    }
    out
}

/// Summary of one node's behaviour over a run, shared by the BRISA and
/// baseline runners (fields that do not apply to a protocol stay `None`/0).
#[derive(Debug, Clone)]
pub struct NodeSummary {
    /// The node.
    pub id: NodeId,
    /// True for the stream source.
    pub is_source: bool,
    /// Stream messages delivered.
    pub delivered: u64,
    /// Average duplicates per delivered message.
    pub duplicates_per_message: f64,
    /// Depth in the emerged structure (hops from the source).
    pub depth: Option<usize>,
    /// Out-degree (children) in the emerged structure.
    pub degree: usize,
    /// Parents in the emerged structure.
    pub parents: Vec<NodeId>,
    /// Mean delay between a message's injection and its first delivery at
    /// this node, in milliseconds.
    pub routing_delay_ms: Option<f64>,
    /// One-way "typical" latency from the source to this node, in
    /// milliseconds (the point-to-point reference of Figure 9).
    pub point_to_point_ms: f64,
    /// Time between this node's first and last delivery, in seconds
    /// (Table II's dissemination latency).
    pub dissemination_latency_secs: Option<f64>,
    /// Structure construction time in milliseconds (Figure 13).
    pub construction_time_ms: Option<f64>,
    /// Bandwidth split by phase.
    pub bandwidth: PhaseBandwidth,
}

/// Aggregated churn behaviour over a run (Table I).
#[derive(Debug, Clone, Default)]
pub struct ChurnReport {
    /// Length of the churn window in minutes.
    pub duration_minutes: f64,
    /// Nodes failed by the churn schedule.
    pub failures_injected: usize,
    /// Nodes joined by the churn schedule.
    pub joins_injected: usize,
    /// Rate at which nodes lost any of their parents (events per minute).
    pub parents_lost_per_min: f64,
    /// Rate at which nodes lost all their parents (events per minute).
    pub orphans_per_min: f64,
    /// Completed soft repairs.
    pub soft_repairs: u64,
    /// Completed hard repairs.
    pub hard_repairs: u64,
    /// Percentage of disconnections repaired with the soft mechanism.
    pub soft_pct: f64,
    /// Percentage of disconnections requiring the hard mechanism.
    pub hard_pct: f64,
    /// Soft repair delays in milliseconds.
    pub soft_delays_ms: Vec<f64>,
    /// Hard repair delays in milliseconds.
    pub hard_delays_ms: Vec<f64>,
}

impl ChurnReport {
    /// Fills the percentage fields from the repair counters.
    pub fn finalise(&mut self) {
        let total = self.soft_repairs + self.hard_repairs;
        if total > 0 {
            self.soft_pct = self.soft_repairs as f64 / total as f64 * 100.0;
            self.hard_pct = self.hard_repairs as f64 / total as f64 * 100.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_report_percentages() {
        let mut r = ChurnReport {
            soft_repairs: 9,
            hard_repairs: 1,
            ..Default::default()
        };
        r.finalise();
        assert!((r.soft_pct - 90.0).abs() < 1e-9);
        assert!((r.hard_pct - 10.0).abs() < 1e-9);
        let mut empty = ChurnReport::default();
        empty.finalise();
        assert_eq!(empty.soft_pct, 0.0);
    }

    #[test]
    fn phase_bandwidth_total() {
        let pb = PhaseBandwidth {
            stab_up_bytes: 1024 * 1024,
            diss_up_bytes: 1024 * 1024,
            ..Default::default()
        };
        assert!((pb.total_uploaded_mb() - 2.0).abs() < 1e-9);
    }
}
