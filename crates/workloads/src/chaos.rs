//! Chaos schedules — one fault/lifecycle script, two execution modes.
//!
//! A [`ChaosSchedule`] names the adversity a run is subjected to: a
//! [`FaultSpec`] (per-link loss, jitter, a timed partition) plus a list of
//! timed lifecycle events (named kills, delayed restarts, flash joins),
//! all expressed relative to stream start. The same schedule drives:
//!
//! * the **simulator**, via [`ChaosSchedule::to_scenario`], which lowers
//!   the schedule onto the engine's [`ScaleEvent`] steps and fault
//!   plumbing; and
//! * a **live cluster**, via the runtime's soak runner, which replays the
//!   events in wall-clock time against real nodes behind the transport
//!   fault shim.
//!
//! Because the shim draws from the same counter-based split-seed PRF as
//! `simnet::faults` ([`brisa_simnet::FaultPrf`]), the stochastic profile
//! means the same thing in both worlds, and the divergence gate in
//! `brisa-bench` can hold the live run to a band around the sim
//! prediction.
//!
//! ## The restart model
//!
//! Live restarts resurrect the *same* identifier with empty state; the
//! simulator cannot re-animate a crashed [`brisa_simnet::NodeId`], so
//! [`ChaosEventKind::Restart`] lowers to a single fresh join
//! (`FlashCrowd { joiners: 1 }`) — a new node with an identifier `≥`
//! the original population. Both models agree on what the metrics see:
//! sim eligibility already excludes the dead original and the fresh
//! joiner, and the live side's survivor metrics exclude ever-killed
//! nodes, so delivery/completeness compare the same undisturbed
//! population. The restarted node's own catch-up (buffer anchoring) is
//! asserted separately by the lifecycle tests.

use brisa_simnet::SimDuration;

use crate::spec::{BrisaScenario, FaultSpec, ScaleEvent, ScaleEventKind, StreamSpec};

/// One timed lifecycle event of a chaos script, relative to stream start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosEvent {
    /// Offset from stream start.
    pub after: SimDuration,
    /// What happens.
    pub kind: ChaosEventKind,
}

/// The kinds of lifecycle event a chaos script can contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEventKind {
    /// Fail-stop the named node (never the source; a schedule naming the
    /// source is rejected by [`ChaosSchedule::validate`]).
    Kill {
        /// Identifier of the victim.
        node: u32,
    },
    /// Restart a previously killed node with empty state. Live: the same
    /// identifier rejoins through the source contact. Sim: lowered to one
    /// fresh join (see the module docs for why the models still compare).
    Restart {
        /// Identifier of the node to resurrect.
        node: u32,
    },
    /// `count` fresh nodes join at once through random live contacts.
    FlashJoin {
        /// Number of simultaneous joiners.
        count: u32,
    },
}

/// A named chaos script: stochastic faults plus timed lifecycle events.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    /// Scenario name, used as the identity key in soak artifacts.
    pub name: String,
    /// Stochastic link faults and the optional partition window.
    pub faults: FaultSpec,
    /// Timed lifecycle events relative to stream start.
    pub events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// A quiet schedule with the given name — no faults, no events.
    pub fn named(name: &str) -> Self {
        ChaosSchedule {
            name: name.to_string(),
            faults: FaultSpec::default(),
            events: Vec::new(),
        }
    }

    /// Checks the script is well-formed for a `population`-node run with
    /// `source` as the stream source: events sorted by time, kills and
    /// restarts name original non-source nodes, and every restart is
    /// preceded by a kill of the same node.
    pub fn validate(&self, population: u32, source: u32) -> Result<(), String> {
        let mut killed: Vec<u32> = Vec::new();
        let mut last = SimDuration::ZERO;
        for ev in &self.events {
            if ev.after < last {
                return Err(format!(
                    "[{}] events out of order at {:?}",
                    self.name, ev.after
                ));
            }
            last = ev.after;
            match ev.kind {
                ChaosEventKind::Kill { node } => {
                    if node == source {
                        return Err(format!("[{}] schedule kills the source", self.name));
                    }
                    if node >= population {
                        return Err(format!(
                            "[{}] kill names node {node} outside population {population}",
                            self.name
                        ));
                    }
                    killed.push(node);
                }
                ChaosEventKind::Restart { node } => {
                    if !killed.contains(&node) {
                        return Err(format!(
                            "[{}] restart of node {node} without a prior kill",
                            self.name
                        ));
                    }
                }
                ChaosEventKind::FlashJoin { count } => {
                    if count == 0 {
                        return Err(format!("[{}] zero-sized flash join", self.name));
                    }
                }
            }
        }
        Ok(())
    }

    /// Identifiers of every node the script kills (deduplicated, sorted).
    pub fn killed_nodes(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .events
            .iter()
            .filter_map(|ev| match ev.kind {
                ChaosEventKind::Kill { node } => Some(node),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Lowers the lifecycle events onto the engine's scale-event steps:
    /// kills stay named, restarts and flash joins become fresh joins.
    pub fn sim_events(&self) -> Vec<ScaleEvent> {
        self.events
            .iter()
            .map(|ev| ScaleEvent {
                after: ev.after,
                kind: match ev.kind {
                    ChaosEventKind::Kill { node } => ScaleEventKind::Kill { node },
                    ChaosEventKind::Restart { .. } => ScaleEventKind::FlashCrowd { joiners: 1 },
                    ChaosEventKind::FlashJoin { count } => {
                        ScaleEventKind::FlashCrowd { joiners: count }
                    }
                },
            })
            .collect()
    }

    /// The simulator scenario predicting this schedule's live run: same
    /// population, stream, seed, faults and (lowered) events.
    pub fn to_scenario(&self, nodes: u32, stream: StreamSpec, seed: u64) -> BrisaScenario {
        BrisaScenario {
            nodes,
            seed,
            stream,
            faults: self.faults.clone(),
            events: self.sim_events(),
            ..BrisaScenario::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PartitionPhase;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn validate_accepts_well_formed_scripts() {
        let mut sched = ChaosSchedule::named("combined");
        sched.faults = FaultSpec::loss(0.01);
        sched.faults.partition = Some(PartitionPhase::drop(0.25, secs(10), secs(15)));
        sched.events = vec![
            ChaosEvent {
                after: secs(5),
                kind: ChaosEventKind::Kill { node: 3 },
            },
            ChaosEvent {
                after: secs(20),
                kind: ChaosEventKind::Restart { node: 3 },
            },
            ChaosEvent {
                after: secs(30),
                kind: ChaosEventKind::FlashJoin { count: 4 },
            },
        ];
        assert!(sched.validate(16, 0).is_ok());
        assert_eq!(sched.killed_nodes(), vec![3]);
    }

    #[test]
    fn validate_rejects_malformed_scripts() {
        let kill_source = ChaosSchedule {
            events: vec![ChaosEvent {
                after: secs(1),
                kind: ChaosEventKind::Kill { node: 0 },
            }],
            ..ChaosSchedule::named("bad")
        };
        assert!(kill_source.validate(16, 0).is_err());

        let out_of_range = ChaosSchedule {
            events: vec![ChaosEvent {
                after: secs(1),
                kind: ChaosEventKind::Kill { node: 99 },
            }],
            ..ChaosSchedule::named("bad")
        };
        assert!(out_of_range.validate(16, 0).is_err());

        let orphan_restart = ChaosSchedule {
            events: vec![ChaosEvent {
                after: secs(1),
                kind: ChaosEventKind::Restart { node: 3 },
            }],
            ..ChaosSchedule::named("bad")
        };
        assert!(orphan_restart.validate(16, 0).is_err());

        let unsorted = ChaosSchedule {
            events: vec![
                ChaosEvent {
                    after: secs(5),
                    kind: ChaosEventKind::Kill { node: 3 },
                },
                ChaosEvent {
                    after: secs(1),
                    kind: ChaosEventKind::Kill { node: 4 },
                },
            ],
            ..ChaosSchedule::named("bad")
        };
        assert!(unsorted.validate(16, 0).is_err());
    }

    #[test]
    fn sim_lowering_maps_lifecycle_events() {
        let sched = ChaosSchedule {
            events: vec![
                ChaosEvent {
                    after: secs(5),
                    kind: ChaosEventKind::Kill { node: 7 },
                },
                ChaosEvent {
                    after: secs(12),
                    kind: ChaosEventKind::Restart { node: 7 },
                },
                ChaosEvent {
                    after: secs(20),
                    kind: ChaosEventKind::FlashJoin { count: 3 },
                },
            ],
            ..ChaosSchedule::named("map")
        };
        let lowered = sched.sim_events();
        assert_eq!(lowered.len(), 3);
        assert_eq!(lowered[0].kind, ScaleEventKind::Kill { node: 7 });
        assert_eq!(lowered[1].kind, ScaleEventKind::FlashCrowd { joiners: 1 });
        assert_eq!(lowered[2].kind, ScaleEventKind::FlashCrowd { joiners: 3 });
        assert_eq!(lowered[0].after, secs(5));
    }

    #[test]
    fn to_scenario_carries_faults_and_events() {
        let mut sched = ChaosSchedule::named("carry");
        sched.faults = FaultSpec::loss(0.01);
        sched.events = vec![ChaosEvent {
            after: secs(3),
            kind: ChaosEventKind::Kill { node: 2 },
        }];
        let sc = sched.to_scenario(32, StreamSpec::short(20, 256), 0xC4405);
        assert_eq!(sc.nodes, 32);
        assert_eq!(sc.seed, 0xC4405);
        assert_eq!(sc.faults.loss_rate, 0.01);
        assert_eq!(sc.events.len(), 1);
    }
}
