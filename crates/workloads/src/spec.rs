//! Experiment specifications.
//!
//! Every figure and table of the paper is an instance of a small set of
//! parameters: system size, active view size, structure mode, parent
//! selection strategy, testbed (cluster or PlanetLab), stream shape, and an
//! optional churn phase. These types capture those parameters; the runner
//! modules execute them.

use brisa::{BrisaConfig, DeliveryTracking, ParentStrategy, StructureMode};
use brisa_membership::HyParViewConfig;
use brisa_simnet::latency::{ClusterLatency, LatencyModel, PlanetLabLatency};
use brisa_simnet::{LinkFaults, NodeId, PartitionMode, PartitionSpec, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Delay between the end of the bootstrap window and the first stream
/// injection. Public because scale-mode delivery tracking derives the
/// publish schedule (`stream_start + seq × interval`) from it.
pub const FIRST_PUBLISH_DELAY: SimDuration = SimDuration::from_millis(100);

/// Which testbed the experiment models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Testbed {
    /// The 15-machine 1 Gbps switched cluster (up to 512 logical nodes).
    Cluster,
    /// The PlanetLab slice (heavy-tailed, asymmetric WAN latencies).
    PlanetLab,
}

impl Testbed {
    /// Builds the latency model for this testbed.
    pub fn latency_model(self, seed: u64) -> Box<dyn LatencyModel> {
        match self {
            Testbed::Cluster => Box::new(ClusterLatency::default()),
            Testbed::PlanetLab => Box::new(PlanetLabLatency::new(seed, 40.0, 0.7, 0.2)),
        }
    }

    /// Builds the same latency model behind a shareable handle, as the
    /// sharded driver needs (every worker shard samples link latencies).
    /// Both testbed models are stateless, hence `Sync`.
    pub fn latency_model_shared(self, seed: u64) -> Arc<dyn LatencyModel + Send + Sync> {
        match self {
            Testbed::Cluster => Arc::new(ClusterLatency::default()),
            Testbed::PlanetLab => Arc::new(PlanetLabLatency::new(seed, 40.0, 0.7, 0.2)),
        }
    }
}

/// Shape of the injected message stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Number of messages injected by the source.
    pub messages: u64,
    /// Injection rate in messages per second (the paper uses 5/s).
    pub rate_per_sec: f64,
    /// Payload size in bytes.
    pub payload_bytes: usize,
}

impl Default for StreamSpec {
    fn default() -> Self {
        StreamSpec {
            messages: 500,
            rate_per_sec: 5.0,
            payload_bytes: 1024,
        }
    }
}

impl StreamSpec {
    /// A shorter stream, convenient for tests and examples.
    pub fn short(messages: u64, payload_bytes: usize) -> Self {
        StreamSpec {
            messages,
            rate_per_sec: 5.0,
            payload_bytes,
        }
    }

    /// Interval between two injections.
    pub fn interval(&self) -> SimDuration {
        SimDuration::from_millis_f64(1000.0 / self.rate_per_sec.max(0.001))
    }

    /// Total injection duration.
    pub fn duration(&self) -> SimDuration {
        self.interval() * self.messages
    }
}

/// A constant-churn phase, reproducing the Splay churn script of Listing 1:
/// every `interval`, `rate_percent` of the nodes fail and the same number of
/// fresh nodes join.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Percentage of the population replaced per interval (the paper uses 3%
    /// and 5% per minute).
    pub rate_percent: f64,
    /// Churn interval (60 s in the paper).
    pub interval: SimDuration,
    /// Total duration of the churn phase (600 s in the paper).
    pub duration: SimDuration,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        ChurnSpec {
            rate_percent: 3.0,
            interval: SimDuration::from_secs(60),
            duration: SimDuration::from_secs(600),
        }
    }
}

/// One churn event of the generated schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Fail one randomly chosen live node.
    Fail,
    /// Add one fresh node.
    Join,
}

impl ChurnSpec {
    /// Expands the spec into a per-event schedule starting at `start`:
    /// `(time, event)` pairs, with fails and joins spread evenly across each
    /// interval. `population` is the nominal system size used to compute the
    /// per-interval event count.
    pub fn schedule(&self, start: SimTime, population: usize) -> Vec<(SimTime, ChurnEvent)> {
        let per_interval = ((population as f64) * self.rate_percent / 100.0).round() as usize;
        let mut events = Vec::new();
        if per_interval == 0 || self.interval.is_zero() {
            return events;
        }
        let intervals = (self.duration.as_micros() / self.interval.as_micros()).max(1);
        for i in 0..intervals {
            let interval_start = start + self.interval * i;
            let step = self.interval / (per_interval as u64 * 2).max(1);
            for k in 0..per_interval {
                let fail_at = interval_start + step * (2 * k as u64);
                let join_at = interval_start + step * (2 * k as u64 + 1);
                events.push((fail_at, ChurnEvent::Fail));
                events.push((join_at, ChurnEvent::Join));
            }
        }
        events.sort_by_key(|(t, _)| *t);
        events
    }

    /// Total expected fail events over the whole phase for `population`.
    pub fn total_failures(&self, population: usize) -> usize {
        let per_interval = ((population as f64) * self.rate_percent / 100.0).round() as usize;
        let intervals = (self.duration.as_micros() / self.interval.as_micros().max(1)).max(1);
        per_interval * intervals as usize
    }
}

/// How the engine materialises run results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResultMode {
    /// Per-node outcomes with full first-delivery vectors, per-phase
    /// bandwidth and point-to-point reference latencies — everything the
    /// classic figures consume. O(nodes × messages) memory at collect time.
    #[default]
    Classic,
    /// Scale mode: no per-node materialisation. The engine folds every
    /// node's counters into one [`StreamingSummary`](crate::engine::StreamingSummary)
    /// (delivery counters + a mergeable latency histogram), selects
    /// totals-only bandwidth metering, and samples the simulator's
    /// bytes-per-node footprint. O(nodes) memory, independent of stream
    /// length.
    Streaming,
}

/// A scheduled large-scale incident, expressed relative to stream start.
/// Unlike [`ChurnSpec`]'s gradual grind, these are the step-function events
/// the scale scenarios exercise: thousands of nodes arriving at once, or
/// half the overlay failing simultaneously.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleEvent {
    /// Offset from stream start.
    pub after: SimDuration,
    /// What happens.
    pub kind: ScaleEventKind,
}

/// The kinds of large-scale incident.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScaleEventKind {
    /// `joiners` fresh nodes join through the contact point at the same
    /// instant (flash crowd).
    FlashCrowd {
        /// Number of simultaneous joiners.
        joiners: u32,
    },
    /// A fraction of the live non-source population crashes simultaneously
    /// (catastrophic correlated failure).
    MassCrash {
        /// Fraction of live non-source nodes to crash, clamped to `[0, 1]`.
        fraction: f64,
    },
    /// One *named* node fails (fail-stop). Unlike [`ChurnEvent::Fail`]'s
    /// random victim, the identifier is part of the schedule, so the same
    /// chaos script kills the same node in the simulator and in a live
    /// cluster. Killing the source or an already-dead node is a no-op.
    Kill {
        /// Identifier of the victim (the `NodeId` index).
        node: u32,
    },
}

/// Adversarial conditions injected into a run: per-link loss, latency
/// degradation, and an optional timed partition. Inert by default — a
/// default `FaultSpec` produces a run bit-identical to one without any
/// fault machinery (asserted by `tests/integration_faults.rs`).
///
/// The stochastic profile activates at **stream start** (the structure
/// bootstraps under nominal conditions, then the stream runs under
/// adversity — the shape of the paper's reliability experiments); the
/// partition window is expressed relative to stream start too.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Probability in `[0, 1]` that any single transmission is lost.
    pub loss_rate: f64,
    /// Maximum extra uniform per-message delay.
    pub jitter: SimDuration,
    /// Multiplier on every sampled link latency (`1.0` = nominal).
    pub latency_factor: f64,
    /// Optional partition-then-heal phase.
    pub partition: Option<PartitionPhase>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            loss_rate: 0.0,
            jitter: SimDuration::ZERO,
            latency_factor: 1.0,
            partition: None,
        }
    }
}

/// A timed partition riding a [`FaultSpec`]: a fraction of the initial
/// population is cut from the rest (source included on the majority side)
/// for a window relative to stream start, then the cut heals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionPhase {
    /// Fraction of the initial population forming the cut-away island
    /// (clamped to leave the source and at least one island node).
    pub fraction: f64,
    /// Offset of the cut from stream start.
    pub start_after: SimDuration,
    /// How long the cut lasts before healing.
    pub duration: SimDuration,
    /// Drop or delay cross-cut traffic.
    pub mode: PartitionMode,
}

impl PartitionPhase {
    /// A `fraction` cut starting `start_after` into the stream and lasting
    /// `duration`, dropping cross-cut traffic.
    pub fn drop(fraction: f64, start_after: SimDuration, duration: SimDuration) -> Self {
        PartitionPhase {
            fraction,
            start_after,
            duration,
            mode: PartitionMode::Drop,
        }
    }

    /// Like [`PartitionPhase::drop`], but cross-cut traffic is *held* for
    /// the window and released at the heal — a congestion/grey-failure
    /// window rather than a clean cut. Arrival is `max(send + latency,
    /// heal)` in both the sim and the live shim.
    pub fn delay(fraction: f64, start_after: SimDuration, duration: SimDuration) -> Self {
        PartitionPhase {
            fraction,
            start_after,
            duration,
            mode: PartitionMode::Delay,
        }
    }

    /// The island: the lowest-identifier non-source nodes making up
    /// `fraction` of the initial `population`. Deterministic, so benches
    /// and invariant checkers can name the cut-away nodes without access to
    /// engine internals.
    pub fn island(&self, population: u32) -> Vec<NodeId> {
        let count = ((population as f64) * self.fraction).round() as u32;
        let count = count.clamp(1, population.saturating_sub(1).max(1));
        (1..=count).map(NodeId).collect()
    }

    /// The simulator-level partition for a stream starting at
    /// `stream_start` over `population` initial nodes.
    pub fn to_partition(&self, stream_start: SimTime, population: u32) -> PartitionSpec {
        let start = stream_start + self.start_after;
        PartitionSpec::new(
            self.island(population),
            start,
            start + self.duration,
            self.mode,
        )
    }
}

impl FaultSpec {
    /// A pure per-link loss profile.
    pub fn loss(loss_rate: f64) -> Self {
        FaultSpec {
            loss_rate,
            ..Default::default()
        }
    }

    /// True if this spec cannot affect the run in any way — the engine then
    /// skips the fault plumbing entirely, guaranteeing bit-identical
    /// execution to a run without it.
    pub fn is_inert(&self) -> bool {
        self.link_faults().is_inert() && self.partition.is_none()
    }

    /// The simulator-level stochastic profile.
    pub fn link_faults(&self) -> LinkFaults {
        LinkFaults {
            loss_rate: self.loss_rate,
            jitter: self.jitter,
            latency_factor: self.latency_factor,
        }
    }
}

/// Tempo of the stack's periodic maintenance: the HyParView passive-view
/// shuffle and keep-alive probes, and BRISA's repair-supervision tick.
///
/// The defaults match the values used throughout the paper's evaluation.
/// Capacity scenarios slow them down: at a million nodes the background
/// chatter — not the stream — dominates the simulator's event budget
/// (every keep-alive is `O(active view)` events per node per period), so
/// [`crate::scenarios::scale_million`] stretches all three periods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintenanceTempo {
    /// Period of the proactive passive-view shuffle.
    pub shuffle_period: SimDuration,
    /// Period of the keep-alive probes (doubling as RTT measurements).
    pub keepalive_period: SimDuration,
    /// Period of BRISA's repair-supervision timer.
    pub repair_tick_period: SimDuration,
}

impl Default for MaintenanceTempo {
    fn default() -> Self {
        let hpv = HyParViewConfig::default();
        MaintenanceTempo {
            shuffle_period: hpv.shuffle_period,
            keepalive_period: hpv.keepalive_period,
            repair_tick_period: BrisaConfig::default().repair_tick_period,
        }
    }
}

impl MaintenanceTempo {
    /// The slowed-down tempo of million-node capacity runs: keep-alives at
    /// 10 s, shuffles at 30 s, repair supervision at 2 s. Failure detection
    /// and repair latency degrade accordingly — acceptable for the no-fault
    /// capacity headline, wrong for the fault scenarios.
    pub fn relaxed() -> Self {
        MaintenanceTempo {
            shuffle_period: SimDuration::from_secs(30),
            keepalive_period: SimDuration::from_secs(10),
            repair_tick_period: SimDuration::from_secs(2),
        }
    }
}

/// Full specification of a BRISA experiment run.
#[derive(Debug, Clone)]
pub struct BrisaScenario {
    /// Number of nodes bootstrapped before the stream starts.
    pub nodes: u32,
    /// HyParView active view size.
    pub view_size: usize,
    /// HyParView expansion factor (2 in the evaluation, 1 for Figure 8).
    pub expansion_factor: usize,
    /// Structure mode (tree or DAG).
    pub mode: StructureMode,
    /// Parent selection strategy.
    pub strategy: ParentStrategy,
    /// Testbed latency model.
    pub testbed: Testbed,
    /// Deterministic seed.
    pub seed: u64,
    /// Stream shape.
    pub stream: StreamSpec,
    /// Optional churn phase running concurrently with the stream.
    pub churn: Option<ChurnSpec>,
    /// Adversarial network conditions (loss, jitter, partitions). Inert by
    /// default.
    pub faults: FaultSpec,
    /// Time allotted for the join phase and overlay stabilisation before the
    /// stream starts.
    pub bootstrap: SimDuration,
    /// Time to keep simulating after the last injection so in-flight
    /// messages and repairs drain.
    pub drain: SimDuration,
    /// Scheduled large-scale incidents (flash crowds, mass crashes),
    /// relative to stream start. Empty by default.
    pub events: Vec<ScaleEvent>,
    /// Classic per-node results or scale-mode streaming results.
    pub results: ResultMode,
    /// Periodic-maintenance tempo (shuffle / keep-alive / repair tick).
    pub tempo: MaintenanceTempo,
}

impl Default for BrisaScenario {
    fn default() -> Self {
        BrisaScenario {
            nodes: 128,
            view_size: 4,
            expansion_factor: 2,
            mode: StructureMode::Tree,
            strategy: ParentStrategy::FirstComeFirstPicked,
            testbed: Testbed::Cluster,
            seed: 0xB215A,
            stream: StreamSpec::default(),
            churn: None,
            faults: FaultSpec::default(),
            bootstrap: SimDuration::from_secs(30),
            drain: SimDuration::from_secs(20),
            events: Vec::new(),
            results: ResultMode::Classic,
            tempo: MaintenanceTempo::default(),
        }
    }
}

/// Parameters of a baseline run, shared by every comparison protocol
/// (flooding, SimpleGossip, SimpleTree, TAG).
#[derive(Debug, Clone)]
pub struct BaselineScenario {
    /// System size.
    pub nodes: u32,
    /// HyParView view size (flooding) / list-tree fanout knobs use defaults.
    pub view_size: usize,
    /// Testbed latency model.
    pub testbed: Testbed,
    /// Deterministic seed.
    pub seed: u64,
    /// Stream shape.
    pub stream: StreamSpec,
    /// Optional churn phase (only TAG reacts meaningfully; SimpleTree and
    /// SimpleGossip tolerate it passively).
    pub churn: Option<ChurnSpec>,
    /// Adversarial network conditions (loss, jitter, partitions). Inert by
    /// default.
    pub faults: FaultSpec,
    /// Bootstrap duration.
    pub bootstrap: SimDuration,
    /// Drain duration after the last injection.
    pub drain: SimDuration,
}

impl Default for BaselineScenario {
    fn default() -> Self {
        BaselineScenario {
            nodes: 128,
            view_size: 4,
            testbed: Testbed::Cluster,
            seed: 0xB215A,
            stream: StreamSpec::default(),
            churn: None,
            faults: FaultSpec::default(),
            bootstrap: SimDuration::from_secs(30),
            drain: SimDuration::from_secs(30),
        }
    }
}

impl BaselineScenario {
    /// A small scenario suitable for tests.
    pub fn small_test(nodes: u32) -> Self {
        BaselineScenario {
            nodes,
            stream: StreamSpec::short(10, 256),
            bootstrap: SimDuration::from_secs(20),
            drain: SimDuration::from_secs(20),
            ..Default::default()
        }
    }
}

impl BrisaScenario {
    /// The HyParView configuration implied by this scenario.
    pub fn hyparview_config(&self) -> HyParViewConfig {
        let mut cfg = HyParViewConfig::with_active_size(self.view_size)
            .expansion_factor(self.expansion_factor);
        cfg.shuffle_period = self.tempo.shuffle_period;
        cfg.keepalive_period = self.tempo.keepalive_period;
        cfg
    }

    /// Injection time of the first stream message. Deterministic — the
    /// engine runs the bootstrap phase to exactly `bootstrap` before
    /// scheduling the stream — so scale-mode nodes can compute per-message
    /// latencies against `stream_start() + seq × stream.interval()` without
    /// carrying publish timestamps on the wire.
    pub fn stream_start(&self) -> SimTime {
        SimTime::ZERO + self.bootstrap + FIRST_PUBLISH_DELAY
    }

    /// The BRISA configuration implied by this scenario. Under
    /// [`ResultMode::Streaming`] the nodes keep compact counter tracking
    /// against this scenario's publish schedule instead of per-sequence
    /// delivery times.
    pub fn brisa_config(&self) -> BrisaConfig {
        BrisaConfig {
            mode: self.mode,
            strategy: self.strategy,
            tracking: match self.results {
                ResultMode::Classic => DeliveryTracking::Full,
                ResultMode::Streaming => DeliveryTracking::Counters {
                    stream_start_us: self.stream_start().as_micros(),
                    interval_us: self.stream.interval().as_micros(),
                },
            },
            repair_tick_period: self.tempo.repair_tick_period,
            ..BrisaConfig::default()
        }
    }

    /// A small scenario suitable for unit/integration tests.
    pub fn small_test(nodes: u32) -> Self {
        BrisaScenario {
            nodes,
            stream: StreamSpec::short(10, 256),
            bootstrap: SimDuration::from_secs(20),
            drain: SimDuration::from_secs(10),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_timing() {
        let s = StreamSpec::default();
        assert_eq!(s.interval(), SimDuration::from_millis(200));
        assert_eq!(s.duration(), SimDuration::from_secs(100));
        let short = StreamSpec::short(10, 64);
        assert_eq!(short.messages, 10);
        assert_eq!(short.payload_bytes, 64);
    }

    #[test]
    fn churn_schedule_has_balanced_events() {
        let spec = ChurnSpec {
            rate_percent: 5.0,
            interval: SimDuration::from_secs(60),
            duration: SimDuration::from_secs(600),
        };
        let sched = spec.schedule(SimTime::from_secs(100), 128);
        let fails = sched.iter().filter(|(_, e)| *e == ChurnEvent::Fail).count();
        let joins = sched.iter().filter(|(_, e)| *e == ChurnEvent::Join).count();
        // 5% of 128 = 6.4 -> 6 per minute, 10 minutes -> 60 each.
        assert_eq!(fails, 60);
        assert_eq!(joins, 60);
        assert_eq!(spec.total_failures(128), 60);
        // Sorted by time, all within the phase.
        assert!(sched.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(sched.first().unwrap().0 >= SimTime::from_secs(100));
        assert!(sched.last().unwrap().0 <= SimTime::from_secs(700));
    }

    #[test]
    fn zero_rate_churn_is_empty() {
        let spec = ChurnSpec {
            rate_percent: 0.0,
            ..Default::default()
        };
        assert!(spec.schedule(SimTime::ZERO, 100).is_empty());
    }

    #[test]
    fn scenario_configs_reflect_parameters() {
        let sc = BrisaScenario {
            view_size: 8,
            expansion_factor: 1,
            mode: StructureMode::Dag { parents: 2 },
            strategy: ParentStrategy::DelayAware,
            ..Default::default()
        };
        assert_eq!(sc.hyparview_config().active_size, 8);
        assert_eq!(sc.hyparview_config().max_active(), 8);
        assert_eq!(sc.brisa_config().mode.target_parents(), 2);
        assert_eq!(sc.brisa_config().strategy, ParentStrategy::DelayAware);
        let small = BrisaScenario::small_test(16);
        assert_eq!(small.nodes, 16);
        assert_eq!(small.stream.messages, 10);
    }

    #[test]
    fn testbed_models_build() {
        let _c = Testbed::Cluster.latency_model(1);
        let _p = Testbed::PlanetLab.latency_model(1);
    }

    #[test]
    fn default_fault_spec_is_inert() {
        let spec = FaultSpec::default();
        assert!(spec.is_inert());
        assert!(spec.link_faults().is_inert());
        assert!(!FaultSpec::loss(0.01).is_inert());
        assert!(!FaultSpec {
            partition: Some(PartitionPhase::drop(
                0.25,
                SimDuration::from_secs(5),
                SimDuration::from_secs(10),
            )),
            ..Default::default()
        }
        .is_inert());
    }

    #[test]
    fn partition_phase_island_and_window() {
        let phase =
            PartitionPhase::drop(0.25, SimDuration::from_secs(5), SimDuration::from_secs(10));
        let island = phase.island(48);
        assert_eq!(island.len(), 12);
        assert_eq!(island.first(), Some(&NodeId(1)), "the source is never cut");
        let spec = phase.to_partition(SimTime::from_secs(30), 48);
        assert_eq!(spec.start, SimTime::from_secs(35));
        assert_eq!(spec.end, SimTime::from_secs(45));
        assert_eq!(spec.island(), island.as_slice());
        // Degenerate fractions stay within [1, population - 1].
        assert_eq!(
            PartitionPhase::drop(0.0, SimDuration::ZERO, SimDuration::ZERO)
                .island(10)
                .len(),
            1
        );
        assert_eq!(
            PartitionPhase::drop(5.0, SimDuration::ZERO, SimDuration::ZERO)
                .island(10)
                .len(),
            9
        );
    }
}
