//! The generic experiment engine.
//!
//! Every experiment of the paper's evaluation — BRISA and all four baselines,
//! with or without churn — is the same pipeline:
//!
//! 1. **bootstrap** — add the source, stagger the remaining joins over the
//!    first half of the bootstrap window, let the overlay stabilise;
//! 2. **schedule** — merge the stream injections with the (optional) churn
//!    script into one time-ordered schedule;
//! 3. **drive** — replay the schedule through the simulator: publish at the
//!    source, crash random victims, add fresh joiners;
//! 4. **collect** — drain in-flight traffic, then extract per-node metrics,
//!    phase bandwidth and point-to-point reference latencies.
//!
//! [`Runner`] implements that pipeline once, generically over any
//! [`DisseminationProtocol`] and over both simulation drivers — the
//! sequential [`Network`] and the epoch-sharded
//! [`ShardedNetwork`], which produce
//! bit-identical results. The per-protocol knowledge (how to build a node,
//! how to publish, which metrics the node exposes) lives in the trait
//! implementations in [`crate::protocols`]; the protocol-specific result
//! types of [`crate::brisa_run`] and [`crate::baseline_runs`] are thin
//! adapters over [`EngineResult`].
//!
//! ```
//! use brisa_workloads::{Runner, IntoRunSpec, BrisaScenario, BrisaStackConfig};
//! use brisa::BrisaNode;
//!
//! let sc = BrisaScenario::small_test(16);
//! let cfg = BrisaStackConfig { hpv: sc.hyparview_config(), brisa: sc.brisa_config() };
//! let result = Runner::<BrisaNode>::new(&cfg, &sc.run_spec()).run();
//! assert!(result.delivery_rate() > 0.99);
//! ```

use crate::invariants::{InvariantCtx, InvariantSuite, NetQuery};
use crate::result::{split_bandwidth, PhaseBandwidth};
use crate::spec::{
    BaselineScenario, BrisaScenario, ChurnEvent, ChurnSpec, FaultSpec, ResultMode, ScaleEvent,
    ScaleEventKind, StreamSpec, Testbed, FIRST_PUBLISH_DELAY,
};
use brisa_metrics::LatencyHistogram;
use brisa_simnet::{
    BandwidthMeter, Context, Footprint, LinkFaults, MeterMode, NetStats, Network, NetworkConfig,
    NodeId, PartitionSpec, Protocol, SchedulerKind, ShardedNetwork, SimDuration, SimTime, TraceOp,
};
use brisa_telemetry::Telemetry;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Everything a protocol may want to know when one node is created.
#[derive(Debug, Clone, Copy)]
pub struct BuildCtx {
    /// Join index of the node: 0 for the source, `1..population` for the
    /// bootstrap joiners, `population..` for churn joiners.
    pub index: u32,
    /// Nominal initial system size.
    pub population: u32,
    /// The system-wide contact point (the source), `None` for the first
    /// node. HyParView-based stacks join through it.
    pub contact: Option<NodeId>,
    /// The most recently added node, `None` for the first. List-ordered
    /// protocols (TAG) chain through it.
    pub prev: Option<NodeId>,
    /// True for the stream source (node 0).
    pub is_source: bool,
}

/// Repair/churn telemetry one node exposes (all zero/empty for protocols
/// without repair machinery).
#[derive(Debug, Clone, Default)]
pub struct RepairTelemetry {
    /// Completed soft repairs.
    pub soft_repairs: u64,
    /// Completed hard repairs.
    pub hard_repairs: u64,
    /// Orphaning-to-adoption delays (µs) for soft repairs.
    pub soft_delays_us: Vec<u64>,
    /// Orphaning-to-adoption delays (µs) for hard repairs.
    pub hard_delays_us: Vec<u64>,
    /// Times at which the node lost a parent.
    pub parents_lost: Vec<SimTime>,
    /// Times at which the node lost *all* parents.
    pub orphaned: Vec<SimTime>,
    /// Retransmission requests issued by the steady-state gap detector.
    pub gap_requests: u64,
    /// Retransmissions this node served to recovering peers.
    pub retransmissions_served: u64,
}

/// Protocol-agnostic snapshot of one node at the end of a run.
#[derive(Debug, Clone, Default)]
pub struct NodeReport {
    /// Stream messages delivered (first receptions).
    pub delivered: u64,
    /// Average duplicate receptions per delivered message.
    pub duplicates_per_message: f64,
    /// `(sequence number, first reception time)` pairs.
    pub first_delivery: Vec<(u64, SimTime)>,
    /// Parents in the emerged structure (empty for structureless protocols).
    pub parents: Vec<NodeId>,
    /// Depth in the emerged structure, if the protocol tracks one.
    pub depth: Option<usize>,
    /// Out-degree (children served).
    pub degree: usize,
    /// Structure construction time, if the protocol tracks one.
    pub construction_time: Option<SimDuration>,
    /// Repair/churn telemetry.
    pub repairs: RepairTelemetry,
}

/// Compact per-node metrics for the scale-mode streaming result path:
/// counters plus a fixed-footprint latency histogram, no per-sequence data.
#[derive(Debug, Clone, Default)]
pub struct ScaleNodeReport {
    /// Stream messages delivered (first receptions).
    pub delivered: u64,
    /// Duplicate receptions.
    pub duplicates: u64,
    /// Injection-to-first-delivery latency distribution.
    pub latency: LatencyHistogram,
}

/// A dissemination protocol stack the generic engine can drive.
///
/// Implemented by [`brisa::BrisaNode`] and all four baselines; adding a new
/// protocol to every experiment of the harness means implementing these four
/// methods.
pub trait DisseminationProtocol: Protocol {
    /// Run-wide configuration shared by every node (cloned into builders).
    type Config: Clone + Send + Sync;

    /// Display label used in result tables.
    fn protocol_name() -> &'static str;

    /// Builds the protocol state for a new node.
    fn build(cfg: &Self::Config, id: NodeId, bctx: &BuildCtx) -> Self;

    /// Publishes the next stream message (called on the source through
    /// [`brisa_simnet::Network::invoke`]).
    fn publish_message(&mut self, ctx: &mut Context<'_, Self::Message>, payload_bytes: usize);

    /// Extracts the end-of-run metrics for this node.
    fn report(&self) -> NodeReport;

    /// Extracts the compact scale-mode metrics for this node.
    ///
    /// The default derives them from [`DisseminationProtocol::report`] and
    /// the engine's publish times — exact, but it materialises the
    /// per-sequence vector it is trying to avoid. Protocols with compact
    /// delivery tracking (BRISA under
    /// [`brisa::DeliveryTracking::Counters`]) override this to return their
    /// streamed counters directly.
    fn scale_report(&self, publish_times: &[SimTime]) -> ScaleNodeReport {
        let report = self.report();
        let mut latency = LatencyHistogram::new();
        for &(seq, t) in &report.first_delivery {
            if let Some(&published) = publish_times.get(seq as usize) {
                latency.record_us(t.saturating_since(published).as_micros());
            }
        }
        ScaleNodeReport {
            delivered: report.delivered,
            duplicates: (report.duplicates_per_message * report.delivered as f64).round() as u64,
            latency,
        }
    }
}

/// Protocol-agnostic parameters of one run. Scenario types convert into
/// this through [`IntoRunSpec`]; the engine never looks at
/// protocol-specific knobs.
///
/// Specs are assembled by the [`IntoRunSpec`] conversions, which also cache
/// derived values ([`RunSpec::stream_start`]) once. The driver-level knobs
/// (`scheduler`, `trace_events`, `shards`) stay freely settable afterwards;
/// mutating `bootstrap` after conversion is not supported (the cached
/// stream start would desync — convert a fresh scenario instead).
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Number of nodes bootstrapped before the stream starts.
    pub nodes: u32,
    /// Deterministic seed (simulator + harness RNG).
    pub seed: u64,
    /// Testbed latency model.
    pub testbed: Testbed,
    /// Stream shape.
    pub stream: StreamSpec,
    /// Optional churn phase running concurrently with the stream.
    pub churn: Option<ChurnSpec>,
    /// Adversarial network conditions, merged into the schedule as fault
    /// steps (loss/jitter switch on at stream start, partitions cut and
    /// heal on their own window). Inert by default.
    pub faults: FaultSpec,
    /// Join-phase/stabilisation window before the stream starts.
    pub bootstrap: SimDuration,
    /// Simulated time after the last injection for traffic to drain.
    pub drain: SimDuration,
    /// Event-queue implementation the simulator uses. Timing wheel by
    /// default; the binary heap is the reference baseline benches compare
    /// against. Both produce bit-identical runs.
    pub scheduler: SchedulerKind,
    /// Record the scheduler push/pop trace of the run (bench-only; see
    /// [`EngineResult::event_trace`]). Sequential driver only — the
    /// sharded driver refuses it.
    pub trace_events: bool,
    /// Scheduled large-scale incidents (flash crowds, mass crashes),
    /// relative to stream start.
    pub events: Vec<ScaleEvent>,
    /// Classic per-node results, or the scale-mode streaming summary.
    pub results: ResultMode,
    /// Worker shards the simulation is partitioned across (1 = the
    /// sequential driver). Sharded runs are bit-identical to sequential
    /// ones; see [`brisa_simnet::ShardedNetwork`].
    pub shards: usize,
    /// Cached injection time of the first stream message, derived from
    /// `bootstrap` at conversion time.
    stream_start: SimTime,
}

impl RunSpec {
    /// Assembles a spec from scenario-level fields, caching derived values
    /// once. Driver knobs (`scheduler`, `trace_events`, `shards`) start at
    /// their defaults.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        nodes: u32,
        seed: u64,
        testbed: Testbed,
        stream: StreamSpec,
        churn: Option<ChurnSpec>,
        faults: FaultSpec,
        bootstrap: SimDuration,
        drain: SimDuration,
        events: Vec<ScaleEvent>,
        results: ResultMode,
    ) -> Self {
        RunSpec {
            nodes,
            seed,
            testbed,
            stream,
            churn,
            faults,
            bootstrap,
            drain,
            scheduler: SchedulerKind::default(),
            trace_events: false,
            events,
            results,
            shards: 1,
            stream_start: SimTime::ZERO + bootstrap + FIRST_PUBLISH_DELAY,
        }
    }

    /// Injection time of the first stream message (the bootstrap phase runs
    /// to exactly `bootstrap` before the stream is scheduled). Cached at
    /// conversion time, so the scale-mode paths that anchor per-message
    /// deadlines to it read a field instead of re-deriving it.
    pub fn stream_start(&self) -> SimTime {
        self.stream_start
    }
}

/// Conversion from a scenario family into the engine's protocol-agnostic
/// [`RunSpec`].
///
/// One trait instead of per-family `From` impls: a new scenario family
/// (chaos, scale) implements [`IntoRunSpec::run_spec`] once and every entry
/// point — [`Runner`], the sweep drivers, the benches — accepts it, without
/// another field-by-field copy of the shared parameters.
pub trait IntoRunSpec {
    /// Builds the protocol-agnostic run parameters for this scenario.
    fn run_spec(&self) -> RunSpec;
}

impl IntoRunSpec for BrisaScenario {
    fn run_spec(&self) -> RunSpec {
        RunSpec::assemble(
            self.nodes,
            self.seed,
            self.testbed,
            self.stream,
            self.churn,
            self.faults.clone(),
            self.bootstrap,
            self.drain,
            self.events.clone(),
            self.results,
        )
    }
}

impl IntoRunSpec for BaselineScenario {
    fn run_spec(&self) -> RunSpec {
        RunSpec::assemble(
            self.nodes,
            self.seed,
            self.testbed,
            self.stream,
            self.churn,
            self.faults.clone(),
            self.bootstrap,
            self.drain,
            Vec::new(),
            ResultMode::Classic,
        )
    }
}

impl IntoRunSpec for RunSpec {
    /// Identity conversion, so generic helpers accept a prepared spec.
    fn run_spec(&self) -> RunSpec {
        self.clone()
    }
}

/// One node's fully derived metrics in an [`EngineResult`].
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// The node.
    pub id: NodeId,
    /// True for the stream source.
    pub is_source: bool,
    /// The protocol's own report.
    pub report: NodeReport,
    /// Mean injection-to-first-delivery delay in milliseconds (`None` for
    /// the source and for nodes that delivered nothing).
    pub routing_delay_ms: Option<f64>,
    /// Time between the first and last delivery, in seconds.
    pub dissemination_latency_secs: Option<f64>,
    /// One-way "typical" latency from the source, in milliseconds.
    pub point_to_point_ms: f64,
    /// Bandwidth split by phase.
    pub bandwidth: PhaseBandwidth,
}

/// Fraction of (node × message) pairs delivered, over the per-node
/// delivered counts of the *eligible* nodes (live, non-source, present
/// before the stream started — the caller filters). The single
/// implementation behind [`EngineResult::delivery_rate`] and the live
/// runtime's `LiveResult::delivery_rate`, so a simulated and a live run of
/// one scenario are scored by the same formula.
pub fn delivery_rate_of(delivered: impl IntoIterator<Item = u64>, published: u64) -> f64 {
    let mut got = 0u64;
    let mut expected = 0u64;
    for d in delivered {
        got += d.min(published);
        expected += published;
    }
    if expected == 0 {
        1.0
    } else {
        got as f64 / expected as f64
    }
}

/// Fraction of eligible nodes that delivered every message; the
/// counterpart of [`delivery_rate_of`] for [`EngineResult::completeness`]
/// and the live runtime.
pub fn completeness_of(delivered: impl IntoIterator<Item = u64>, published: u64) -> f64 {
    let mut complete = 0usize;
    let mut eligible = 0usize;
    for d in delivered {
        eligible += 1;
        if d >= published {
            complete += 1;
        }
    }
    if eligible == 0 {
        1.0
    } else {
        complete as f64 / eligible as f64
    }
}

/// The scale-mode run summary: everything the streaming result path
/// retains instead of per-node outcomes. All counters are exact; only the
/// latency distribution is bucketed (within a factor of two).
#[derive(Debug, Clone, Default)]
pub struct StreamingSummary {
    /// Live, non-source nodes present before the stream started.
    pub eligible: u64,
    /// Eligible nodes that delivered every message.
    pub complete: u64,
    /// Sum over eligible nodes of `min(delivered, published)`.
    pub got: u64,
    /// `eligible × published`.
    pub expected: u64,
    /// First receptions summed over *all* live nodes (source included).
    pub delivered_total: u64,
    /// Duplicate receptions summed over all live nodes.
    pub duplicates_total: u64,
    /// Injection-to-first-delivery latencies, merged over all live nodes.
    pub latency: LatencyHistogram,
    /// Bytes every node uploaded, from the totals-only bandwidth meter.
    pub uploaded_bytes: u64,
    /// Bytes every node downloaded.
    pub downloaded_bytes: u64,
    /// Accounting-based memory footprint sampled at collect time (the
    /// bytes-per-node proxy of the scale benches).
    pub footprint: Footprint,
}

impl StreamingSummary {
    /// Folds another partial summary's counters into this one. Every field
    /// is a sum (the histogram merge is bucket-wise addition), so merging
    /// per-shard partials in any fixed order equals one global fold.
    fn merge_counters(&mut self, other: &StreamingSummary) {
        self.eligible += other.eligible;
        self.complete += other.complete;
        self.got += other.got;
        self.expected += other.expected;
        self.delivered_total += other.delivered_total;
        self.duplicates_total += other.duplicates_total;
        self.latency.merge(&other.latency);
    }
}

/// The protocol-agnostic outcome of one run.
#[derive(Debug, Clone)]
pub struct EngineResult {
    /// Protocol label.
    pub protocol: &'static str,
    /// The stream source.
    pub source: NodeId,
    /// Nodes bootstrapped before the stream started (churn joiners have
    /// identifiers `>= original_nodes`).
    pub original_nodes: u32,
    /// Messages the source injected.
    pub messages_published: u64,
    /// Injection time of every message, indexed by sequence number.
    pub publish_times: Vec<SimTime>,
    /// Per-node outcomes for nodes alive at the end.
    pub nodes: Vec<NodeOutcome>,
    /// Nodes failed by the churn schedule.
    pub failures_injected: usize,
    /// Nodes joined by the churn schedule.
    pub joins_injected: usize,
    /// End of the stabilisation phase (seconds since the start).
    pub stabilization_end_sec: usize,
    /// End of the dissemination phase (seconds since the start).
    pub end_sec: usize,
    /// `[start, end]` of the churn measurement window (stream start to the
    /// end of the drain); repair telemetry is filtered to it.
    pub churn_window: (SimTime, SimTime),
    /// The simulator's own counters (sent/delivered/dropped, fault losses,
    /// partition cuts, events processed).
    pub net_stats: brisa_simnet::NetStats,
    /// The recorded scheduler operation trace, when
    /// [`RunSpec::trace_events`] was set (empty otherwise). Benches replay
    /// it through a scheduler in isolation.
    pub event_trace: Vec<TraceOp>,
    /// The scale-mode summary, present iff the run used
    /// [`ResultMode::Streaming`] (in which case [`EngineResult::nodes`] is
    /// empty).
    pub streaming: Option<StreamingSummary>,
}

impl EngineResult {
    /// Simulator events processed over the whole run (the denominator of
    /// events/sec in wall-clock benches).
    pub fn sim_events(&self) -> u64 {
        self.net_stats.events_processed
    }

    /// Fraction of (eligible node × message) pairs delivered: the
    /// per-message delivery rate over live, non-source nodes present before
    /// the stream started. Coarser than [`EngineResult::completeness`] (a
    /// node missing one message out of 500 barely moves this number but
    /// zeroes its completeness contribution); the headline metric of the
    /// fault sweeps.
    pub fn delivery_rate(&self) -> f64 {
        if let Some(s) = &self.streaming {
            return if s.expected == 0 {
                1.0
            } else {
                s.got as f64 / s.expected as f64
            };
        }
        delivery_rate_of(self.eligible_delivered_counts(), self.messages_published)
    }

    /// Delivered counts of the eligible nodes: live, non-source, present
    /// before the stream started.
    fn eligible_delivered_counts(&self) -> impl Iterator<Item = u64> + '_ {
        self.nodes
            .iter()
            .filter(|n| !n.is_source && n.id.0 < self.original_nodes)
            .map(|n| n.report.delivered)
    }

    /// A compact, fully ordered fingerprint of everything
    /// behaviour-relevant in the result: simulator counters, publish
    /// schedule, and per-node delivery records, parents and bandwidth. Two
    /// runs are observationally identical iff their fingerprints match —
    /// the canonical equality used by the scheduler-equivalence, shard-
    /// equivalence and determinism tests (a divergence in any
    /// unfingerprinted field would pass silently, so new behaviour-relevant
    /// fields belong here).
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        write!(
            out,
            "{}|src={}|ev={}|sent={}|dropped={}|lost={}|cut={}|fails={}|joins={}|",
            self.protocol,
            self.source.0,
            self.net_stats.events_processed,
            self.net_stats.messages_sent,
            self.net_stats.messages_dropped,
            self.net_stats.messages_lost_to_faults,
            self.net_stats.messages_cut_by_partition,
            self.failures_injected,
            self.joins_injected,
        )
        .unwrap();
        for t in &self.publish_times {
            write!(out, "p{};", t.as_micros()).unwrap();
        }
        for n in &self.nodes {
            write!(
                out,
                "n{}:d{}:dup{:.9}:par{:?}:fd{:?}:bw{}-{};",
                n.id.0,
                n.report.delivered,
                n.report.duplicates_per_message,
                n.report.parents.iter().map(|p| p.0).collect::<Vec<_>>(),
                n.report
                    .first_delivery
                    .iter()
                    .map(|(s, t)| (*s, t.as_micros()))
                    .collect::<Vec<_>>(),
                n.bandwidth.stab_up_bytes + n.bandwidth.diss_up_bytes,
                n.bandwidth.stab_down_bytes + n.bandwidth.diss_down_bytes,
            )
            .unwrap();
        }
        if let Some(s) = &self.streaming {
            write!(
                out,
                "stream:el{}:cp{}:got{}:exp{}:del{}:dup{}:lat",
                s.eligible, s.complete, s.got, s.expected, s.delivered_total, s.duplicates_total,
            )
            .unwrap();
            for (i, &b) in s.latency.buckets().iter().enumerate() {
                if b != 0 {
                    write!(out, "{i}x{b},").unwrap();
                }
            }
            out.push(';');
        }
        out
    }

    /// Fraction of live, non-source nodes present before the stream started
    /// that delivered every message.
    pub fn completeness(&self) -> f64 {
        if let Some(s) = &self.streaming {
            return if s.eligible == 0 {
                1.0
            } else {
                s.complete as f64 / s.eligible as f64
            };
        }
        completeness_of(self.eligible_delivered_counts(), self.messages_published)
    }
}

/// One step of the merged experiment schedule.
enum Step {
    Publish,
    Churn(ChurnEvent),
    Fault(FaultAction),
    Scale(ScaleEventKind),
}

/// A scheduled fault transition.
enum FaultAction {
    /// Switch the per-link stochastic profile on (at stream start).
    EnableLink(LinkFaults),
    /// Install a timed partition (at its cut instant; it heals by window).
    StartPartition(PartitionSpec),
}

/// The simulation driver behind one run: the sequential [`Network`] or the
/// epoch-sharded [`ShardedNetwork`]. The pipeline is written once against
/// this enum; both drivers produce bit-identical results (pinned by the
/// shard-equivalence tests), so the choice is pure mechanics — who advances
/// the clock — never behaviour.
// One instance exists per run, on the driving stack frame — the variant
// size gap costs nothing.
#[allow(clippy::large_enum_variant)]
enum Sim<P: DisseminationProtocol> {
    Single(Network<P>),
    Sharded(ShardedNetwork<P>),
}

/// Applies one expression to whichever driver is inside.
macro_rules! on_sim {
    ($self:expr, $net:ident => $e:expr) => {
        match $self {
            Sim::Single($net) => $e,
            Sim::Sharded($net) => $e,
        }
    };
}

impl<P: DisseminationProtocol + Send> Sim<P>
where
    P::Message: Send,
{
    fn now(&self) -> SimTime {
        on_sim!(self, n => n.now())
    }

    fn run_until(&mut self, deadline: SimTime) {
        on_sim!(self, n => { n.run_until(deadline); })
    }

    fn run_for(&mut self, d: SimDuration) {
        on_sim!(self, n => { n.run_for(d); })
    }

    fn add_node(&mut self, build: impl FnOnce(NodeId) -> P) -> NodeId {
        on_sim!(self, n => n.add_node(build))
    }

    fn add_node_at(&mut self, at: SimTime, build: impl FnOnce(NodeId) -> P) -> NodeId {
        on_sim!(self, n => n.add_node_at(at, build))
    }

    fn invoke(&mut self, id: NodeId, f: impl FnOnce(&mut P, &mut Context<'_, P::Message>)) {
        on_sim!(self, n => n.invoke(id, f))
    }

    fn crash(&mut self, id: NodeId) {
        on_sim!(self, n => n.crash(id))
    }

    fn is_alive(&self, id: NodeId) -> bool {
        on_sim!(self, n => n.is_alive(id))
    }

    fn alive_iter(&self) -> Box<dyn Iterator<Item = NodeId> + '_> {
        match self {
            Sim::Single(n) => Box::new(n.alive_iter()),
            Sim::Sharded(n) => Box::new(n.alive_iter()),
        }
    }

    fn alive_ids(&self) -> Vec<NodeId> {
        on_sim!(self, n => n.alive_ids())
    }

    fn node(&self, id: NodeId) -> Option<&P> {
        on_sim!(self, n => n.node(id))
    }

    fn set_link_faults(&mut self, link: LinkFaults) {
        on_sim!(self, n => n.set_link_faults(link))
    }

    fn add_partition(&mut self, spec: PartitionSpec) {
        on_sim!(self, n => n.add_partition(spec))
    }

    /// Merged simulator counters (owned: the sharded driver sums across
    /// shards on demand).
    fn stats(&self) -> NetStats {
        match self {
            Sim::Single(n) => n.stats().clone(),
            Sim::Sharded(n) => n.stats(),
        }
    }

    /// Merged bandwidth meter (owned, for the same reason as `stats`).
    fn bandwidth(&self) -> BandwidthMeter {
        match self {
            Sim::Single(n) => n.bandwidth().clone(),
            Sim::Sharded(n) => n.bandwidth(),
        }
    }

    fn footprint(&self) -> Footprint {
        on_sim!(self, n => n.footprint())
    }

    fn take_event_trace(&mut self) -> Vec<TraceOp> {
        match self {
            // The sharded driver refuses trace_events at construction.
            Sim::Single(n) => n.take_event_trace(),
            Sim::Sharded(_) => Vec::new(),
        }
    }

    fn typical_latency(&mut self, src: NodeId, dst: NodeId) -> SimDuration {
        on_sim!(self, n => n.typical_latency(src, dst))
    }

    /// The driver as the read-only view invariants check against.
    fn query(&self) -> &dyn NetQuery {
        match self {
            Sim::Single(n) => n,
            Sim::Sharded(n) => n,
        }
    }

    fn shard_count(&self) -> usize {
        match self {
            Sim::Single(_) => 1,
            Sim::Sharded(n) => n.shards(),
        }
    }
}

/// Builder-style entry point for one experiment run: the single bootstrap →
/// schedule → drive → collect pipeline behind every figure and table.
///
/// ```
/// use brisa_workloads::{Runner, IntoRunSpec, InvariantSuite, BrisaScenario, BrisaStackConfig};
/// use brisa::BrisaNode;
///
/// let sc = BrisaScenario::small_test(16);
/// let cfg = BrisaStackConfig { hpv: sc.hyparview_config(), brisa: sc.brisa_config() };
/// let mut suite = InvariantSuite::standard(Some(1));
/// let result = Runner::<BrisaNode>::new(&cfg, &sc.run_spec())
///     .invariants(&mut suite)
///     .shards(2)
///     .run();
/// suite.assert_clean();
/// assert!(result.completeness() > 0.99);
/// ```
pub struct Runner<'a, P: DisseminationProtocol> {
    cfg: &'a P::Config,
    spec: &'a RunSpec,
    invariants: Option<&'a mut InvariantSuite>,
    telemetry: Telemetry,
    shards: usize,
}

impl<'a, P: DisseminationProtocol> Runner<'a, P> {
    /// Starts a run description from a protocol configuration and a spec.
    /// The shard count is taken from [`RunSpec::shards`] unless overridden
    /// by [`Runner::shards`].
    pub fn new(cfg: &'a P::Config, spec: &'a RunSpec) -> Self {
        Runner {
            cfg,
            spec,
            invariants: None,
            telemetry: Telemetry::disabled(),
            shards: spec.shards.max(1),
        }
    }

    /// Evaluates `suite` online during the drive phase: after every
    /// schedule step and once after the drain. An empty suite costs
    /// nothing; violations are recorded in the suite for the caller to
    /// inspect (or [`InvariantSuite::assert_clean`]), never panicked.
    pub fn invariants(mut self, suite: &'a mut InvariantSuite) -> Self {
        self.invariants = Some(suite);
        self
    }

    /// Threads a telemetry handle into the simulator and every node's
    /// [`Context`]. Telemetry is strictly out-of-band: the run's
    /// [`EngineResult::fingerprint`] is identical whether the handle is
    /// enabled, disabled, or absent (pinned by the `integration_telemetry`
    /// fingerprint tests).
    pub fn telemetry(mut self, handle: &Telemetry) -> Self {
        self.telemetry = handle.clone();
        self
    }

    /// Partitions the simulation across `n` worker shards, overriding
    /// [`RunSpec::shards`]. `1` selects the sequential driver; any other
    /// count produces the bit-identical result (asserted by the
    /// shard-equivalence property tests).
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one shard");
        self.shards = n;
        self
    }

    /// Runs the experiment to completion.
    pub fn run(self) -> EngineResult
    where
        P: Send,
        P::Message: Send,
    {
        let Runner {
            cfg,
            spec,
            mut invariants,
            telemetry,
            shards,
        } = self;
        debug_assert_eq!(
            spec.stream_start(),
            SimTime::ZERO + spec.bootstrap + FIRST_PUBLISH_DELAY,
            "cached stream_start desynced — bootstrap mutated after conversion"
        );
        let net_config = NetworkConfig {
            seed: spec.seed,
            scheduler: spec.scheduler,
            trace_events: spec.trace_events,
            // The streaming result path never reads per-second bandwidth
            // buckets; dropping them keeps scale runs O(nodes) in memory.
            meter: match spec.results {
                ResultMode::Classic => MeterMode::PerSecond,
                ResultMode::Streaming => MeterMode::TotalsOnly,
            },
            telemetry,
            ..Default::default()
        };
        let mut sim: Sim<P> = if shards > 1 {
            Sim::Sharded(ShardedNetwork::new(
                net_config,
                spec.testbed.latency_model_shared(spec.seed),
                shards,
            ))
        } else {
            Sim::Single(Network::new(
                net_config,
                spec.testbed.latency_model(spec.seed),
            ))
        };
        let mut harness_rng = SmallRng::seed_from_u64(spec.seed ^ 0x5EED);

        // --- Phase 1: bootstrap. Node 0 is the source and contact point;
        // the rest join spread over the first half of the bootstrap window.
        let first_ctx = BuildCtx {
            index: 0,
            population: spec.nodes,
            contact: None,
            prev: None,
            is_source: true,
        };
        let source = sim.add_node(|id| P::build(cfg, id, &first_ctx));
        let join_window = spec.bootstrap / 2;
        let mut prev = source;
        for i in 1..spec.nodes {
            let at = SimTime::ZERO + join_window * i as u64 / spec.nodes.max(1) as u64;
            let bctx = BuildCtx {
                index: i,
                population: spec.nodes,
                contact: Some(source),
                prev: Some(prev),
                is_source: false,
            };
            prev = sim.add_node_at(at, |id| P::build(cfg, id, &bctx));
        }
        sim.run_until(SimTime::ZERO + spec.bootstrap);
        let stabilization_end_sec = sim.now().second_bucket() + 1;

        // --- Phase 2: merge stream injections and churn events into one
        // time-ordered schedule. With churn, the stream keeps flowing for
        // the whole churn window so repairs complete through regular
        // traffic. `run_until` always advances the clock to its deadline,
        // so the cached spec value equals `now + FIRST_PUBLISH_DELAY` here.
        let stream_start = spec.stream_start();
        debug_assert_eq!(stream_start, sim.now() + FIRST_PUBLISH_DELAY);
        let interval = spec.stream.interval();
        let churn_events: Vec<(SimTime, ChurnEvent)> = spec
            .churn
            .map(|c| c.schedule(stream_start, spec.nodes as usize))
            .unwrap_or_default();
        let stream_duration = match spec.churn {
            Some(c) if c.duration > spec.stream.duration() => c.duration,
            _ => spec.stream.duration(),
        };
        let total_messages = (stream_duration.as_micros() / interval.as_micros().max(1)).max(1);

        // Fault transitions are pushed first: the sort below is stable, so
        // at equal times faults switch on before the publish they should
        // affect.
        let mut schedule: Vec<(SimTime, Step)> = Vec::new();
        if !spec.faults.is_inert() {
            let link = spec.faults.link_faults();
            if !link.is_inert() {
                schedule.push((stream_start, Step::Fault(FaultAction::EnableLink(link))));
            }
            // A zero-width window can never be active; installing it exactly
            // at its own heal instant would only trip the simulator's
            // healed-in-the-past assertion.
            if let Some(phase) = spec.faults.partition.filter(|p| !p.duration.is_zero()) {
                let partition = phase.to_partition(stream_start, spec.nodes);
                schedule.push((
                    partition.start,
                    Step::Fault(FaultAction::StartPartition(partition)),
                ));
            }
        }
        // Scale events ride the same stable-sort contract: at equal times
        // they run after fault transitions and before the publish they
        // coincide with (a mass crash at second s hits the overlay before
        // that second's injection).
        schedule.extend(
            spec.events
                .iter()
                .map(|ev| (stream_start + ev.after, Step::Scale(ev.kind))),
        );
        schedule
            .extend((0..total_messages).map(|seq| (stream_start + interval * seq, Step::Publish)));
        schedule.extend(churn_events.into_iter().map(|(t, e)| (t, Step::Churn(e))));
        schedule.sort_by_key(|(t, _)| *t);

        // --- Phase 3: drive the schedule.
        let mut publish_times: Vec<SimTime> = Vec::with_capacity(total_messages as usize);
        let mut failures_injected = 0usize;
        let mut joins_injected = 0usize;
        let mut next_join_index = spec.nodes;
        // Victim-selection buffer, reused across churn events (the shuffle
        // over the full candidate list — rather than a single index draw —
        // is kept so the harness RNG stream, and therefore every seeded
        // result, is stable).
        let mut alive_buf: Vec<NodeId> = Vec::new();
        // Mid-run joiners (churn and flash crowds) join through a *random
        // live contact*, not the source: a member's HyParView `Join`
        // displaces one of the contact's active-view entries, so funnelling
        // a join burst through one node evicts its entire view — the
        // burst's ForwardJoin walks then circulate among the just-joined
        // nodes and the contact ends up severed from the established
        // overlay (with the source as contact, that wedges the whole
        // stream). Spreading contacts is also what a real deployment's join
        // service does.
        let random_contact = |sim: &Sim<P>, buf: &mut Vec<NodeId>, rng: &mut SmallRng| {
            buf.clear();
            buf.extend(sim.alive_iter());
            buf.choose(rng).copied().unwrap_or(source)
        };
        for (at, step) in schedule {
            sim.run_until(at);
            match step {
                Step::Fault(FaultAction::EnableLink(link)) => sim.set_link_faults(link),
                Step::Fault(FaultAction::StartPartition(partition)) => sim.add_partition(partition),
                Step::Publish => {
                    publish_times.push(sim.now());
                    sim.invoke(source, |node, ctx| {
                        node.publish_message(ctx, spec.stream.payload_bytes);
                    });
                }
                Step::Churn(ChurnEvent::Fail) => {
                    alive_buf.clear();
                    alive_buf.extend(sim.alive_iter().filter(|&id| id != source));
                    alive_buf.shuffle(&mut harness_rng);
                    if let Some(victim) = alive_buf.first().copied() {
                        sim.crash(victim);
                        failures_injected += 1;
                    }
                }
                Step::Churn(ChurnEvent::Join) => {
                    let contact = random_contact(&sim, &mut alive_buf, &mut harness_rng);
                    let bctx = BuildCtx {
                        index: next_join_index,
                        population: spec.nodes,
                        contact: Some(contact),
                        prev: Some(prev),
                        is_source: false,
                    };
                    prev = sim.add_node(|id| P::build(cfg, id, &bctx));
                    next_join_index += 1;
                    joins_injected += 1;
                }
                Step::Scale(ScaleEventKind::FlashCrowd { joiners }) => {
                    // One snapshot of the live population for the whole
                    // burst: re-listing ~100k alive nodes per joiner would
                    // make a 10k flash crowd O(alive × joiners) on the
                    // bench's measured wall-clock path. The crowd arrives
                    // at one instant, so drawing every contact from the
                    // pre-crowd population is also the honest model.
                    alive_buf.clear();
                    alive_buf.extend(sim.alive_iter());
                    for _ in 0..joiners {
                        let contact = alive_buf
                            .choose(&mut harness_rng)
                            .copied()
                            .unwrap_or(source);
                        let bctx = BuildCtx {
                            index: next_join_index,
                            population: spec.nodes,
                            contact: Some(contact),
                            prev: Some(prev),
                            is_source: false,
                        };
                        prev = sim.add_node(|id| P::build(cfg, id, &bctx));
                        next_join_index += 1;
                        joins_injected += 1;
                    }
                }
                Step::Scale(ScaleEventKind::Kill { node }) => {
                    let victim = NodeId(node);
                    if victim != source && sim.is_alive(victim) {
                        sim.crash(victim);
                        failures_injected += 1;
                    }
                }
                Step::Scale(ScaleEventKind::MassCrash { fraction }) => {
                    alive_buf.clear();
                    alive_buf.extend(sim.alive_iter().filter(|&id| id != source));
                    alive_buf.shuffle(&mut harness_rng);
                    let victims =
                        ((alive_buf.len() as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
                    for &victim in alive_buf.iter().take(victims) {
                        sim.crash(victim);
                        failures_injected += 1;
                    }
                }
            }
            if let Some(suite) = invariants.as_deref_mut() {
                check_invariants(suite, &sim, publish_times.len() as u64, source);
            }
        }
        sim.run_for(spec.drain);
        if let Some(suite) = invariants {
            check_invariants(suite, &sim, publish_times.len() as u64, source);
        }
        let end_sec = sim.now().second_bucket() + 1;
        let churn_window = (stream_start, sim.now());

        // --- Phase 4: collect. Classic mode materialises one
        // `NodeOutcome` per node (first-delivery vectors, phase bandwidth,
        // point-to-point references); streaming mode folds every node into
        // one summary and never allocates per-node result state.
        let (outcomes, streaming) = match spec.results {
            ResultMode::Classic => {
                let meter = sim.bandwidth();
                let bw = split_bandwidth(&meter, stabilization_end_sec, end_sec);
                let alive = sim.alive_ids();
                let mut outcomes = Vec::with_capacity(alive.len());
                for &id in &alive {
                    let report = sim.node(id).expect("alive node exists").report();
                    let is_source = id == source;
                    let mut delays = Vec::new();
                    for (seq, t) in &report.first_delivery {
                        if let Some(&pub_t) = publish_times.get(*seq as usize) {
                            delays.push(t.saturating_since(pub_t).as_millis_f64());
                        }
                    }
                    let routing_delay_ms = if delays.is_empty() || is_source {
                        None
                    } else {
                        Some(delays.iter().sum::<f64>() / delays.len() as f64)
                    };
                    let span = report.first_delivery.iter().map(|(_, t)| *t);
                    let dissemination_latency_secs = match (span.clone().min(), span.max()) {
                        (Some(a), Some(b)) => Some(b.saturating_since(a).as_secs_f64()),
                        _ => None,
                    };
                    outcomes.push(NodeOutcome {
                        id,
                        is_source,
                        report,
                        routing_delay_ms,
                        dissemination_latency_secs,
                        point_to_point_ms: 0.0, // filled below (needs &mut sim)
                        bandwidth: bw.get(&id).cloned().unwrap_or_default(),
                    });
                }
                // Point-to-point reference latencies need mutable access to
                // the network.
                let p2p: HashMap<NodeId, f64> = alive
                    .iter()
                    .map(|&id| (id, sim.typical_latency(source, id).as_millis_f64()))
                    .collect();
                for o in &mut outcomes {
                    o.point_to_point_ms = *p2p.get(&o.id).unwrap_or(&0.0);
                }
                (outcomes, None)
            }
            ResultMode::Streaming => {
                // Fold one partial summary per shard (by owner shard,
                // `id % k`), then merge the partials in shard order. Every
                // counter is a sum and the histogram merge is bucket-wise
                // addition, so the merged result is identical to the
                // sequential single fold — while the accumulation stays
                // shard-local, mirroring where the nodes live.
                let k = sim.shard_count();
                let mut partials: Vec<StreamingSummary> =
                    (0..k).map(|_| StreamingSummary::default()).collect();
                for id in sim.alive_iter() {
                    let sr = sim
                        .node(id)
                        .expect("alive node exists")
                        .scale_report(&publish_times);
                    let part = &mut partials[id.0 as usize % k];
                    part.delivered_total += sr.delivered;
                    part.duplicates_total += sr.duplicates;
                    part.latency.merge(&sr.latency);
                    if id != source && id.0 < spec.nodes {
                        part.eligible += 1;
                        part.got += sr.delivered.min(total_messages);
                        part.expected += total_messages;
                        if sr.delivered >= total_messages {
                            part.complete += 1;
                        }
                    }
                }
                let mut summary = StreamingSummary::default();
                for part in &partials {
                    summary.merge_counters(part);
                }
                let meter = sim.bandwidth();
                summary.uploaded_bytes = meter.total_uploaded();
                summary.downloaded_bytes = meter.total_downloaded();
                summary.footprint = sim.footprint();
                (Vec::new(), Some(summary))
            }
        };

        EngineResult {
            protocol: P::protocol_name(),
            source,
            original_nodes: spec.nodes,
            messages_published: total_messages,
            publish_times,
            nodes: outcomes,
            failures_injected,
            joins_injected,
            stabilization_end_sec,
            end_sec,
            churn_window,
            net_stats: sim.stats(),
            event_trace: sim.take_event_trace(),
            streaming,
        }
    }
}

/// One invariant pass: build every live node's report once (extracting a
/// report clones the node's delivery record, so each invariant rebuilding
/// its own would multiply that cost) and hand the suite the driver's
/// read-only view.
fn check_invariants<P: DisseminationProtocol + Send>(
    suite: &mut InvariantSuite,
    sim: &Sim<P>,
    published: u64,
    source: NodeId,
) where
    P::Message: Send,
{
    if suite.is_empty() {
        return;
    }
    let reports: Vec<(NodeId, NodeReport)> = sim
        .alive_iter()
        .filter_map(|id| sim.node(id).map(|n| (id, n.report())))
        .collect();
    let ctx = InvariantCtx {
        now: sim.now(),
        published,
        source,
    };
    suite.run_checks(sim.query(), &reports, &ctx);
}

/// Runs one experiment to completion. Deprecated shim over [`Runner`].
#[deprecated(note = "use `Runner::new(cfg, spec).run()`")]
pub fn run_experiment<P>(cfg: &P::Config, spec: &RunSpec) -> EngineResult
where
    P: DisseminationProtocol + Send,
    P::Message: Send,
{
    Runner::<P>::new(cfg, spec).run()
}

/// Runs one experiment with an online [`InvariantSuite`]. Deprecated shim
/// over [`Runner`].
#[deprecated(note = "use `Runner::new(cfg, spec).invariants(suite).run()`")]
pub fn run_experiment_checked<P>(
    cfg: &P::Config,
    spec: &RunSpec,
    invariants: &mut InvariantSuite,
) -> EngineResult
where
    P: DisseminationProtocol + Send,
    P::Message: Send,
{
    Runner::<P>::new(cfg, spec).invariants(invariants).run()
}

/// Runs one experiment with invariants and a telemetry handle. Deprecated
/// shim over [`Runner`].
#[deprecated(note = "use `Runner::new(cfg, spec).invariants(suite).telemetry(handle).run()`")]
pub fn run_experiment_with_telemetry<P>(
    cfg: &P::Config,
    spec: &RunSpec,
    invariants: &mut InvariantSuite,
    telemetry: &Telemetry,
) -> EngineResult
where
    P: DisseminationProtocol + Send,
    P::Message: Send,
{
    Runner::<P>::new(cfg, spec)
        .invariants(invariants)
        .telemetry(telemetry)
        .run()
}
