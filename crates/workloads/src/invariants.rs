//! Online invariant checking.
//!
//! An [`Invariant`] is a predicate over the *live* state of a running
//! experiment, evaluated repeatedly **during** the drive phase (after every
//! schedule step and once after the drain) rather than post-hoc on the
//! collected result. Online evaluation is what makes the checks worth
//! having under adversity: a transient violation — a cycle stitched
//! mid-repair, a delivery count running ahead of the publishes, a FIFO
//! clock moving backwards — is visible at the step where it happens and
//! carries its timestamp, where an end-of-run check would only see the
//! healed aftermath.
//!
//! Checks are collected in an [`InvariantSuite`] attached to a run through
//! [`crate::engine::Runner::invariants`]; an empty suite is skipped
//! entirely (a plain `Runner::new(..).run()` pays nothing). Violations are
//! recorded, not panicked, so a harness can assert
//! [`InvariantSuite::assert_clean`] or inspect them selectively.
//!
//! Invariants see the simulation through the driver-agnostic [`NetQuery`]
//! view (liveness and FIFO link clocks), which both the sequential
//! [`Network`] and the sharded [`brisa_simnet::ShardedNetwork`] implement —
//! the suite itself is not generic over the protocol, so one suite type
//! serves every stack in the harness.
//!
//! Three invariants ship with the harness, all protocol-generic (they look
//! only at [`NodeReport`]s and the [`NetQuery`] view):
//!
//! * [`DeliveryInvariant`] — no duplicate first-deliveries, delivery counts
//!   monotone over time and never ahead of what the source has published;
//! * [`TreeValidityInvariant`] — parent counts within the target bound and
//!   no *persistent* parent cycle among live nodes (a cycle observed at two
//!   consecutive checks; transient cycles are repaired by the protocol's
//!   own detection and are not violations);
//! * [`LinkClockInvariant`] — every directed FIFO link clock in the
//!   simulator is monotone non-decreasing across checks.

use crate::engine::NodeReport;
use brisa_simnet::{Network, NodeId, Protocol, ShardedNetwork, SimTime};
use std::collections::HashMap;

/// The read-only view of a simulation driver that invariants check
/// against: node liveness and the simulator's FIFO link clocks. Both
/// drivers implement it, so a suite never cares whether the run is
/// sequential or sharded.
pub trait NetQuery {
    /// True if the node exists and has not crashed.
    fn is_alive(&self, id: NodeId) -> bool;

    /// Every directed link's FIFO clock (last scheduled arrival), sorted by
    /// `(sender, dest)`.
    fn link_clock_entries(&self) -> Vec<(NodeId, NodeId, SimTime)>;
}

impl<P: Protocol> NetQuery for Network<P> {
    fn is_alive(&self, id: NodeId) -> bool {
        Network::is_alive(self, id)
    }

    fn link_clock_entries(&self) -> Vec<(NodeId, NodeId, SimTime)> {
        Network::link_clock_entries(self)
    }
}

impl<P: Protocol + Send> NetQuery for ShardedNetwork<P>
where
    P::Message: Send,
{
    fn is_alive(&self, id: NodeId) -> bool {
        ShardedNetwork::is_alive(self, id)
    }

    fn link_clock_entries(&self) -> Vec<(NodeId, NodeId, SimTime)> {
        ShardedNetwork::link_clock_entries(self)
    }
}

/// Context handed to every check: what the harness knows about the run at
/// this instant.
#[derive(Debug, Clone, Copy)]
pub struct InvariantCtx {
    /// Current simulated time.
    pub now: SimTime,
    /// Messages the source has published so far.
    pub published: u64,
    /// The stream source.
    pub source: NodeId,
}

/// One recorded invariant violation.
#[derive(Debug, Clone)]
pub struct InvariantViolation {
    /// Name of the violated invariant.
    pub invariant: &'static str,
    /// Simulated time of the check that caught it.
    pub at: SimTime,
    /// Human-readable description of the violation.
    pub detail: String,
}

/// An online invariant over a running experiment.
pub trait Invariant {
    /// Display name (used in violation reports).
    fn name(&self) -> &'static str;

    /// Checks the invariant against the live network state; returns a
    /// description of the violation if it does not hold. Checks may keep
    /// state across calls (monotonicity needs the previous observation).
    /// `reports` holds every live node's [`NodeReport`], in ascending node
    /// order — built once per check pass by the engine and shared by all
    /// invariants.
    fn check(
        &mut self,
        net: &dyn NetQuery,
        reports: &[(NodeId, NodeReport)],
        ctx: &InvariantCtx,
    ) -> Result<(), String>;
}

/// An ordered collection of invariants plus the violations they recorded.
#[derive(Default)]
pub struct InvariantSuite {
    checks: Vec<Box<dyn Invariant>>,
    violations: Vec<InvariantViolation>,
    checks_run: u64,
}

impl InvariantSuite {
    /// An empty suite (checking is skipped entirely).
    pub fn new() -> Self {
        InvariantSuite {
            checks: Vec::new(),
            violations: Vec::new(),
            checks_run: 0,
        }
    }

    /// The three standard invariants. `tree_parents` bounds the parent
    /// count and enables the cycle check; pass `None` for DAG modes, whose
    /// depth labels are approximate by design (cycles there are prevented
    /// only probabilistically, see EXPERIMENTS notes), or for protocols
    /// without a parent structure.
    pub fn standard(tree_parents: Option<usize>) -> Self {
        let mut suite = Self::new()
            .with(DeliveryInvariant::new())
            .with(LinkClockInvariant::new());
        if let Some(max_parents) = tree_parents {
            suite = suite.with(TreeValidityInvariant::new(max_parents));
        }
        suite
    }

    /// Adds an invariant (builder style).
    pub fn with(mut self, invariant: impl Invariant + 'static) -> Self {
        self.checks.push(Box::new(invariant));
        self
    }

    /// True if no invariants are registered (the engine skips checking).
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }

    /// Runs every check once against the current state. `reports` is the
    /// live nodes' [`NodeReport`]s in ascending node order (the engine
    /// builds them once per pass).
    pub fn run_checks(
        &mut self,
        net: &dyn NetQuery,
        reports: &[(NodeId, NodeReport)],
        ctx: &InvariantCtx,
    ) {
        self.checks_run += 1;
        for check in &mut self.checks {
            if let Err(detail) = check.check(net, reports, ctx) {
                self.violations.push(InvariantViolation {
                    invariant: check.name(),
                    at: ctx.now,
                    detail,
                });
            }
        }
    }

    /// Violations recorded so far, in detection order.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Number of times the suite was evaluated (0 means the checks never
    /// ran — an assertion that the suite is clean would be vacuous).
    pub fn checks_run(&self) -> u64 {
        self.checks_run
    }

    /// Panics with every recorded violation if any check failed, and if the
    /// suite holds checks that never ran (a mis-wired harness would
    /// otherwise pass vacuously).
    pub fn assert_clean(&self) {
        if !self.checks.is_empty() {
            assert!(
                self.checks_run > 0,
                "invariant suite was never evaluated — harness mis-wired"
            );
        }
        assert!(
            self.violations.is_empty(),
            "online invariants violated:\n{}",
            self.violations
                .iter()
                .map(|v| format!("  [{} @ {}] {}", v.invariant, v.at, v.detail))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// The stateless core of the delivery check, usable offline: validates one
/// node's report against what the source had published by `now`.
///
/// Shared between the online [`DeliveryInvariant`] (which adds
/// monotonicity across checks) and post-hoc validation of non-simulated
/// traces — the live runtime (`brisa-runtime`) applies it to the reports a
/// real-transport cluster collected.
pub fn check_delivery_report(
    id: NodeId,
    report: &NodeReport,
    published: u64,
    now: SimTime,
) -> Result<(), String> {
    let deliveries = &report.first_delivery;
    if deliveries.len() as u64 != report.delivered {
        return Err(format!(
            "node {id}: {} first-delivery records but delivered={} — a \
             sequence number was delivered twice or dropped from the record",
            deliveries.len(),
            report.delivered
        ));
    }
    for pair in deliveries.windows(2) {
        if pair[0].0 >= pair[1].0 {
            return Err(format!(
                "node {id}: first-delivery records out of order or duplicated \
                 ({} then {})",
                pair[0].0, pair[1].0
            ));
        }
    }
    for &(seq, at) in deliveries {
        if seq >= published {
            return Err(format!(
                "node {id}: delivered seq {seq} but the source has only \
                 published {published} messages"
            ));
        }
        if at > now {
            return Err(format!(
                "node {id}: first delivery of seq {seq} stamped {at}, in the \
                 future of {now}"
            ));
        }
    }
    Ok(())
}

/// Delivery sanity: per-node first-delivery records are unique and ordered,
/// never exceed what the source has published, never decrease over time,
/// and never carry a timestamp from the future.
pub struct DeliveryInvariant {
    prev_delivered: HashMap<u32, u64>,
}

impl DeliveryInvariant {
    /// A fresh checker.
    pub fn new() -> Self {
        DeliveryInvariant {
            prev_delivered: HashMap::new(),
        }
    }
}

impl Default for DeliveryInvariant {
    fn default() -> Self {
        Self::new()
    }
}

impl Invariant for DeliveryInvariant {
    fn name(&self) -> &'static str {
        "no-duplicate-delivery"
    }

    fn check(
        &mut self,
        _net: &dyn NetQuery,
        reports: &[(NodeId, NodeReport)],
        ctx: &InvariantCtx,
    ) -> Result<(), String> {
        for (id, report) in reports {
            let id = *id;
            check_delivery_report(id, report, ctx.published, ctx.now)?;
            let prev = self.prev_delivered.insert(id.0, report.delivered);
            if let Some(prev) = prev {
                if report.delivered < prev {
                    return Err(format!(
                        "node {id}: delivered count went backwards ({prev} -> {})",
                        report.delivered
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Structure sanity for tree-shaped runs: every live non-source node holds
/// at most `max_parents` parents, and no parent cycle among live nodes
/// *persists* across two consecutive checks. BRISA's path guards repair
/// transiently stitched cycles as soon as a message traverses them; a cycle
/// that survives a whole schedule step (hundreds of milliseconds) would
/// starve its members for good and is a genuine violation.
pub struct TreeValidityInvariant {
    max_parents: usize,
    /// Canonical signatures of the cycles seen at the previous check.
    prev_cycles: Vec<Vec<u32>>,
}

impl TreeValidityInvariant {
    /// A checker allowing up to `max_parents` parents per node.
    pub fn new(max_parents: usize) -> Self {
        TreeValidityInvariant {
            max_parents,
            prev_cycles: Vec::new(),
        }
    }

    /// Finds every distinct parent cycle among live nodes, following each
    /// node's first live parent. Returns canonical (rotated-to-minimum)
    /// member lists, sorted for set comparison.
    fn cycles(parent_of: &HashMap<u32, u32>) -> Vec<Vec<u32>> {
        let mut cycles: Vec<Vec<u32>> = Vec::new();
        let mut state: HashMap<u32, u8> = HashMap::new(); // 1 = visiting, 2 = done
        let mut ids: Vec<u32> = parent_of.keys().copied().collect();
        ids.sort_unstable();
        for &start in &ids {
            if state.contains_key(&start) {
                continue;
            }
            let mut path = Vec::new();
            let mut cur = start;
            loop {
                match state.get(&cur) {
                    Some(1) => {
                        // Found a cycle: the tail of `path` from `cur` on.
                        let pos = path.iter().position(|&n| n == cur).expect("on path");
                        let mut cycle: Vec<u32> = path[pos..].to_vec();
                        let min_pos = cycle
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, &n)| n)
                            .map(|(i, _)| i)
                            .unwrap_or(0);
                        cycle.rotate_left(min_pos);
                        cycles.push(cycle);
                        break;
                    }
                    Some(_) => break,
                    None => {
                        state.insert(cur, 1);
                        path.push(cur);
                        match parent_of.get(&cur) {
                            Some(&parent) => cur = parent,
                            None => break,
                        }
                    }
                }
            }
            for n in path {
                state.insert(n, 2);
            }
        }
        cycles.sort();
        cycles
    }
}

impl Invariant for TreeValidityInvariant {
    fn name(&self) -> &'static str {
        "tree-validity"
    }

    fn check(
        &mut self,
        net: &dyn NetQuery,
        reports: &[(NodeId, NodeReport)],
        ctx: &InvariantCtx,
    ) -> Result<(), String> {
        let mut parent_of: HashMap<u32, u32> = HashMap::new();
        for (id, report) in reports {
            let id = *id;
            if id != ctx.source && report.parents.len() > self.max_parents {
                return Err(format!(
                    "node {id}: {} parents exceeds the target of {}",
                    report.parents.len(),
                    self.max_parents
                ));
            }
            // Follow only links between live nodes: a dead parent cannot
            // close a cycle (it will never relay again).
            if let Some(parent) = report.parents.iter().find(|p| net.is_alive(**p)) {
                parent_of.insert(id.0, parent.0);
            }
        }
        let cycles = Self::cycles(&parent_of);
        let persistent: Vec<&Vec<u32>> = cycles
            .iter()
            .filter(|c| self.prev_cycles.binary_search(c).is_ok())
            .collect();
        self.prev_cycles = cycles.clone();
        if let Some(cycle) = persistent.first() {
            return Err(format!(
                "parent cycle {cycle:?} persisted across two consecutive checks — \
                 its members are starving"
            ));
        }
        Ok(())
    }
}

/// FIFO link-clock monotonicity: the simulator's per-directed-link clocks
/// (last scheduled arrival) never move backwards. A regression here would
/// let later sends overtake earlier ones on the same link, silently
/// breaking the FIFO contract every protocol in the workspace assumes.
pub struct LinkClockInvariant {
    prev: HashMap<(u32, u32), SimTime>,
}

impl LinkClockInvariant {
    /// A fresh checker.
    pub fn new() -> Self {
        LinkClockInvariant {
            prev: HashMap::new(),
        }
    }
}

impl Default for LinkClockInvariant {
    fn default() -> Self {
        Self::new()
    }
}

impl Invariant for LinkClockInvariant {
    fn name(&self) -> &'static str {
        "link-clock-monotonicity"
    }

    fn check(
        &mut self,
        net: &dyn NetQuery,
        _reports: &[(NodeId, NodeReport)],
        _ctx: &InvariantCtx,
    ) -> Result<(), String> {
        let entries = net.link_clock_entries();
        for &(sender, dest, clock) in &entries {
            if let Some(&prev) = self.prev.get(&(sender.0, dest.0)) {
                if clock < prev {
                    return Err(format!(
                        "link {sender} -> {dest}: FIFO clock went backwards \
                         ({prev} -> {clock})"
                    ));
                }
            }
            self.prev.insert((sender.0, dest.0), clock);
        }
        // Entries pruned by a crash may reappear at an earlier clock if the
        // pair reconnects much later; forget pairs that vanished so a
        // legitimate reset is not misread as a regression.
        let current: std::collections::HashSet<(u32, u32)> =
            entries.iter().map(|(s, d, _)| (s.0, d.0)).collect();
        self.prev.retain(|k, _| current.contains(k));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_detection_finds_and_canonicalises() {
        // 1 -> 2 -> 3 -> 1 plus a chain 4 -> 1.
        let parent_of: HashMap<u32, u32> = [(1, 2), (2, 3), (3, 1), (4, 1)].into();
        let cycles = TreeValidityInvariant::cycles(&parent_of);
        assert_eq!(cycles, vec![vec![1, 2, 3]]);
        // Pure chains have no cycle.
        let chain: HashMap<u32, u32> = [(1, 0), (2, 1), (3, 2)].into();
        assert!(TreeValidityInvariant::cycles(&chain).is_empty());
        // Two disjoint 2-cycles.
        let two: HashMap<u32, u32> = [(1, 2), (2, 1), (5, 6), (6, 5)].into();
        assert_eq!(
            TreeValidityInvariant::cycles(&two),
            vec![vec![1, 2], vec![5, 6]]
        );
    }

    #[test]
    #[should_panic(expected = "never evaluated")]
    fn assert_clean_rejects_vacuous_suites() {
        let suite = InvariantSuite::standard(Some(1));
        suite.assert_clean();
    }

    #[test]
    fn offline_delivery_check_catches_bad_reports() {
        let now = SimTime::from_secs(10);
        let good = NodeReport {
            delivered: 2,
            first_delivery: vec![(0, SimTime::from_secs(1)), (1, SimTime::from_secs(2))],
            ..NodeReport::default()
        };
        assert!(check_delivery_report(NodeId(1), &good, 5, now).is_ok());
        // Count / record mismatch.
        let short = NodeReport {
            delivered: 3,
            ..good.clone()
        };
        assert!(check_delivery_report(NodeId(1), &short, 5, now).is_err());
        // Duplicate sequence number.
        let dup = NodeReport {
            delivered: 2,
            first_delivery: vec![(1, SimTime::from_secs(1)), (1, SimTime::from_secs(2))],
            ..NodeReport::default()
        };
        assert!(check_delivery_report(NodeId(1), &dup, 5, now).is_err());
        // Delivered beyond what was published.
        assert!(check_delivery_report(NodeId(1), &good, 1, now).is_err());
        // Timestamp from the future.
        assert!(check_delivery_report(NodeId(1), &good, 5, SimTime::from_millis(1)).is_err());
    }

    #[test]
    fn empty_suite_is_clean_and_skippable() {
        let suite = InvariantSuite::new();
        assert!(suite.is_empty());
        suite.assert_clean();
    }
}
