//! The BRISA experiment runner.
//!
//! Executes a [`BrisaScenario`]: bootstrap the overlay, optionally run a
//! churn phase, inject the message stream, and collect every metric the
//! paper's figures and tables report.

use crate::result::{split_bandwidth, ChurnReport, NodeSummary, PhaseBandwidth};
use crate::spec::{BrisaScenario, ChurnEvent};
use brisa::BrisaNode;
use brisa_metrics::StructureSnapshot;
use brisa_simnet::{Network, NetworkConfig, NodeId, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// The outcome of one BRISA run.
#[derive(Debug)]
pub struct BrisaRunResult {
    /// The stream source.
    pub source: NodeId,
    /// Number of nodes bootstrapped before the stream started (nodes added
    /// later by churn joins have identifiers `>= original_nodes`).
    pub original_nodes: u32,
    /// Number of messages the source injected.
    pub messages_published: u64,
    /// Injection time of every message, indexed by sequence number.
    pub publish_times: Vec<SimTime>,
    /// Per-node summaries for nodes alive at the end of the run.
    pub nodes: Vec<NodeSummary>,
    /// The emerged structure (parents of every live node).
    pub structure: StructureSnapshot,
    /// Aggregated churn behaviour, if a churn phase ran.
    pub churn: Option<ChurnReport>,
    /// End of the stabilisation phase (seconds since the start).
    pub stabilization_end_sec: usize,
    /// End of the dissemination phase (seconds since the start).
    pub end_sec: usize,
}

impl BrisaRunResult {
    /// Per-node values extracted with `f`, skipping the source.
    pub fn non_source<T>(&self, f: impl Fn(&NodeSummary) -> T) -> Vec<T> {
        self.nodes.iter().filter(|n| !n.is_source).map(f).collect()
    }

    /// Fraction of live, non-source nodes *present before the stream
    /// started* that delivered every message. Nodes joined by churn after
    /// the stream began are excluded: they legitimately miss the messages
    /// published before they existed.
    pub fn completeness(&self) -> f64 {
        let eligible: Vec<&NodeSummary> = self
            .nodes
            .iter()
            .filter(|n| !n.is_source && n.id.0 < self.original_nodes)
            .collect();
        if eligible.is_empty() {
            return 1.0;
        }
        let complete = eligible
            .iter()
            .filter(|n| n.delivered >= self.messages_published)
            .count();
        complete as f64 / eligible.len() as f64
    }
}

/// Runs a BRISA scenario to completion.
pub fn run_brisa(sc: &BrisaScenario) -> BrisaRunResult {
    let hpv_cfg = sc.hyparview_config();
    let brisa_cfg = sc.brisa_config();
    let mut net: Network<BrisaNode> = Network::new(
        NetworkConfig { seed: sc.seed, ..Default::default() },
        sc.testbed.latency_model(sc.seed),
    );
    let mut harness_rng = SmallRng::seed_from_u64(sc.seed ^ 0x5EED);

    // --- Bootstrap: node 0 is the contact point and the source; the rest
    // join spread over the first half of the bootstrap window.
    let source = net.add_node(|id| {
        let mut n = BrisaNode::new(id, hpv_cfg.clone(), brisa_cfg.clone(), None);
        n.mark_source();
        n
    });
    let join_window = sc.bootstrap / 2;
    for i in 1..sc.nodes {
        let at = SimTime::ZERO + join_window * i as u64 / sc.nodes.max(1) as u64;
        let hpv_cfg = hpv_cfg.clone();
        let brisa_cfg = brisa_cfg.clone();
        net.add_node_at(at, move |id| BrisaNode::new(id, hpv_cfg, brisa_cfg, Some(source)));
    }
    net.run_until(SimTime::ZERO + sc.bootstrap);
    let stab_end = net.now();
    let stabilization_end_sec = stab_end.second_bucket() + 1;

    // --- Build the merged schedule of stream injections and churn events.
    let stream_start = stab_end + SimDuration::from_millis(100);
    let interval = sc.stream.interval();
    let churn_events: Vec<(SimTime, ChurnEvent)> = sc
        .churn
        .map(|c| c.schedule(stream_start, sc.nodes as usize))
        .unwrap_or_default();
    // With churn, keep the stream flowing for the whole churn window so
    // repairs can complete through regular traffic.
    let stream_duration = match sc.churn {
        Some(c) => {
            let d = sc.stream.duration();
            if c.duration > d {
                c.duration
            } else {
                d
            }
        }
        None => sc.stream.duration(),
    };
    let total_messages = (stream_duration.as_micros() / interval.as_micros().max(1)).max(1);

    enum Step {
        Publish,
        Churn(ChurnEvent),
    }
    let mut schedule: Vec<(SimTime, Step)> = (0..total_messages)
        .map(|seq| (stream_start + interval * seq, Step::Publish))
        .collect();
    schedule.extend(churn_events.iter().map(|(t, e)| (*t, Step::Churn(*e))));
    schedule.sort_by_key(|(t, _)| *t);

    let mut publish_times: Vec<SimTime> = Vec::with_capacity(total_messages as usize);
    let mut failures_injected = 0usize;
    let mut joins_injected = 0usize;
    let churn_window_start = stream_start;

    for (at, step) in schedule {
        net.run_until(at);
        match step {
            Step::Publish => {
                publish_times.push(net.now());
                net.invoke(source, |node, ctx| {
                    node.publish(ctx, sc.stream.payload_bytes);
                });
            }
            Step::Churn(ChurnEvent::Fail) => {
                let mut alive: Vec<NodeId> = net
                    .alive_ids()
                    .into_iter()
                    .filter(|&id| id != source)
                    .collect();
                alive.shuffle(&mut harness_rng);
                if let Some(victim) = alive.first().copied() {
                    net.crash(victim);
                    failures_injected += 1;
                }
            }
            Step::Churn(ChurnEvent::Join) => {
                let hpv_cfg = hpv_cfg.clone();
                let brisa_cfg = brisa_cfg.clone();
                net.add_node(move |id| BrisaNode::new(id, hpv_cfg, brisa_cfg, Some(source)));
                joins_injected += 1;
            }
        }
    }
    net.run_for(sc.drain);
    let end_sec = net.now().second_bucket() + 1;

    // --- Collect results from live nodes.
    let bw = split_bandwidth(net.bandwidth(), stabilization_end_sec, end_sec);
    let mut structure = StructureSnapshot::new(source.0);
    let alive = net.alive_ids();
    let mut summaries = Vec::with_capacity(alive.len());
    let churn_window_end = net.now();
    let mut report = ChurnReport {
        duration_minutes: sc
            .churn
            .map(|c| c.duration.as_secs_f64() / 60.0)
            .unwrap_or(0.0),
        failures_injected,
        joins_injected,
        ..Default::default()
    };
    let mut parents_lost_events = 0usize;
    let mut orphan_events = 0usize;

    for &id in &alive {
        let node = net.node(id).expect("alive node exists");
        let core = node.brisa();
        let stats = core.stats();
        let parents = core.parents();
        structure.set_parents(id.0, parents.iter().map(|p| p.0).collect());

        // Routing delay: mean over messages of (first delivery - injection).
        let mut delays = Vec::new();
        for (seq, &t) in &stats.first_delivery {
            if let Some(&pub_t) = publish_times.get(*seq as usize) {
                delays.push(t.saturating_since(pub_t).as_millis_f64());
            }
        }
        let routing_delay_ms = if delays.is_empty() || core.is_source() {
            None
        } else {
            Some(delays.iter().sum::<f64>() / delays.len() as f64)
        };
        let dissemination_latency_secs = stats
            .delivery_span()
            .map(|(a, b)| b.saturating_since(a).as_secs_f64());
        let construction_time_ms = stats.construction_time().map(|d| d.as_millis_f64());

        parents_lost_events += stats
            .parents_lost
            .iter()
            .filter(|&&t| t >= churn_window_start && t <= churn_window_end)
            .count();
        orphan_events += stats
            .orphaned
            .iter()
            .filter(|&&t| t >= churn_window_start && t <= churn_window_end)
            .count();
        report.soft_repairs += stats.soft_repairs;
        report.hard_repairs += stats.hard_repairs;
        report
            .soft_delays_ms
            .extend(stats.soft_repair_delays_us.iter().map(|&us| us as f64 / 1000.0));
        report
            .hard_delays_ms
            .extend(stats.hard_repair_delays_us.iter().map(|&us| us as f64 / 1000.0));

        summaries.push(NodeSummary {
            id,
            is_source: core.is_source(),
            delivered: stats.delivered,
            duplicates_per_message: stats.duplicates_per_message(),
            depth: core.depth(),
            degree: core.children().len(),
            parents,
            routing_delay_ms,
            point_to_point_ms: 0.0, // filled below (needs &mut net)
            dissemination_latency_secs,
            construction_time_ms,
            bandwidth: bw.get(&id).cloned().unwrap_or_else(PhaseBandwidth::default),
        });
    }
    // Point-to-point reference latencies need mutable access to the network.
    let p2p: HashMap<NodeId, f64> = alive
        .iter()
        .map(|&id| (id, net.typical_latency(source, id).as_millis_f64()))
        .collect();
    for s in &mut summaries {
        s.point_to_point_ms = *p2p.get(&s.id).unwrap_or(&0.0);
    }

    let churn = sc.churn.map(|c| {
        let minutes = c.duration.as_secs_f64() / 60.0;
        report.parents_lost_per_min = parents_lost_events as f64 / minutes.max(1e-9);
        report.orphans_per_min = orphan_events as f64 / minutes.max(1e-9);
        report.finalise();
        report.clone()
    });

    BrisaRunResult {
        source,
        original_nodes: sc.nodes,
        messages_published: total_messages,
        publish_times,
        nodes: summaries,
        structure,
        churn,
        stabilization_end_sec,
        end_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BrisaScenario, ChurnSpec, StreamSpec};
    use brisa::{ParentStrategy, StructureMode};

    #[test]
    fn small_tree_run_is_complete_and_duplicate_free_after_bootstrap() {
        let sc = BrisaScenario::small_test(32);
        let r = run_brisa(&sc);
        assert_eq!(r.messages_published, 10);
        assert!((r.completeness() - 1.0).abs() < 1e-9, "every node delivered everything");
        assert!(r.structure.is_acyclic());
        assert!(r.structure.is_complete());
        // Non-source nodes have exactly one parent in tree mode.
        for n in r.nodes.iter().filter(|n| !n.is_source) {
            assert_eq!(n.parents.len(), 1);
            assert!(n.depth.is_some());
        }
        // Duplicates only stem from the bootstrap flood: well under one per
        // message on average for a 10-message stream.
        let avg_dup: f64 = r.non_source(|n| n.duplicates_per_message).iter().sum::<f64>()
            / (r.nodes.len() - 1) as f64;
        assert!(avg_dup < 1.0, "avg duplicates per message {avg_dup}");
    }

    #[test]
    fn dag_run_gets_multiple_parents() {
        let sc = BrisaScenario {
            mode: StructureMode::Dag { parents: 2 },
            view_size: 8,
            ..BrisaScenario::small_test(32)
        };
        let r = run_brisa(&sc);
        let multi = r
            .nodes
            .iter()
            .filter(|n| !n.is_source && n.parents.len() >= 2)
            .count();
        assert!(multi * 2 > r.nodes.len() - 1, "most nodes found 2 parents ({multi})");
        assert!(r.structure.is_acyclic());
    }

    #[test]
    fn churn_run_produces_a_report() {
        let sc = BrisaScenario {
            churn: Some(ChurnSpec {
                rate_percent: 5.0,
                interval: SimDuration::from_secs(10),
                duration: SimDuration::from_secs(40),
            }),
            stream: StreamSpec { messages: 50, rate_per_sec: 5.0, payload_bytes: 128 },
            ..BrisaScenario::small_test(48)
        };
        let r = run_brisa(&sc);
        let churn = r.churn.clone().expect("churn report present");
        assert!(churn.failures_injected > 0);
        assert_eq!(churn.failures_injected, churn.joins_injected);
        assert!(
            churn.parents_lost_per_min > 0.0,
            "failures must cost somebody a parent"
        );
        assert!(
            (churn.soft_pct + churn.hard_pct - 100.0).abs() < 1e-6
                || (churn.soft_repairs + churn.hard_repairs) == 0
        );
        // The stream kept flowing: live non-source nodes received most messages.
        for n in r.nodes.iter().filter(|n| n.id.0 < r.original_nodes && !n.is_source) {
            if n.delivered < r.messages_published {
                eprintln!(
                    "incomplete node {:?}: delivered {}/{} parents={:?} depth={:?}",
                    n.id, n.delivered, r.messages_published, n.parents, n.depth
                );
            }
        }
        let complete = r.completeness();
        assert!(complete > 0.7, "completeness under churn was {complete}");
    }

    #[test]
    fn delay_aware_strategy_reduces_routing_delay_on_planetlab() {
        use crate::spec::Testbed;
        let base = BrisaScenario {
            nodes: 48,
            testbed: Testbed::PlanetLab,
            stream: StreamSpec::short(20, 512),
            bootstrap: SimDuration::from_secs(30),
            ..Default::default()
        };
        let first_pick = run_brisa(&base);
        let delay_aware = run_brisa(&BrisaScenario {
            strategy: ParentStrategy::DelayAware,
            ..base.clone()
        });
        let mean = |r: &BrisaRunResult| {
            let v: Vec<f64> = r
                .nodes
                .iter()
                .filter_map(|n| n.routing_delay_ms)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let fp = mean(&first_pick);
        let da = mean(&delay_aware);
        // At this reduced scale tree shapes vary a lot between strategies;
        // the full-scale comparison is produced by the fig09 bench. Here we
        // only require that the delay-aware strategy stays in the same
        // ballpark and that both runs completed.
        assert!(fp > 0.0 && da > 0.0);
        assert!(
            da <= fp * 2.0,
            "delay-aware wildly worse than first-pick ({fp:.1}ms vs {da:.1}ms)"
        );
    }
}
