//! The BRISA experiment runner.
//!
//! A thin adapter over the generic engine: [`run_brisa`] executes a
//! [`BrisaScenario`] through [`crate::engine::Runner`] (the same pipeline
//! every baseline uses) and translates the protocol-agnostic
//! [`EngineResult`] into the BRISA-flavoured [`BrisaRunResult`] the figures
//! and tables consume (structure snapshot, churn report).

use crate::engine::{EngineResult, IntoRunSpec, Runner};
use crate::protocols::BrisaStackConfig;
use crate::result::{ChurnReport, NodeSummary};
use crate::spec::BrisaScenario;
use brisa::BrisaNode;
use brisa_metrics::StructureSnapshot;
use brisa_simnet::{NodeId, SimTime};

/// The outcome of one BRISA run.
#[derive(Debug)]
pub struct BrisaRunResult {
    /// The stream source.
    pub source: NodeId,
    /// Number of nodes bootstrapped before the stream started (nodes added
    /// later by churn joins have identifiers `>= original_nodes`).
    pub original_nodes: u32,
    /// Number of messages the source injected.
    pub messages_published: u64,
    /// Injection time of every message, indexed by sequence number.
    pub publish_times: Vec<SimTime>,
    /// Per-node summaries for nodes alive at the end of the run.
    pub nodes: Vec<NodeSummary>,
    /// The emerged structure (parents of every live node).
    pub structure: StructureSnapshot,
    /// Aggregated churn behaviour, if a churn phase ran.
    pub churn: Option<ChurnReport>,
    /// End of the stabilisation phase (seconds since the start).
    pub stabilization_end_sec: usize,
    /// End of the dissemination phase (seconds since the start).
    pub end_sec: usize,
}

impl BrisaRunResult {
    /// Per-node values extracted with `f`, skipping the source.
    pub fn non_source<T>(&self, f: impl Fn(&NodeSummary) -> T) -> Vec<T> {
        self.nodes.iter().filter(|n| !n.is_source).map(f).collect()
    }

    /// Fraction of live, non-source nodes *present before the stream
    /// started* that delivered every message. Nodes joined by churn after
    /// the stream began are excluded: they legitimately miss the messages
    /// published before they existed.
    pub fn completeness(&self) -> f64 {
        let eligible: Vec<&NodeSummary> = self
            .nodes
            .iter()
            .filter(|n| !n.is_source && n.id.0 < self.original_nodes)
            .collect();
        if eligible.is_empty() {
            return 1.0;
        }
        let complete = eligible
            .iter()
            .filter(|n| n.delivered >= self.messages_published)
            .count();
        complete as f64 / eligible.len() as f64
    }
}

/// Runs a BRISA scenario to completion on the generic engine.
pub fn run_brisa(sc: &BrisaScenario) -> BrisaRunResult {
    let cfg = BrisaStackConfig {
        hpv: sc.hyparview_config(),
        brisa: sc.brisa_config(),
    };
    let result = Runner::<BrisaNode>::new(&cfg, &sc.run_spec()).run();
    adapt(sc, result)
}

/// Translates the engine's protocol-agnostic result into the BRISA result
/// type: builds the structure snapshot and aggregates repair telemetry into
/// the churn report.
fn adapt(sc: &BrisaScenario, r: EngineResult) -> BrisaRunResult {
    let (window_start, window_end) = r.churn_window;
    let mut structure = StructureSnapshot::new(r.source.0);
    let mut report = ChurnReport {
        duration_minutes: sc
            .churn
            .map(|c| c.duration.as_secs_f64() / 60.0)
            .unwrap_or(0.0),
        failures_injected: r.failures_injected,
        joins_injected: r.joins_injected,
        ..Default::default()
    };
    let mut parents_lost_events = 0usize;
    let mut orphan_events = 0usize;
    let mut summaries = Vec::with_capacity(r.nodes.len());

    for o in &r.nodes {
        structure.set_parents(o.id.0, o.report.parents.iter().map(|p| p.0).collect());

        let repairs = &o.report.repairs;
        parents_lost_events += repairs
            .parents_lost
            .iter()
            .filter(|&&t| t >= window_start && t <= window_end)
            .count();
        orphan_events += repairs
            .orphaned
            .iter()
            .filter(|&&t| t >= window_start && t <= window_end)
            .count();
        report.soft_repairs += repairs.soft_repairs;
        report.hard_repairs += repairs.hard_repairs;
        report
            .soft_delays_ms
            .extend(repairs.soft_delays_us.iter().map(|&us| us as f64 / 1000.0));
        report
            .hard_delays_ms
            .extend(repairs.hard_delays_us.iter().map(|&us| us as f64 / 1000.0));

        summaries.push(NodeSummary {
            id: o.id,
            is_source: o.is_source,
            delivered: o.report.delivered,
            duplicates_per_message: o.report.duplicates_per_message,
            depth: o.report.depth,
            degree: o.report.degree,
            parents: o.report.parents.clone(),
            routing_delay_ms: o.routing_delay_ms,
            point_to_point_ms: o.point_to_point_ms,
            dissemination_latency_secs: o.dissemination_latency_secs,
            construction_time_ms: o.report.construction_time.map(|d| d.as_millis_f64()),
            bandwidth: o.bandwidth.clone(),
        });
    }

    let churn = sc.churn.map(|c| {
        let minutes = c.duration.as_secs_f64() / 60.0;
        report.parents_lost_per_min = parents_lost_events as f64 / minutes.max(1e-9);
        report.orphans_per_min = orphan_events as f64 / minutes.max(1e-9);
        report.finalise();
        report.clone()
    });

    BrisaRunResult {
        source: r.source,
        original_nodes: r.original_nodes,
        messages_published: r.messages_published,
        publish_times: r.publish_times,
        nodes: summaries,
        structure,
        churn,
        stabilization_end_sec: r.stabilization_end_sec,
        end_sec: r.end_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BrisaScenario, ChurnSpec, StreamSpec};
    use brisa::{ParentStrategy, StructureMode};
    use brisa_simnet::SimDuration;

    #[test]
    fn small_tree_run_is_complete_and_duplicate_free_after_bootstrap() {
        let sc = BrisaScenario::small_test(32);
        let r = run_brisa(&sc);
        assert_eq!(r.messages_published, 10);
        assert!(
            (r.completeness() - 1.0).abs() < 1e-9,
            "every node delivered everything"
        );
        assert!(r.structure.is_acyclic());
        assert!(r.structure.is_complete());
        // Non-source nodes have exactly one parent in tree mode.
        for n in r.nodes.iter().filter(|n| !n.is_source) {
            assert_eq!(n.parents.len(), 1);
            assert!(n.depth.is_some());
        }
        // Duplicates only stem from the bootstrap flood: well under one per
        // message on average for a 10-message stream.
        let avg_dup: f64 = r
            .non_source(|n| n.duplicates_per_message)
            .iter()
            .sum::<f64>()
            / (r.nodes.len() - 1) as f64;
        assert!(avg_dup < 1.0, "avg duplicates per message {avg_dup}");
    }

    #[test]
    fn dag_run_gets_multiple_parents() {
        let sc = BrisaScenario {
            mode: StructureMode::Dag { parents: 2 },
            view_size: 8,
            ..BrisaScenario::small_test(32)
        };
        let r = run_brisa(&sc);
        let multi = r
            .nodes
            .iter()
            .filter(|n| !n.is_source && n.parents.len() >= 2)
            .count();
        assert!(
            multi * 2 > r.nodes.len() - 1,
            "most nodes found 2 parents ({multi})"
        );
        assert!(r.structure.is_acyclic());
    }

    #[test]
    fn churn_run_produces_a_report() {
        let sc = BrisaScenario {
            churn: Some(ChurnSpec {
                rate_percent: 5.0,
                interval: SimDuration::from_secs(10),
                duration: SimDuration::from_secs(40),
            }),
            stream: StreamSpec {
                messages: 50,
                rate_per_sec: 5.0,
                payload_bytes: 128,
            },
            ..BrisaScenario::small_test(48)
        };
        let r = run_brisa(&sc);
        let churn = r.churn.clone().expect("churn report present");
        assert!(churn.failures_injected > 0);
        assert_eq!(churn.failures_injected, churn.joins_injected);
        assert!(
            churn.parents_lost_per_min > 0.0,
            "failures must cost somebody a parent"
        );
        assert!(
            (churn.soft_pct + churn.hard_pct - 100.0).abs() < 1e-6
                || (churn.soft_repairs + churn.hard_repairs) == 0
        );
        // The stream kept flowing: live non-source nodes received most messages.
        for n in r
            .nodes
            .iter()
            .filter(|n| n.id.0 < r.original_nodes && !n.is_source)
        {
            if n.delivered < r.messages_published {
                eprintln!(
                    "incomplete node {:?}: delivered {}/{} parents={:?} depth={:?}",
                    n.id, n.delivered, r.messages_published, n.parents, n.depth
                );
            }
        }
        let complete = r.completeness();
        assert!(complete > 0.7, "completeness under churn was {complete}");
    }

    #[test]
    fn delay_aware_strategy_reduces_routing_delay_on_planetlab() {
        use crate::spec::Testbed;
        let base = BrisaScenario {
            nodes: 48,
            testbed: Testbed::PlanetLab,
            stream: StreamSpec::short(20, 512),
            bootstrap: SimDuration::from_secs(30),
            ..Default::default()
        };
        let first_pick = run_brisa(&base);
        let delay_aware = run_brisa(&BrisaScenario {
            strategy: ParentStrategy::DelayAware,
            ..base.clone()
        });
        let mean = |r: &BrisaRunResult| {
            let v: Vec<f64> = r.nodes.iter().filter_map(|n| n.routing_delay_ms).collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let fp = mean(&first_pick);
        let da = mean(&delay_aware);
        // At this reduced scale tree shapes vary a lot between strategies;
        // the full-scale comparison is produced by the fig09 bench. Here we
        // only require that the delay-aware strategy stays in the same
        // ballpark and that both runs completed.
        assert!(fp > 0.0 && da > 0.0);
        assert!(
            da <= fp * 2.0,
            "delay-aware wildly worse than first-pick ({fp:.1}ms vs {da:.1}ms)"
        );
    }
}
