//! Property tests of the wire codec: arbitrary [`StackMsg`] values
//! roundtrip bit-identically, `wire_size()` is the encoded length, and no
//! truncation or byte corruption can make the decoder panic.

use brisa::{BrisaMsg, CycleGuard, DataMsg, StackMsg};
use brisa_membership::HpvMsg;
use brisa_runtime::wire::WireCodec;
use brisa_simnet::{NodeId, WireSize};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::Union;

fn node() -> impl Strategy<Value = NodeId> + 'static {
    (0u32..100_000).prop_map(NodeId)
}

fn guard() -> Union<CycleGuard> {
    prop_oneof![
        vec(node(), 0..12).prop_map(CycleGuard::Path),
        (0u32..1000).prop_map(CycleGuard::Depth),
    ]
}

fn hpv() -> Union<StackMsg> {
    prop_oneof![
        Just(StackMsg::Hpv(HpvMsg::Join)),
        (node(), 0u8..16)
            .prop_map(|(new_node, ttl)| StackMsg::Hpv(HpvMsg::ForwardJoin { new_node, ttl })),
        any::<bool>().prop_map(|high_priority| StackMsg::Hpv(HpvMsg::Neighbor { high_priority })),
        any::<bool>().prop_map(|accepted| StackMsg::Hpv(HpvMsg::NeighborReply { accepted })),
        Just(StackMsg::Hpv(HpvMsg::Disconnect)),
        (node(), vec(node(), 0..16), 0u8..16)
            .prop_map(|(origin, nodes, ttl)| StackMsg::Hpv(HpvMsg::Shuffle { origin, nodes, ttl })),
        vec(node(), 0..16).prop_map(|nodes| StackMsg::Hpv(HpvMsg::ShuffleReply { nodes })),
        any::<u64>().prop_map(|nonce| StackMsg::Hpv(HpvMsg::KeepAlive { nonce })),
        any::<u64>().prop_map(|nonce| StackMsg::Hpv(HpvMsg::KeepAliveAck { nonce })),
    ]
}

fn brisa() -> Union<StackMsg> {
    prop_oneof![
        (
            (any::<u64>(), 0usize..4096),
            (0u32..100_000, 0u16..500),
            guard()
        )
            .prop_map(
                |((seq, payload_bytes), (sender_uptime_secs, sender_load), guard)| {
                    StackMsg::Brisa(BrisaMsg::data(DataMsg {
                        seq,
                        payload_bytes,
                        guard,
                        sender_uptime_secs,
                        sender_load,
                    }))
                }
            ),
        any::<bool>().prop_map(|symmetric| StackMsg::Brisa(BrisaMsg::Deactivate { symmetric })),
        Just(StackMsg::Brisa(BrisaMsg::Activate)),
        Just(StackMsg::Brisa(BrisaMsg::ReactivationOrder)),
        (0u32..10_000).prop_map(|depth| StackMsg::Brisa(BrisaMsg::DepthUpdate { depth })),
        (any::<u64>(), any::<u64>()).prop_map(|(from_seq, to_seq)| StackMsg::Brisa(
            BrisaMsg::Retransmit { from_seq, to_seq }
        )),
        any::<u64>().prop_map(|highest| StackMsg::Brisa(BrisaMsg::Edge { highest })),
    ]
}

fn stack_msg() -> Union<StackMsg> {
    prop_oneof![hpv(), brisa()]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Encode → decode is the identity, re-encoding is bit-identical, and
    /// the encoded length is exactly `wire_size()`.
    #[test]
    fn roundtrip_is_bit_identical(msg in stack_msg()) {
        let frame = msg.encode();
        prop_assert_eq!(frame.len(), msg.wire_size());
        let back = StackMsg::decode(&frame).expect("well-formed frame decodes");
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(back.encode(), frame);
    }

    /// Every proper prefix of a frame is rejected — with an error, not a
    /// panic.
    #[test]
    fn truncation_is_rejected(msg in stack_msg(), frac in 0.0f64..1.0) {
        let frame = msg.encode();
        let cut = ((frame.len() as f64) * frac) as usize; // always < len
        prop_assert!(StackMsg::decode(&frame[..cut]).is_err());
    }

    /// Flipping any single byte never panics the decoder. (It may still
    /// decode — flips in reserved bytes, the payload pattern or value
    /// fields produce a different but well-formed message.)
    #[test]
    fn corruption_never_panics(msg in stack_msg(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut frame = msg.encode();
        let pos = ((frame.len() as f64) * pos_frac) as usize;
        frame[pos] ^= 1 << bit;
        if let Ok(decoded) = StackMsg::decode(&frame) {
            // A surviving frame must still be internally consistent.
            let _ = decoded.encode();
        }
    }

    /// Garbage of any length never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in vec(any::<u8>(), 0..64)) {
        let _ = StackMsg::decode(&bytes);
    }
}
