//! The sharded reactor: N nodes multiplexed per worker thread.
//!
//! PR 4's executor spent one thread per node (plus an acceptor, a reader
//! per inbound connection, a writer and a watcher per outbound peer on
//! TCP), which capped live clusters at a few hundred nodes. This module
//! replaces all of it with a small pool of **reactor workers**: every node
//! is pinned to the shard `id % workers`, and each worker runs one loop
//! that merges
//!
//! * the worker's **inbox** (a mutex-protected queue of inbound frames,
//!   control messages and transport commands, woken through a pipe),
//! * the **timer heap** — the same `(deadline, insertion-seq)` discipline
//!   as the per-node executor had, now one heap per shard holding every
//!   resident node's timers *and* the transport's re-dial deadlines,
//! * and **socket readiness** over a hand-rolled `poll(2)` FFI (the
//!   vendored-deps constraint rules out mio): non-blocking listeners,
//!   inbound frame reassembly and outbound write flushing all run on the
//!   worker that owns the node.
//!
//! The sans-IO seam is untouched: protocols still see
//! `on_start`/`on_message`/`on_timer`/`on_link_down` through
//! [`Context::external`], commands drain into the node's [`Transport`],
//! and the wire codec is byte-identical. [`FrameSink`]-based transports
//! (loopback, the fault shim) work unchanged — a sink now enqueues into
//! the owning worker's inbox instead of a per-node channel.
//!
//! **Crash isolation:** every protocol callback runs under
//! `catch_unwind`. A panicking node is poisoned — removed from its shard,
//! its transport torn down so peers observe a link-down — while its shard
//! siblings keep running; the panic never takes down the worker.
//!
//! **TCP under the reactor** (see [`crate::tcp`] for the mesh): sockets
//! are owned by the worker loop, never shared. Outbound connects are the
//! one operation std cannot do non-blockingly, so each worker keeps one
//! **dialer thread** that performs blocking `connect_timeout` + handshake
//! serially and posts the result back to the inbox; retry pacing
//! (initial-dial retries, the 50 → 800 ms reconnect backoff from
//! [`RuntimeConfig`]) lives on the worker's timer heap, so a slow dial
//! never stalls frame traffic. Backpressure is per-link: frames queue in
//! the link's outbound buffer until the socket drains (`POLLOUT`);
//! protocol-level flow control is the stack's own (BRISA's per-round
//! fan-out), exactly as in the simulator.

use crate::config::RuntimeConfig;
use crate::executor::{InvokeFn, RuntimeStats, WallClock};
use crate::transport::{FrameSink, NetEvent, Transport};
use crate::wire::{WireCodec, LEN_PREFIX_BYTES, MAX_FRAME_BYTES, WIRE_VERSION};
use brisa_simnet::seed::{mix64, split_mix64};
use brisa_simnet::{Command, Context, NodeId, Protocol, TimerTag};
use brisa_telemetry::{Counter, EventKind as TelEventKind, Histo, Telemetry};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest a worker parks when it has nothing scheduled.
const IDLE_PARK: Duration = Duration::from_millis(100);

/// Cadence of the idle-link reap sweep (see [`ShardIo::reap_idle`]).
const REAP_INTERVAL: Duration = Duration::from_secs(1);

/// Goodbye marker: a zero-length frame prefix, outside the codec's valid
/// frame range, written immediately before a *deliberate* close of an
/// idle outbound connection. The receiver flags the connection so the
/// EOF that follows is not surfaced as peer death.
const GOODBYE: [u8; LEN_PREFIX_BYTES] = [0; LEN_PREFIX_BYTES];

/// Readiness primitives: `poll(2)` over a hand-defined `pollfd`, plus a
/// pipe-based waker. Linux/unix is the supported platform; the fallback
/// degrades to a 1 ms tick that reports every descriptor ready (handlers
/// are non-blocking and tolerate spurious readiness).
#[cfg(unix)]
mod sys {
    use std::io::{Read, Write};
    use std::os::raw::{c_int, c_ulong};
    use std::os::unix::io::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    /// `struct pollfd`, kernel ABI layout.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    impl PollFd {
        pub fn new(fd: RawFd, events: i16) -> Self {
            PollFd {
                fd,
                events,
                revents: 0,
            }
        }
        pub fn readable(&self) -> bool {
            self.revents & (POLLIN | POLLERR | POLLHUP) != 0
        }
        pub fn writable(&self) -> bool {
            self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
        }
    }

    extern "C" {
        // `nfds_t` is `c_ulong` on Linux, the platform this runtime
        // targets; `timeout` is in milliseconds.
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Waits until a descriptor is ready or `timeout` passes, filling
    /// `revents` in place. Returns the number of ready descriptors.
    pub fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> usize {
        let ms = timeout.as_millis().min(i32::MAX as u128) as c_int;
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, ms) };
        n.max(0) as usize
    }

    /// The sending half of a worker's wake pipe. One byte is in flight at
    /// most (`pending` collapses a burst of wakes into one write).
    pub struct Waker {
        tx: UnixStream,
        pending: Arc<AtomicBool>,
    }

    /// The worker-side half: its descriptor joins the poll set.
    pub struct WakeRx {
        rx: UnixStream,
        pending: Arc<AtomicBool>,
    }

    pub fn wake_pair() -> std::io::Result<(Waker, WakeRx)> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        let pending = Arc::new(AtomicBool::new(false));
        Ok((
            Waker {
                tx,
                pending: Arc::clone(&pending),
            },
            WakeRx { rx, pending },
        ))
    }

    impl Waker {
        pub fn wake(&self) {
            if !self.pending.swap(true, Ordering::SeqCst) {
                let _ = (&self.tx).write(&[1u8]);
            }
        }
    }

    impl WakeRx {
        pub fn fd(&self) -> RawFd {
            self.rx.as_raw_fd()
        }

        /// Clears the pending flag, then the pipe — in that order, so a
        /// wake racing the drain is never lost (it either lands in the
        /// queue we are about to swap or leaves a fresh byte for the next
        /// poll).
        pub fn drain(&self) {
            self.pending.store(false, Ordering::SeqCst);
            let mut buf = [0u8; 64];
            while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;

    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    impl PollFd {
        pub fn new(fd: i32, events: i16) -> Self {
            PollFd {
                fd,
                events,
                revents: 0,
            }
        }
        pub fn readable(&self) -> bool {
            self.revents & POLLIN != 0
        }
        pub fn writable(&self) -> bool {
            self.revents & POLLOUT != 0
        }
    }

    /// Degraded portability mode: park briefly, then report everything
    /// ready — the non-blocking handlers absorb the spurious readiness.
    pub fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> usize {
        std::thread::sleep(timeout.min(Duration::from_millis(1)));
        for f in fds.iter_mut() {
            f.revents = f.events;
        }
        fds.len()
    }

    pub struct Waker {
        pending: Arc<AtomicBool>,
    }
    pub struct WakeRx {
        pending: Arc<AtomicBool>,
    }

    pub fn wake_pair() -> std::io::Result<(Waker, WakeRx)> {
        let pending = Arc::new(AtomicBool::new(false));
        Ok((
            Waker {
                pending: Arc::clone(&pending),
            },
            WakeRx { pending },
        ))
    }

    impl Waker {
        pub fn wake(&self) {
            self.pending.store(true, Ordering::SeqCst);
        }
    }
    impl WakeRx {
        pub fn fd(&self) -> i32 {
            -1
        }
        pub fn drain(&self) {
            self.pending.store(false, Ordering::SeqCst);
        }
    }
}

/// Transport-side commands executed on the owning worker's loop. Pushed by
/// [`ReactorTcpTransport`] handles (from any thread — the shim's delay
/// pump included) and by the dialer thread.
pub(crate) enum IoCmd {
    /// Register `node`'s pre-bound listener with its shard.
    AddListener {
        /// The owning node.
        node: NodeId,
        /// Its listener (made non-blocking by the worker).
        listener: TcpListener,
        /// The mesh's advertised addresses, for dialing peers.
        addrs: Arc<Vec<SocketAddr>>,
    },
    /// Queue a frame on the `from → to` outbound link.
    Send {
        from: NodeId,
        to: NodeId,
        frame: Vec<u8>,
    },
    /// Register failure-detection interest in `peer` and ensure a dial.
    Open { from: NodeId, peer: NodeId },
    /// Withdraw failure-detection interest.
    Close { from: NodeId, peer: NodeId },
    /// Tear down every socket `node` owns (kill/shutdown path); peers
    /// observe EOF and surface link-downs on their own shards.
    CloseNode { node: NodeId },
    /// A dial finished on the dialer thread; `stream` is handshaken and
    /// non-blocking on success.
    Dialed {
        owner: NodeId,
        peer: NodeId,
        gen: u64,
        stream: Option<TcpStream>,
    },
}

/// One dial request consumed by the worker's dialer thread.
struct DialReq {
    owner: NodeId,
    peer: NodeId,
    addr: SocketAddr,
    gen: u64,
}

/// Messages consumed by a reactor worker.
enum WorkerMsg<P: Protocol> {
    /// Start executing `proto` as `id` on this shard (fires `on_start`).
    Start {
        id: NodeId,
        proto: P,
        seed: u64,
        transport: Box<dyn Transport>,
    },
    /// An inbound transport event for `id`.
    Net { id: NodeId, event: NetEvent },
    /// Run a closure against `id`'s protocol on its shard.
    Invoke { id: NodeId, f: InvokeFn<P> },
    /// Stop `id`: tear down its transport and reply with its final state,
    /// or `None` if the node is unknown or was poisoned by a panic.
    Stop {
        id: NodeId,
        reply: mpsc::Sender<Option<(P, RuntimeStats)>>,
    },
    /// A transport-side command.
    Io(IoCmd),
    /// Stop every remaining node and exit the worker loop.
    Shutdown,
}

/// A worker's inbox: the queue plus its waker. Shared by every producer
/// targeting the shard (sinks, transport handles, the dialer, the pool).
struct Inbox<P: Protocol> {
    queue: Mutex<VecDeque<WorkerMsg<P>>>,
    waker: sys::Waker,
}

impl<P: Protocol> Inbox<P> {
    fn push(&self, msg: WorkerMsg<P>) {
        self.queue.lock().unwrap().push_back(msg);
        self.waker.wake();
    }
}

/// Object-safe face of an [`Inbox`] for the non-generic TCP machinery.
pub(crate) trait IoPush: Send + Sync {
    fn push_io(&self, cmd: IoCmd);
}

impl<P: Protocol + Send + 'static> IoPush for Inbox<P> {
    fn push_io(&self, cmd: IoCmd) {
        self.push(WorkerMsg::Io(cmd));
    }
}

/// The [`FrameSink`] a transport delivers into: enqueues onto the owning
/// shard's inbox. Per-source FIFO holds because each producer pushes in
/// send order and the queue preserves it.
struct ReactorSink<P: Protocol> {
    id: NodeId,
    inbox: Arc<Inbox<P>>,
}

impl<P: Protocol + Send + 'static> FrameSink for ReactorSink<P> {
    fn deliver(&mut self, event: NetEvent) -> bool {
        self.inbox.push(WorkerMsg::Net { id: self.id, event });
        true
    }

    fn box_clone(&self) -> Box<dyn FrameSink> {
        Box::new(ReactorSink {
            id: self.id,
            inbox: Arc::clone(&self.inbox),
        })
    }
}

/// One node's [`Transport`] handle onto its shard's socket engine. All
/// methods enqueue `IoCmd`s; the worker loop owns the actual sockets.
pub struct ReactorTcpTransport {
    me: NodeId,
    io: Arc<dyn IoPush>,
}

impl Transport for ReactorTcpTransport {
    fn send(&mut self, to: NodeId, frame: Vec<u8>) {
        self.io.push_io(IoCmd::Send {
            from: self.me,
            to,
            frame,
        });
    }

    fn open_connection(&mut self, peer: NodeId) {
        self.io.push_io(IoCmd::Open {
            from: self.me,
            peer,
        });
    }

    fn close_connection(&mut self, peer: NodeId) {
        self.io.push_io(IoCmd::Close {
            from: self.me,
            peer,
        });
    }

    fn shutdown(&mut self) {
        self.io.push_io(IoCmd::CloseNode { node: self.me });
    }
}

/// What a timer deadline triggers when it fires.
enum TimerKind {
    /// A protocol timer of a resident node.
    Proto { node: u32, tag: TimerTag },
    /// A scheduled re-dial of the `owner → peer` outbound link.
    Redial { owner: u32, peer: u32 },
}

/// A pending deadline, `(at, seq)`-ordered so same-instant timers fire in
/// insertion order — the simulator's tie-break, preserved per shard.
struct TimerEntry {
    at: Instant,
    seq: u64,
    kind: TimerKind,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for TimerEntry {}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One resident node: protocol state, RNG, stats and its transport.
struct NodeSlot<P: Protocol> {
    id: NodeId,
    proto: P,
    rng: SmallRng,
    stats: RuntimeStats,
    transport: Box<dyn Transport>,
}

/// Pre-resolved observability handles of one reactor shard. All no-ops
/// when the pool was built without telemetry.
struct ReactorTel {
    tel: Telemetry,
    links_reaped: Counter,
    redials: Counter,
    node_panics: Counter,
    backpressure_stalls: Counter,
    poll_iter_us: Histo,
    inbox_batch: Histo,
}

impl ReactorTel {
    fn new(tel: &Telemetry) -> Self {
        ReactorTel {
            links_reaped: tel.counter("reactor.links_reaped"),
            redials: tel.counter("reactor.redials"),
            node_panics: tel.counter("reactor.node_panics"),
            backpressure_stalls: tel.counter("reactor.backpressure_stalls"),
            poll_iter_us: tel.histogram("reactor.poll_iter_us"),
            inbox_batch: tel.histogram("reactor.inbox_batch"),
            tel: tel.clone(),
        }
    }
}

/// The protocol-facing half of a shard: nodes, their merged timer heap,
/// and the dispatch/poison machinery.
struct ProtoCore<P: Protocol> {
    clock: WallClock,
    nodes: HashMap<u32, NodeSlot<P>>,
    /// Nodes removed by a panic; a later `Stop` replies `None` for them.
    poisoned: BTreeSet<u32>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    commands: Vec<Command<P::Message>>,
    /// This shard's index in the pool (flight-recorder shard pinning).
    shard: usize,
    /// Observability handles; the handle itself is also exposed to every
    /// protocol callback through the dispatch context.
    rtel: ReactorTel,
}

impl<P> ProtoCore<P>
where
    P: Protocol,
    P::Message: WireCodec,
{
    fn new(clock: WallClock, shard: usize, telemetry: &Telemetry) -> Self {
        ProtoCore {
            clock,
            nodes: HashMap::new(),
            poisoned: BTreeSet::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            commands: Vec::new(),
            shard,
            rtel: ReactorTel::new(telemetry),
        }
    }

    /// Records a flight-recorder event about `node`, stamped with the
    /// shard clock and pinned to this shard's ring. No-op when the pool
    /// runs without telemetry.
    fn tel_event(&self, node: u32, kind: TelEventKind, a: u64, b: u64) {
        if self.rtel.tel.is_enabled() {
            self.rtel.tel.event_on_shard(
                self.shard,
                self.clock.now().as_micros(),
                node,
                kind,
                a,
                b,
            );
        }
    }

    fn push_timer(&mut self, at: Instant, kind: TimerKind) {
        self.timers.push(Reverse(TimerEntry {
            at,
            seq: self.timer_seq,
            kind,
        }));
        self.timer_seq += 1;
    }

    /// Runs one protocol callback for `id` under `catch_unwind` and drains
    /// the commands it emitted. A panic poisons the node: it is removed
    /// from the shard and its transport torn down (peers see a link-down),
    /// while shard siblings continue untouched.
    fn dispatch(&mut self, id: u32, f: impl FnOnce(&mut P, &mut Context<'_, P::Message>)) {
        let Some(slot) = self.nodes.get_mut(&id) else {
            return;
        };
        let mut commands = std::mem::take(&mut self.commands);
        let now = self.clock.now();
        let telemetry = &self.rtel.tel;
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            let mut ctx = Context::external_with_telemetry(
                now,
                slot.id,
                &mut slot.rng,
                &mut commands,
                telemetry,
            );
            f(&mut slot.proto, &mut ctx);
        }))
        .is_err();
        if panicked {
            commands.clear();
            self.commands = commands;
            self.poison(id);
            return;
        }
        let mut deferred_timers: Vec<(Instant, TimerTag)> = Vec::new();
        for cmd in commands.drain(..) {
            match cmd {
                Command::Send { to, msg } => {
                    let frame = msg.encode();
                    slot.stats.frames_out += 1;
                    slot.stats.bytes_out += frame.len() as u64;
                    slot.transport.send(to, frame);
                }
                Command::SetTimer { delay, tag } => {
                    deferred_timers.push((
                        Instant::now() + Duration::from_micros(delay.as_micros()),
                        tag,
                    ));
                }
                Command::OpenConnection { peer } => slot.transport.open_connection(peer),
                Command::CloseConnection { peer } => slot.transport.close_connection(peer),
            }
        }
        self.commands = commands;
        for (at, tag) in deferred_timers {
            self.push_timer(at, TimerKind::Proto { node: id, tag });
        }
    }

    /// Removes a panicked node. Its protocol state is dropped (a crashed
    /// node has no report), its transport shut down so peers detect the
    /// failure exactly as they would a kill.
    fn poison(&mut self, id: u32) {
        if let Some(mut slot) = self.nodes.remove(&id) {
            self.rtel.node_panics.inc();
            self.tel_event(id, TelEventKind::NodePanic, 0, 0);
            self.poisoned.insert(id);
            // The transport teardown itself is best-effort on this path.
            let _ = catch_unwind(AssertUnwindSafe(|| slot.transport.shutdown()));
        }
    }

    fn on_net(&mut self, id: u32, event: NetEvent) {
        match event {
            NetEvent::Frame { from, frame } => {
                let Some(slot) = self.nodes.get_mut(&id) else {
                    return;
                };
                match P::Message::decode(&frame) {
                    Ok(msg) => {
                        slot.stats.frames_in += 1;
                        slot.stats.bytes_in += frame.len() as u64;
                        self.dispatch(id, move |p, ctx| p.on_message(ctx, from, msg));
                    }
                    Err(_) => slot.stats.decode_errors += 1,
                }
            }
            NetEvent::LinkDown { peer } => {
                self.dispatch(id, move |p, ctx| p.on_link_down(ctx, peer));
            }
        }
    }

    fn start_node(&mut self, id: NodeId, proto: P, seed: u64, transport: Box<dyn Transport>) {
        let rng = SmallRng::seed_from_u64(split_mix64(seed, id.0 as u64));
        self.nodes.insert(
            id.0,
            NodeSlot {
                id,
                proto,
                rng,
                stats: RuntimeStats::default(),
                transport,
            },
        );
        // A restart under the same identifier clears the old poison.
        self.poisoned.remove(&id.0);
        self.dispatch(id.0, |p, ctx| p.on_start(ctx));
    }

    fn stop_node(&mut self, id: u32) -> Option<(P, RuntimeStats)> {
        let mut slot = self.nodes.remove(&id)?;
        slot.transport.shutdown();
        Some((slot.proto, slot.stats))
    }

    /// Fires every due protocol timer; returns due re-dial links for the
    /// I/O engine (which lives outside this struct).
    fn fire_due_timers(&mut self, redials: &mut Vec<(u32, u32)>) {
        loop {
            let now = Instant::now();
            let due = matches!(self.timers.peek(), Some(Reverse(e)) if e.at <= now);
            if !due {
                return;
            }
            let Reverse(entry) = self.timers.pop().expect("peeked entry");
            match entry.kind {
                TimerKind::Proto { node, tag } => {
                    if let Some(slot) = self.nodes.get_mut(&node) {
                        slot.stats.timers_fired += 1;
                        self.dispatch(node, move |p, ctx| p.on_timer(ctx, tag));
                    }
                }
                TimerKind::Redial { owner, peer } => redials.push((owner, peer)),
            }
        }
    }

    /// Time until the next deadline, capped at [`IDLE_PARK`].
    fn next_timeout(&self) -> Duration {
        self.timers
            .peek()
            .map(|Reverse(e)| e.at.saturating_duration_since(Instant::now()))
            .unwrap_or(IDLE_PARK)
            .min(IDLE_PARK)
    }
}

/// State of one `owner → peer` outbound link.
enum OutState {
    /// A dial is in flight on the dialer thread.
    Dialing,
    /// A re-dial is scheduled on the timer heap.
    Backoff,
    /// Connected; frames flush through the non-blocking stream.
    Up(TcpStream),
}

/// One outbound link: its connection state machine and write queue. The
/// queue is the backpressure point — a slow or re-dialing peer accumulates
/// frames here (never blocking the shard), and they flush in order once
/// the socket drains.
struct OutLink {
    state: OutState,
    queue: VecDeque<Vec<u8>>,
    /// Bytes of `queue.front()` already written on the current connection.
    offset: usize,
    /// Dials failed since the link was last up.
    attempts: u32,
    /// Whether the link ever connected (selects the initial-dial vs the
    /// reconnect retry schedule).
    established: bool,
    /// Current dial generation; a stale `Dialed` result is discarded.
    gen: u64,
    /// Last moment the link carried (or was asked to carry) traffic; the
    /// reap sweep closes unmonitored links idle past
    /// `RuntimeConfig::idle_link_timeout`.
    last_used: Instant,
}

/// One inbound connection: handshake, then length-prefixed frames.
struct InConn {
    owner: u32,
    stream: TcpStream,
    from: Option<NodeId>,
    buf: Vec<u8>,
    /// A goodbye marker arrived: the peer is closing this connection
    /// deliberately (idle reap), so the EOF that follows is not peer death.
    deliberate: bool,
}

/// The socket engine of one shard. Empty (and cost-free) on loopback-only
/// clusters.
struct ShardIo {
    addrs: Option<Arc<Vec<SocketAddr>>>,
    /// Per-owner listeners, non-blocking.
    listeners: Vec<(u32, TcpListener)>,
    /// Inbound connections, keyed by a stable token.
    inconns: HashMap<u64, InConn>,
    next_token: u64,
    outlinks: HashMap<(u32, u32), OutLink>,
    /// `monitored[owner]` = peers under failure-detection interest; an
    /// entry is consumed when its link-down fires (at most one
    /// notification per `open_connection`, the transport contract).
    monitored: HashMap<u32, BTreeSet<u32>>,
    dial_tx: mpsc::Sender<DialReq>,
    dial_gen: u64,
}

impl ShardIo {
    fn new(dial_tx: mpsc::Sender<DialReq>) -> Self {
        ShardIo {
            addrs: None,
            listeners: Vec::new(),
            inconns: HashMap::new(),
            next_token: 0,
            outlinks: HashMap::new(),
            monitored: HashMap::new(),
            dial_tx,
            dial_gen: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.listeners.is_empty() && self.inconns.is_empty() && self.outlinks.is_empty()
    }

    /// Consumes the monitored entry and surfaces the link-down to the
    /// owner's protocol.
    fn link_down<P>(&mut self, core: &mut ProtoCore<P>, owner: u32, peer: NodeId)
    where
        P: Protocol,
        P::Message: WireCodec,
    {
        let fired = self
            .monitored
            .get_mut(&owner)
            .is_some_and(|set| set.remove(&peer.0));
        if fired {
            core.on_net(owner, NetEvent::LinkDown { peer });
        }
    }

    fn request_dial(&mut self, owner: u32, peer: u32) -> u64 {
        self.dial_gen += 1;
        let gen = self.dial_gen;
        let addr = self
            .addrs
            .as_ref()
            .expect("TCP transport used before any listener was added")[peer as usize];
        let _ = self.dial_tx.send(DialReq {
            owner: NodeId(owner),
            peer: NodeId(peer),
            addr,
            gen,
        });
        gen
    }

    /// Ensures an outbound link exists, dialing if fresh.
    fn ensure_link<P>(&mut self, core: &mut ProtoCore<P>, owner: u32, peer: u32)
    where
        P: Protocol,
        P::Message: WireCodec,
    {
        if self.outlinks.contains_key(&(owner, peer)) {
            return;
        }
        core.tel_event(owner, TelEventKind::Dial, peer as u64, 0);
        let gen = self.request_dial(owner, peer);
        self.outlinks.insert(
            (owner, peer),
            OutLink {
                state: OutState::Dialing,
                queue: VecDeque::new(),
                offset: 0,
                attempts: 0,
                established: false,
                gen,
                last_used: Instant::now(),
            },
        );
    }

    /// The link failed past its retry budget: drop it (with its queue) and
    /// surface the failure. A later send re-creates it with a fresh budget,
    /// like the old transport's fresh-writer re-dial.
    fn fail_link<P>(&mut self, core: &mut ProtoCore<P>, owner: u32, peer: u32)
    where
        P: Protocol,
        P::Message: WireCodec,
    {
        self.outlinks.remove(&(owner, peer));
        core.tel_event(owner, TelEventKind::LinkDown, peer as u64, 0);
        self.link_down(core, owner, NodeId(peer));
    }

    /// Flushes the link's queue onto its non-blocking stream. On a write
    /// error the connection is retired and a re-dial scheduled; the
    /// in-progress frame is kept for a full resend (the receiver discards
    /// the broken connection's partial frame with the connection).
    fn flush_link<P>(&mut self, core: &mut ProtoCore<P>, cfg: &RuntimeConfig, owner: u32, peer: u32)
    where
        P: Protocol,
        P::Message: WireCodec,
    {
        let Some(link) = self.outlinks.get_mut(&(owner, peer)) else {
            return;
        };
        let OutState::Up(stream) = &mut link.state else {
            return;
        };
        loop {
            let Some(front) = link.queue.front() else {
                return;
            };
            while link.offset < front.len() {
                match stream.write(&front[link.offset..]) {
                    Ok(0) => {
                        self.retire_connection(core, cfg, owner, peer);
                        return;
                    }
                    Ok(n) => link.offset += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.retire_connection(core, cfg, owner, peer);
                        return;
                    }
                }
            }
            link.queue.pop_front();
            link.offset = 0;
        }
    }

    /// A mid-stream write failure: drop the connection and enter the
    /// bounded backoff re-dial cycle before surfacing anything.
    fn retire_connection<P>(
        &mut self,
        core: &mut ProtoCore<P>,
        cfg: &RuntimeConfig,
        owner: u32,
        peer: u32,
    ) where
        P: Protocol,
        P::Message: WireCodec,
    {
        let Some(link) = self.outlinks.get_mut(&(owner, peer)) else {
            return;
        };
        link.state = OutState::Backoff;
        link.offset = 0;
        link.attempts = 0;
        let delay = redial_delay(cfg, link, owner, peer);
        core.push_timer(Instant::now() + delay, TimerKind::Redial { owner, peer });
    }

    /// A scheduled re-dial deadline fired. Returns whether a dial was
    /// actually issued (the link may have been closed or replaced while
    /// the deadline was pending).
    fn redial(&mut self, owner: u32, peer: u32) -> bool {
        let in_backoff = matches!(
            self.outlinks.get(&(owner, peer)),
            Some(link) if matches!(link.state, OutState::Backoff)
        );
        if in_backoff {
            let gen = self.request_dial(owner, peer);
            let link = self
                .outlinks
                .get_mut(&(owner, peer))
                .expect("checked above");
            link.state = OutState::Dialing;
            link.gen = gen;
        }
        in_backoff
    }

    /// A dial result arrived from the dialer thread.
    fn dialed<P>(
        &mut self,
        core: &mut ProtoCore<P>,
        cfg: &RuntimeConfig,
        owner: u32,
        peer: u32,
        gen: u64,
        stream: Option<TcpStream>,
    ) where
        P: Protocol,
        P::Message: WireCodec,
    {
        let Some(link) = self.outlinks.get_mut(&(owner, peer)) else {
            return; // Link was closed while the dial was in flight.
        };
        if link.gen != gen || !matches!(link.state, OutState::Dialing) {
            return; // Stale dial of a replaced connection.
        }
        match stream {
            Some(stream) => {
                link.state = OutState::Up(stream);
                link.established = true;
                link.attempts = 0;
                link.offset = 0;
                link.last_used = Instant::now();
                core.tel_event(owner, TelEventKind::LinkUp, peer as u64, 0);
                self.flush_link(core, cfg, owner, peer);
            }
            None => {
                link.attempts += 1;
                core.tel_event(
                    owner,
                    TelEventKind::DialFailed,
                    peer as u64,
                    link.attempts as u64,
                );
                let budget = if link.established {
                    cfg.reconnect_attempts
                } else {
                    cfg.connect_retries
                };
                if link.attempts >= budget {
                    self.fail_link(core, owner, peer);
                } else {
                    link.state = OutState::Backoff;
                    let delay = redial_delay(cfg, link, owner, peer);
                    core.push_timer(Instant::now() + delay, TimerKind::Redial { owner, peer });
                }
            }
        }
    }

    /// Executes one transport command on this shard.
    fn handle_cmd<P>(&mut self, core: &mut ProtoCore<P>, cfg: &RuntimeConfig, cmd: IoCmd)
    where
        P: Protocol,
        P::Message: WireCodec,
    {
        match cmd {
            IoCmd::AddListener {
                node,
                listener,
                addrs,
            } => {
                let _ = listener.set_nonblocking(true);
                self.addrs.get_or_insert(addrs);
                self.listeners.push((node.0, listener));
            }
            IoCmd::Send { from, to, frame } => {
                self.ensure_link(core, from.0, to.0);
                let link = self.outlinks.get_mut(&(from.0, to.0)).expect("ensured");
                // A frame landing behind an already-backlogged queue is a
                // backpressure stall: the link is slower than its producer.
                if !link.queue.is_empty() {
                    core.rtel.backpressure_stalls.inc();
                    core.tel_event(
                        from.0,
                        TelEventKind::BackpressureStall,
                        to.0 as u64,
                        link.queue.len() as u64 + 1,
                    );
                }
                link.queue.push_back(frame);
                link.last_used = Instant::now();
                self.flush_link(core, cfg, from.0, to.0);
            }
            IoCmd::Open { from, peer } => {
                self.monitored.entry(from.0).or_default().insert(peer.0);
                // Eagerly dial so a dead peer is detected without waiting
                // for traffic.
                self.ensure_link(core, from.0, peer.0);
            }
            IoCmd::Close { from, peer } => {
                if let Some(set) = self.monitored.get_mut(&from.0) {
                    set.remove(&peer.0);
                }
            }
            IoCmd::CloseNode { node } => {
                self.listeners.retain(|(owner, _)| *owner != node.0);
                self.inconns.retain(|_, c| c.owner != node.0);
                self.outlinks.retain(|(owner, _), _| *owner != node.0);
                self.monitored.remove(&node.0);
            }
            IoCmd::Dialed {
                owner,
                peer,
                gen,
                stream,
            } => self.dialed(core, cfg, owner.0, peer.0, gen, stream),
        }
    }

    /// Accepts every pending inbound connection on `listener_idx`.
    fn accept_ready(&mut self, listener_idx: usize) {
        loop {
            let (owner, listener) = &self.listeners[listener_idx];
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    self.inconns.insert(
                        token,
                        InConn {
                            owner: *owner,
                            stream,
                            from: None,
                            buf: Vec::new(),
                            deliberate: false,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Drains a readable inbound connection: handshake, then frame
    /// reassembly, dispatching complete frames straight into the owner's
    /// protocol (same thread — the owner lives on this shard).
    fn read_inconn<P>(
        &mut self,
        core: &mut ProtoCore<P>,
        scratch: &mut [u8],
        token: u64,
    ) -> Result<(), ()>
    where
        P: Protocol,
        P::Message: WireCodec,
    {
        let Some(mut conn) = self.inconns.get_mut(&token) else {
            return Ok(());
        };
        let mut closed = false;
        loop {
            match conn.stream.read(scratch) {
                Ok(0) => {
                    closed = true;
                    break;
                }
                Ok(n) => conn.buf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    closed = true;
                    break;
                }
            }
        }
        // Handshake: 5 bytes naming the peer (version, u32 LE id).
        if conn.from.is_none() && conn.buf.len() >= 5 {
            if conn.buf[0] != WIRE_VERSION {
                return self.drop_inconn(core, token);
            }
            let from = u32::from_le_bytes([conn.buf[1], conn.buf[2], conn.buf[3], conn.buf[4]]);
            conn.from = Some(NodeId(from));
            conn.buf.drain(..5);
        }
        // Frame reassembly: u32 LE length prefix, then the body.
        while conn.from.is_some() && conn.buf.len() >= LEN_PREFIX_BYTES {
            let len =
                u32::from_le_bytes([conn.buf[0], conn.buf[1], conn.buf[2], conn.buf[3]]) as usize;
            if len == 0 {
                // Goodbye marker: the peer is reaping this idle connection
                // (see `reap_idle`); the EOF that follows is deliberate.
                conn.deliberate = true;
                conn.buf.drain(..LEN_PREFIX_BYTES);
                continue;
            }
            if !(3..=MAX_FRAME_BYTES).contains(&len) {
                // Corrupt stream: treat like a broken connection.
                return self.drop_inconn(core, token);
            }
            let total = LEN_PREFIX_BYTES + len;
            if conn.buf.len() < total {
                break;
            }
            let frame: Vec<u8> = conn.buf[..total].to_vec();
            conn.buf.drain(..total);
            let owner = conn.owner;
            let from = conn.from.expect("handshaken");
            core.on_net(owner, NetEvent::Frame { from, frame });
            // The dispatch may have poisoned/changed the map; re-borrow.
            let Some(c) = self.inconns.get_mut(&token) else {
                return Ok(());
            };
            conn = c;
        }
        if closed {
            return self.drop_inconn(core, token);
        }
        Ok(())
    }

    /// Removes an inbound connection, surfacing the peer-death signal if
    /// the identified peer is monitored by the owner.
    fn drop_inconn<P>(&mut self, core: &mut ProtoCore<P>, token: u64) -> Result<(), ()>
    where
        P: Protocol,
        P::Message: WireCodec,
    {
        if let Some(conn) = self.inconns.remove(&token) {
            if let Some(from) = conn.from {
                if !conn.deliberate {
                    self.link_down(core, conn.owner, from);
                }
            }
        }
        Err(())
    }

    /// A readable outbound connection: the peer never writes on this
    /// direction, so readiness means EOF/reset — the peer-close watcher of
    /// the old transport, without the thread.
    fn check_out_eof<P>(&mut self, core: &mut ProtoCore<P>, owner: u32, peer: u32)
    where
        P: Protocol,
        P::Message: WireCodec,
    {
        let Some(link) = self.outlinks.get_mut(&(owner, peer)) else {
            return;
        };
        let OutState::Up(stream) = &mut link.state else {
            return;
        };
        let mut probe = [0u8; 32];
        loop {
            match stream.read(&mut probe) {
                Ok(0) => {
                    // Peer closed its end: drop the link; the next send (or
                    // a protocol-level re-open) dials fresh.
                    self.outlinks.remove(&(owner, peer));
                    self.link_down(core, owner, NodeId(peer));
                    return;
                }
                // Unexpected chatter on a write-only direction: ignore it
                // and keep the connection.
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.outlinks.remove(&(owner, peer));
                    self.link_down(core, owner, NodeId(peer));
                    return;
                }
            }
        }
    }

    /// Closes unmonitored outbound links idle past `cfg.idle_link_timeout`.
    ///
    /// This is fd hygiene, and at in-process cluster scale it is load-
    /// bearing: every send to a fresh peer opens a connection (four fds per
    /// symmetric pair, both endpoints living in this process), and overlay
    /// maintenance traffic — shuffles, random walks — targets a different
    /// peer almost every time. Without reaping, a 1000-node cluster walks
    /// straight into the process fd ceiling during bootstrap and the nodes
    /// past the cliff starve forever. Links under `open_connection`
    /// monitoring are never reaped (their EOF watch *is* the failure
    /// detector); everything else closes after the idle window, announced
    /// with a [`GOODBYE`] marker so the receiver does not mistake the
    /// deliberate close for peer death. A later send simply re-dials.
    fn reap_idle<P>(&mut self, core: &mut ProtoCore<P>, cfg: &RuntimeConfig, now: Instant)
    where
        P: Protocol,
        P::Message: WireCodec,
    {
        if self.outlinks.is_empty() {
            return;
        }
        let mut reap: Vec<(u32, u32)> = Vec::new();
        for (&(owner, peer), link) in &self.outlinks {
            let monitored = self
                .monitored
                .get(&owner)
                .is_some_and(|set| set.contains(&peer));
            if matches!(link.state, OutState::Up(_))
                && !monitored
                && link.queue.is_empty()
                && link.offset == 0
                && now.duration_since(link.last_used) >= cfg.idle_link_timeout
            {
                reap.push((owner, peer));
            }
        }
        for (owner, peer) in reap {
            let Some(link) = self.outlinks.get_mut(&(owner, peer)) else {
                continue;
            };
            let OutState::Up(stream) = &mut link.state else {
                continue;
            };
            match stream.write(&GOODBYE) {
                // Socket buffer full on an idle link (peer not reading its
                // flushed tail): retry at the next sweep rather than close
                // unannounced.
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Marker written (or the connection is already dead, in
                // which case the close changes nothing): drop the link.
                _ => {
                    self.outlinks.remove(&(owner, peer));
                    if let Some(slot) = core.nodes.get_mut(&owner) {
                        slot.stats.links_reaped += 1;
                    }
                    core.rtel.links_reaped.inc();
                    core.tel_event(owner, TelEventKind::LinkReap, peer as u64, 0);
                }
            }
        }
    }

    /// Census of the outbound write queues: `(queued frames, links with a
    /// non-empty queue)`. Observability only.
    fn write_queue_census(&self) -> (u64, u64) {
        let mut frames = 0u64;
        let mut links = 0u64;
        for link in self.outlinks.values() {
            if !link.queue.is_empty() {
                links += 1;
                frames += link.queue.len() as u64;
            }
        }
        (frames, links)
    }
}

/// Deterministic per-link re-dial delay: the schedule from
/// [`RuntimeConfig`] plus jitter derived from the node pair and attempt
/// number, so a mass outage de-synchronizes without an RNG.
fn redial_delay(cfg: &RuntimeConfig, link: &OutLink, owner: u32, peer: u32) -> Duration {
    if !link.established {
        return cfg.connect_retry_delay;
    }
    let backoff = cfg.reconnect_backoff(link.attempts);
    let jitter_seed =
        mix64(((owner as u64) << 32 | peer as u64).wrapping_add(link.attempts as u64));
    let jitter = Duration::from_micros(jitter_seed % (backoff.as_micros() as u64 / 2).max(1));
    backoff + jitter
}

/// Poll-set token: what a ready descriptor maps back to.
enum Token {
    Wake,
    Listener(usize),
    In(u64),
    Out(u32, u32),
}

#[cfg(unix)]
fn raw_fd(stream: &TcpStream) -> i32 {
    use std::os::unix::io::AsRawFd;
    stream.as_raw_fd()
}
#[cfg(unix)]
fn raw_listener_fd(listener: &TcpListener) -> i32 {
    use std::os::unix::io::AsRawFd;
    listener.as_raw_fd()
}
#[cfg(not(unix))]
fn raw_fd(_stream: &TcpStream) -> i32 {
    -1
}
#[cfg(not(unix))]
fn raw_listener_fd(_listener: &TcpListener) -> i32 {
    -1
}

/// The worker loop: drain inbox → fire timers → poll readiness → handle.
fn worker_main<P>(
    idx: usize,
    inbox: Arc<Inbox<P>>,
    wake: sys::WakeRx,
    clock: WallClock,
    cfg: RuntimeConfig,
    telemetry: Telemetry,
    dial_tx: mpsc::Sender<DialReq>,
) where
    P: Protocol + Send + 'static,
    P::Message: WireCodec,
{
    let mut core: ProtoCore<P> = ProtoCore::new(clock, idx, &telemetry);
    let mut io = ShardIo::new(dial_tx);
    let mut scratch = vec![0u8; 64 * 1024];
    let mut batch: VecDeque<WorkerMsg<P>> = VecDeque::new();
    let mut redials: Vec<(u32, u32)> = Vec::new();
    let mut fds: Vec<sys::PollFd> = Vec::new();
    let mut tokens: Vec<Token> = Vec::new();
    let mut last_reap = Instant::now();
    let mut running = true;
    // Per-worker gauges, resolved once; all dead weight when disabled.
    let tel_enabled = telemetry.is_enabled();
    let g_fds = telemetry.gauge(&format!("reactor.w{idx}.fds"));
    let g_nodes = telemetry.gauge(&format!("reactor.w{idx}.nodes"));
    let g_inbox_depth = telemetry.gauge(&format!("reactor.w{idx}.inbox_depth"));

    while running {
        // Loop-health instrumentation: how long the work section of this
        // iteration takes (everything but the poll wait) and how many
        // inbox messages it drained.
        let iter_start = tel_enabled.then(Instant::now);

        // 1. Drain the inbox. Clearing the wake flag *before* swapping the
        // queue guarantees a producer racing this drain either lands in
        // `batch` or leaves a fresh wake for the next poll.
        wake.drain();
        std::mem::swap(&mut batch, &mut *inbox.queue.lock().unwrap());
        let drained = batch.len() as u64;
        for msg in batch.drain(..) {
            match msg {
                WorkerMsg::Start {
                    id,
                    proto,
                    seed,
                    transport,
                } => core.start_node(id, proto, seed, transport),
                WorkerMsg::Net { id, event } => core.on_net(id.0, event),
                WorkerMsg::Invoke { id, f } => core.dispatch(id.0, f),
                WorkerMsg::Stop { id, reply } => {
                    let _ = reply.send(core.stop_node(id.0));
                }
                WorkerMsg::Io(cmd) => io.handle_cmd(&mut core, &cfg, cmd),
                WorkerMsg::Shutdown => {
                    running = false;
                }
            }
        }
        if !running {
            break;
        }

        // 2. Fire due timers (protocol + re-dial deadlines, one heap), and
        // sweep idle unmonitored links about once a second — `next_timeout`
        // is capped at `IDLE_PARK`, so the sweep runs even when parked.
        redials.clear();
        core.fire_due_timers(&mut redials);
        for &(owner, peer) in &redials {
            if io.redial(owner, peer) {
                if let Some(slot) = core.nodes.get_mut(&owner) {
                    slot.stats.redials += 1;
                }
                core.rtel.redials.inc();
                core.tel_event(owner, TelEventKind::Redial, peer as u64, 0);
            }
        }
        let now = Instant::now();
        if now.duration_since(last_reap) >= REAP_INTERVAL {
            last_reap = now;
            io.reap_idle(&mut core, &cfg, now);
            // Write-queue census at the same cadence: cheap, and depth
            // spikes outlive a single iteration anyway.
            if tel_enabled {
                let (frames, links) = io.write_queue_census();
                core.tel_event(idx as u32, TelEventKind::WriteQueueDepth, frames, links);
                g_nodes.set(core.nodes.len() as u64);
            }
        }

        // 3. Build the poll set and wait for readiness or the next timer.
        fds.clear();
        tokens.clear();
        fds.push(sys::PollFd::new(wake.fd(), sys::POLLIN));
        tokens.push(Token::Wake);
        if !io.is_empty() {
            for (idx, (_, listener)) in io.listeners.iter().enumerate() {
                fds.push(sys::PollFd::new(raw_listener_fd(listener), sys::POLLIN));
                tokens.push(Token::Listener(idx));
            }
            for (&token, conn) in &io.inconns {
                fds.push(sys::PollFd::new(raw_fd(&conn.stream), sys::POLLIN));
                tokens.push(Token::In(token));
            }
            for (&(owner, peer), link) in &io.outlinks {
                if let OutState::Up(stream) = &link.state {
                    let mut events = sys::POLLIN; // EOF watch
                    if !link.queue.is_empty() {
                        events |= sys::POLLOUT;
                    }
                    fds.push(sys::PollFd::new(raw_fd(stream), events));
                    tokens.push(Token::Out(owner, peer));
                }
            }
        }
        if tel_enabled {
            g_fds.set(fds.len() as u64);
            g_inbox_depth.set(inbox.queue.lock().unwrap().len() as u64);
            if let Some(start) = iter_start {
                let iter_us = start.elapsed().as_micros() as u64;
                core.rtel.poll_iter_us.record(iter_us);
                core.rtel.inbox_batch.record(drained);
                core.tel_event(idx as u32, TelEventKind::PollLoop, iter_us, drained);
            }
        }
        let ready = sys::poll_fds(&mut fds, core.next_timeout());
        if ready == 0 {
            continue;
        }

        // 4. Handle readiness. Tokens are stable across removals (maps are
        // keyed, listeners only shrink through CloseNode which is
        // inbox-ordered after this pass).
        for (fd, token) in fds.iter().zip(&tokens) {
            if fd.revents == 0 {
                continue;
            }
            match *token {
                Token::Wake => {} // Drained at the top of the loop.
                Token::Listener(idx) => {
                    if fd.readable() && idx < io.listeners.len() {
                        io.accept_ready(idx);
                    }
                }
                Token::In(token) => {
                    if fd.readable() {
                        let _ = io.read_inconn(&mut core, &mut scratch, token);
                    }
                }
                Token::Out(owner, peer) => {
                    if fd.readable() {
                        io.check_out_eof(&mut core, owner, peer);
                    }
                    if fd.writable() {
                        io.flush_link(&mut core, &cfg, owner, peer);
                    }
                }
            }
        }
    }

    // Shutdown: stop every remaining node (transports tear down; loopback
    // peers are notified), then drop the I/O state, closing every socket
    // and listener this shard owns.
    let ids: Vec<u32> = core.nodes.keys().copied().collect();
    for id in ids {
        let _ = core.stop_node(id);
    }
    drop(io);
}

/// The dialer thread: the one blocking socket operation (connect +
/// handshake write), serialized per shard, results posted to the inbox.
fn dialer_main(rx: mpsc::Receiver<DialReq>, io: Arc<dyn IoPush>, cfg: RuntimeConfig) {
    while let Ok(req) = rx.recv() {
        let stream = TcpStream::connect_timeout(&req.addr, cfg.connect_timeout)
            .ok()
            .and_then(|mut s| {
                s.set_nodelay(true).ok();
                let mut hello = [0u8; 5];
                hello[0] = WIRE_VERSION;
                hello[1..5].copy_from_slice(&req.owner.0.to_le_bytes());
                s.write_all(&hello).ok()?;
                s.set_nonblocking(true).ok()?;
                Some(s)
            });
        io.push_io(IoCmd::Dialed {
            owner: req.owner,
            peer: req.peer,
            gen: req.gen,
            stream,
        });
    }
}

/// One shard's handles, owned by the pool.
struct WorkerHandle<P: Protocol> {
    inbox: Arc<Inbox<P>>,
    dial_tx: Option<mpsc::Sender<DialReq>>,
    thread: Option<JoinHandle<()>>,
    dialer: Option<JoinHandle<()>>,
}

/// The reactor: a fixed pool of worker threads, each multiplexing the
/// nodes of its shard. Create one per cluster (or one single-worker pool
/// per standalone [`NodeRuntime`](crate::NodeRuntime)).
pub struct ReactorPool<P: Protocol> {
    workers: Vec<WorkerHandle<P>>,
    clock: WallClock,
}

impl<P> ReactorPool<P>
where
    P: Protocol + Send + 'static,
    P::Message: WireCodec,
{
    /// Spawns `cfg.workers` reactor workers (each with its dialer), with
    /// telemetry disabled.
    pub fn new(clock: WallClock, cfg: &RuntimeConfig) -> Self {
        Self::with_telemetry(clock, cfg, Telemetry::disabled())
    }

    /// [`ReactorPool::new`] with an observability registry attached: every
    /// worker records loop health, link churn and backpressure into it,
    /// and exposes it to protocol callbacks via `Context::telemetry`.
    pub fn with_telemetry(clock: WallClock, cfg: &RuntimeConfig, telemetry: Telemetry) -> Self {
        let count = cfg.workers.max(1);
        let mut workers = Vec::with_capacity(count);
        for i in 0..count {
            let (waker, wake_rx) = sys::wake_pair().expect("create wake pipe");
            let inbox = Arc::new(Inbox {
                queue: Mutex::new(VecDeque::new()),
                waker,
            });
            let (dial_tx, dial_rx) = mpsc::channel();
            let dial_io: Arc<dyn IoPush> = Arc::clone(&inbox) as Arc<Inbox<P>>;
            let dial_cfg = *cfg;
            let dialer = std::thread::Builder::new()
                .name(format!("brisa-dial-{i}"))
                .spawn(move || dialer_main(dial_rx, dial_io, dial_cfg))
                .expect("spawn dialer thread");
            let worker_inbox = Arc::clone(&inbox);
            let worker_cfg = *cfg;
            let worker_dial = dial_tx.clone();
            let worker_tel = telemetry.clone();
            let thread = std::thread::Builder::new()
                .name(format!("brisa-shard-{i}"))
                .spawn(move || {
                    worker_main(
                        i,
                        worker_inbox,
                        wake_rx,
                        clock,
                        worker_cfg,
                        worker_tel,
                        worker_dial,
                    )
                })
                .expect("spawn reactor worker");
            workers.push(WorkerHandle {
                inbox,
                dial_tx: Some(dial_tx),
                thread: Some(thread),
                dialer: Some(dialer),
            });
        }
        ReactorPool { workers, clock }
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The pool's shared clock.
    pub fn clock(&self) -> &WallClock {
        &self.clock
    }

    fn shard_of(&self, id: NodeId) -> &WorkerHandle<P> {
        &self.workers[id.index() % self.workers.len()]
    }

    /// The inbound sink of `id`: hand it to the transport that will carry
    /// the node's traffic.
    pub fn sink_for(&self, id: NodeId) -> Box<dyn FrameSink> {
        Box::new(ReactorSink {
            id,
            inbox: Arc::clone(&self.shard_of(id).inbox),
        })
    }

    /// A [`Transport`] handle driving `id`'s shard-owned TCP sockets.
    /// Pair with [`ReactorPool::add_listener`].
    pub fn tcp_transport(&self, id: NodeId) -> Box<dyn Transport> {
        Box::new(ReactorTcpTransport {
            me: id,
            io: Arc::clone(&self.shard_of(id).inbox) as Arc<dyn IoPush>,
        })
    }

    /// Registers `id`'s pre-bound listener (and the mesh's address table)
    /// with its shard.
    pub fn add_listener(&self, id: NodeId, listener: TcpListener, addrs: Arc<Vec<SocketAddr>>) {
        self.shard_of(id)
            .inbox
            .push(WorkerMsg::Io(IoCmd::AddListener {
                node: id,
                listener,
                addrs,
            }));
    }

    /// Starts `proto` as node `id` on its shard; `on_start` runs on the
    /// worker. `seed` derives the node's RNG exactly like the simulator
    /// derives per-node streams.
    pub fn start_node(&self, id: NodeId, proto: P, seed: u64, transport: Box<dyn Transport>) {
        self.shard_of(id).inbox.push(WorkerMsg::Start {
            id,
            proto,
            seed,
            transport,
        });
    }

    /// Queues a closure to run against `id`'s protocol on its shard.
    pub fn invoke(
        &self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Message>) + Send + 'static,
    ) {
        self.shard_of(id)
            .inbox
            .push(WorkerMsg::Invoke { id, f: Box::new(f) });
    }

    /// Asks `id`'s shard to stop the node. The returned receiver yields
    /// the final protocol state and stats — or `None` if the node is
    /// unknown (never started, already stopped, or poisoned by a panic).
    pub fn stop_node(&self, id: NodeId) -> mpsc::Receiver<Option<(P, RuntimeStats)>> {
        let (reply, rx) = mpsc::channel();
        self.shard_of(id).inbox.push(WorkerMsg::Stop { id, reply });
        rx
    }

    /// Stops every worker: remaining nodes are torn down, sockets closed,
    /// and all worker + dialer threads joined. No socket, port or thread
    /// survives this call.
    pub fn shutdown(&mut self) {
        for w in &self.workers {
            if w.thread.is_some() {
                w.inbox.push(WorkerMsg::Shutdown);
            }
        }
        for w in &mut self.workers {
            drop(w.dial_tx.take()); // Dialer exits when all senders drop…
            if let Some(t) = w.thread.take() {
                let _ = t.join(); // …the worker's clone included.
            }
            if let Some(d) = w.dialer.take() {
                let _ = d.join();
            }
        }
    }
}

impl<P: Protocol> Drop for ReactorPool<P> {
    fn drop(&mut self) {
        for w in &self.workers {
            if w.thread.is_some() {
                w.inbox.push(WorkerMsg::Shutdown);
            }
        }
        for w in &mut self.workers {
            drop(w.dial_tx.take());
            if let Some(t) = w.thread.take() {
                let _ = t.join();
            }
            if let Some(d) = w.dialer.take() {
                let _ = d.join();
            }
        }
    }
}
