//! Real-socket transport: the protocol stack over TCP on `127.0.0.1`.
//!
//! Topology and thread model, per node:
//!
//! * one pre-bound listener (all listeners are bound before any node
//!   starts, so connects never race the accept side);
//! * one **accept thread** that spawns a reader thread per inbound
//!   connection;
//! * one **writer thread per outbound peer**, fed by an unbounded per-peer
//!   queue — the executor never blocks on a slow socket, and per-peer
//!   ordering (the FIFO the protocols assume) falls out of the single
//!   writer;
//! * reader threads split the byte stream into frames using the codec's
//!   length prefix and deliver them to the executor's sink.
//!
//! Connections are per-direction: `a → b` traffic flows on a connection
//! initiated by `a`, identified by a 5-byte handshake (`version`, `u32`
//! node id). **Link-down detection** maps TCP failure onto the simulator's
//! connection-monitoring contract: a failed `connect`, a write error on the
//! outbound connection that survives the bounded backoff-reconnect cycle,
//! or EOF/reset on an inbound connection from a monitored peer all surface
//! as [`NetEvent::LinkDown`] — emitted at most once per `open_connection`
//! registration (the monitored set entry is consumed when the event
//! fires). A *transient* outbound failure — the peer restarting, kernel
//! backlog pressure — is absorbed by a handful of re-dials with
//! exponential backoff and deterministic jitter before any of that
//! happens.

use crate::transport::{FrameSink, NetEvent, Transport};
use crate::wire::{LEN_PREFIX_BYTES, MAX_FRAME_BYTES, WIRE_VERSION};
use brisa_simnet::seed::mix64;
use brisa_simnet::NodeId;
use std::collections::{BTreeSet, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll interval for blocking reads (bounds shutdown latency of reader
/// threads).
const READ_POLL: Duration = Duration::from_millis(100);
/// Outbound connect retry schedule: listeners are pre-bound, so retries
/// only cover transient kernel backlog pressure.
const CONNECT_RETRIES: u32 = 20;
const CONNECT_RETRY_DELAY: Duration = Duration::from_millis(25);
/// Bounded reconnect schedule for an *established* outbound connection
/// that fails mid-stream: exponential backoff from
/// [`RECONNECT_BASE`], doubling per attempt and capped at
/// [`RECONNECT_CAP`], with deterministic per-link jitter so a cluster-wide
/// outage does not resolve into a synchronized reconnect stampede. Only
/// after every attempt fails does the failure surface as a link-down.
const RECONNECT_ATTEMPTS: u32 = 5;
const RECONNECT_BASE: Duration = Duration::from_millis(50);
const RECONNECT_CAP: Duration = Duration::from_millis(800);

/// State shared by one node's transport threads.
struct Shared {
    me: NodeId,
    /// Peers under failure-detection monitoring. An entry is consumed when
    /// its link-down fires, so each `open_connection` yields at most one
    /// notification.
    open: Mutex<BTreeSet<u32>>,
    stopping: AtomicBool,
    /// Join handles of the detached helper threads (inbound readers,
    /// peer-close watchers), reaped by `shutdown` so repeated kill/restart
    /// cycles leak neither threads nor the sockets they hold.
    aux: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// Emits a link-down for `peer` if (and only if) it is monitored.
    fn link_down(&self, sink: &mut Box<dyn FrameSink>, peer: NodeId) {
        if self.open.lock().unwrap().remove(&peer.0) {
            sink.deliver(NetEvent::LinkDown { peer });
        }
    }

    /// Registers a helper thread for reaping at shutdown.
    fn adopt(&self, handle: JoinHandle<()>) {
        self.aux.lock().unwrap().push(handle);
    }
}

/// The bound interconnect: one listener per node, all on `127.0.0.1`.
pub struct TcpMesh {
    addrs: Arc<Vec<SocketAddr>>,
    listeners: Mutex<Vec<Option<TcpListener>>>,
}

impl TcpMesh {
    /// Binds `n` listeners on ephemeral loopback ports.
    pub fn bind(n: usize) -> std::io::Result<TcpMesh> {
        let mut addrs = Vec::with_capacity(n);
        let mut listeners = Vec::with_capacity(n);
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(listener.local_addr()?);
            listeners.push(Some(listener));
        }
        Ok(TcpMesh {
            addrs: Arc::new(addrs),
            listeners: Mutex::new(listeners),
        })
    }

    /// The advertised address of `node` (exposed for diagnostics).
    pub fn addr(&self, node: NodeId) -> SocketAddr {
        self.addrs[node.index()]
    }

    /// Takes `node`'s listener, registers its inbound sink and returns the
    /// transport handle. Call once per node, before starting its executor.
    pub fn attach(&self, node: NodeId, sink: Box<dyn FrameSink>) -> TcpTransport {
        let listener = self.listeners.lock().unwrap()[node.index()]
            .take()
            .expect("node already attached");
        self.transport_for(node, listener, sink)
    }

    /// Rebinds `node`'s advertised address and returns a fresh transport —
    /// the restart path. The previous incarnation's listener must already
    /// be closed (its transport shut down); the bind is retried briefly to
    /// ride out the kernel releasing the port.
    pub fn reattach(
        &self,
        node: NodeId,
        sink: Box<dyn FrameSink>,
    ) -> std::io::Result<TcpTransport> {
        let addr = self.addrs[node.index()];
        let mut last_err = None;
        for _ in 0..50 {
            match TcpListener::bind(addr) {
                Ok(listener) => return Ok(self.transport_for(node, listener, sink)),
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        Err(last_err.expect("bind attempted at least once"))
    }

    fn transport_for(
        &self,
        node: NodeId,
        listener: TcpListener,
        sink: Box<dyn FrameSink>,
    ) -> TcpTransport {
        let shared = Arc::new(Shared {
            me: node,
            open: Mutex::new(BTreeSet::new()),
            stopping: AtomicBool::new(false),
            aux: Mutex::new(Vec::new()),
        });
        let accept_handle = spawn_acceptor(listener, sink.clone(), Arc::clone(&shared));
        TcpTransport {
            shared,
            addrs: Arc::clone(&self.addrs),
            sink,
            writers: HashMap::new(),
            accept: Some(accept_handle),
            my_addr: self.addrs[node.index()],
        }
    }
}

/// Commands consumed by a per-peer writer thread.
enum WriterCmd {
    Frame(Vec<u8>),
    Close,
}

struct WriterHandle {
    tx: mpsc::Sender<WriterCmd>,
    handle: JoinHandle<()>,
}

/// One node's handle onto a [`TcpMesh`].
pub struct TcpTransport {
    shared: Arc<Shared>,
    addrs: Arc<Vec<SocketAddr>>,
    sink: Box<dyn FrameSink>,
    writers: HashMap<u32, WriterHandle>,
    accept: Option<JoinHandle<()>>,
    my_addr: SocketAddr,
}

impl Transport for TcpTransport {
    fn send(&mut self, to: NodeId, frame: Vec<u8>) {
        if let Some(w) = self.writers.get(&to.0) {
            match w.tx.send(WriterCmd::Frame(frame)) {
                Ok(()) => return,
                Err(mpsc::SendError(WriterCmd::Frame(f))) => {
                    // The writer died (connection failure). Re-dial with a
                    // fresh writer so post-repair traffic can reconnect.
                    if let Some(w) = self.writers.remove(&to.0) {
                        let _ = w.handle.join();
                    }
                    self.spawn_writer(to).tx.send(WriterCmd::Frame(f)).ok();
                    return;
                }
                Err(_) => return,
            }
        }
        self.spawn_writer(to).tx.send(WriterCmd::Frame(frame)).ok();
    }

    fn open_connection(&mut self, peer: NodeId) {
        self.shared.open.lock().unwrap().insert(peer.0);
        // Eagerly dial so a dead peer is detected without waiting for
        // traffic (the simulator's open-to-dead-peer timeout).
        if !self.writers.contains_key(&peer.0) {
            self.spawn_writer(peer);
        }
    }

    fn close_connection(&mut self, peer: NodeId) {
        self.shared.open.lock().unwrap().remove(&peer.0);
    }

    fn shutdown(&mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        for (_, w) in self.writers.drain() {
            let _ = w.tx.send(WriterCmd::Close);
            drop(w.tx);
            let _ = w.handle.join();
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.my_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Reap every reader and watcher thread: each observes `stopping`
        // within READ_POLL and exits, closing its socket — so a restart can
        // rebind this node's port deterministically. (The writers and the
        // acceptor are already joined, so no new helpers can appear.)
        let aux = std::mem::take(&mut *self.shared.aux.lock().unwrap());
        for h in aux {
            let _ = h.join();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        if !self.shared.stopping.load(Ordering::SeqCst) {
            self.shutdown();
        }
    }
}

impl TcpTransport {
    /// Returns the writer for `to`, dialing a fresh connection only if none
    /// exists — the thread is spawned inside the vacant-entry arm so an
    /// existing writer can never race a throwaway connection into being.
    fn spawn_writer(&mut self, to: NodeId) -> &WriterHandle {
        match self.writers.entry(to.0) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let (tx, rx) = mpsc::channel();
                let shared = Arc::clone(&self.shared);
                let mut sink = self.sink.clone();
                let addr = self.addrs[to.index()];
                let handle =
                    std::thread::spawn(move || writer_main(shared, &mut sink, to, addr, rx));
                v.insert(WriterHandle { tx, handle })
            }
        }
    }
}

/// Connects to `addr` with bounded retries.
fn connect(shared: &Shared, addr: SocketAddr) -> Option<TcpStream> {
    for attempt in 0..CONNECT_RETRIES {
        if shared.stopping.load(Ordering::SeqCst) {
            return None;
        }
        match TcpStream::connect_timeout(&addr, Duration::from_secs(2)) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                return Some(stream);
            }
            Err(_) if attempt + 1 < CONNECT_RETRIES => std::thread::sleep(CONNECT_RETRY_DELAY),
            Err(_) => return None,
        }
    }
    None
}

/// Writes the 5-byte hello identifying this node on a fresh connection.
fn handshake(shared: &Shared, stream: &mut TcpStream) -> std::io::Result<()> {
    let mut hello = [0u8; 5];
    hello[0] = WIRE_VERSION;
    hello[1..5].copy_from_slice(&shared.me.0.to_le_bytes());
    stream.write_all(&hello)
}

/// Spawns a peer-close watcher for connection generation `gen` and
/// registers it for reaping.
fn spawn_watcher(
    shared: &Arc<Shared>,
    sink: &dyn FrameSink,
    to: NodeId,
    stream: &TcpStream,
    conn_gen: &Arc<AtomicU64>,
    gen: u64,
) {
    if let Ok(watch) = stream.try_clone() {
        let shared_t = Arc::clone(shared);
        let mut sink = sink.box_clone();
        let conn_gen = Arc::clone(conn_gen);
        let handle = std::thread::spawn(move || {
            watch_peer_close(shared_t, &mut sink, to, watch, conn_gen, gen)
        });
        shared.adopt(handle);
    }
}

/// Re-dials a failed outbound connection with exponential backoff and
/// deterministic per-link jitter (derived from the node pair and attempt
/// number, so a mass outage de-synchronizes without an RNG). Returns the
/// handshaken stream, or `None` once the attempt budget is spent.
fn reconnect(shared: &Shared, addr: SocketAddr, to: NodeId) -> Option<TcpStream> {
    for attempt in 0..RECONNECT_ATTEMPTS {
        if shared.stopping.load(Ordering::SeqCst) {
            return None;
        }
        let backoff = RECONNECT_BASE
            .saturating_mul(1 << attempt.min(16))
            .min(RECONNECT_CAP);
        let jitter_seed =
            mix64(((shared.me.0 as u64) << 32 | to.0 as u64).wrapping_add(attempt as u64));
        let jitter = Duration::from_micros(jitter_seed % (backoff.as_micros() as u64 / 2).max(1));
        std::thread::sleep(backoff + jitter);
        if let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_secs(2)) {
            let _ = stream.set_nodelay(true);
            if handshake(shared, &mut stream).is_ok() {
                return Some(stream);
            }
        }
    }
    None
}

/// Per-peer writer: dial, handshake, then drain the outbound queue.
///
/// A companion **peer-close watcher** thread blocks reading the same
/// connection. The remote never writes on it (connections are
/// per-direction), so the read only ever completes when the peer closes or
/// dies — which is exactly the failure-detection signal `open_connection`
/// asks for, and it fires even when this side is idle.
///
/// A write failure on an established connection is first answered with a
/// bounded backoff-reconnect cycle ([`RECONNECT_ATTEMPTS`]); only when
/// that budget is exhausted does the link surface as down. Each live
/// connection carries a generation number so a watcher of a replaced
/// connection cannot fire a stale link-down.
fn writer_main(
    shared: Arc<Shared>,
    sink: &mut Box<dyn FrameSink>,
    to: NodeId,
    addr: SocketAddr,
    rx: mpsc::Receiver<WriterCmd>,
) {
    let Some(mut stream) = connect(&shared, addr) else {
        shared.link_down(sink, to);
        return;
    };
    if handshake(&shared, &mut stream).is_err() {
        shared.link_down(sink, to);
        return;
    }
    let conn_gen = Arc::new(AtomicU64::new(0));
    spawn_watcher(&shared, sink.as_ref(), to, &stream, &conn_gen, 0);
    while let Ok(cmd) = rx.recv() {
        match cmd {
            WriterCmd::Frame(frame) => {
                if stream.write_all(&frame).is_ok() {
                    continue;
                }
                // Transient failure: retire this connection's watcher and
                // try to re-establish before declaring the link down. The
                // receiver discards the broken connection's partial frame
                // with the connection, so resending the whole frame on the
                // fresh stream cannot duplicate bytes.
                let gen = conn_gen.fetch_add(1, Ordering::SeqCst) + 1;
                match reconnect(&shared, addr, to) {
                    Some(fresh) => {
                        stream = fresh;
                        spawn_watcher(&shared, sink.as_ref(), to, &stream, &conn_gen, gen);
                        if stream.write_all(&frame).is_err() {
                            shared.link_down(sink, to);
                            return;
                        }
                    }
                    None => {
                        shared.link_down(sink, to);
                        return;
                    }
                }
            }
            WriterCmd::Close => break,
        }
    }
    let _ = stream.flush();
}

/// Blocks on the outbound connection until the peer closes it (EOF/reset)
/// or this transport stops; surfaces the former as a link-down — unless
/// the writer has already moved on to a newer connection generation (the
/// reconnect path), in which case this watcher's signal is stale.
fn watch_peer_close(
    shared: Arc<Shared>,
    sink: &mut Box<dyn FrameSink>,
    peer: NodeId,
    mut stream: TcpStream,
    conn_gen: Arc<AtomicU64>,
    gen: u64,
) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut buf = [0u8; 1];
    loop {
        match read_exact_polled(&shared, &mut stream, &mut buf) {
            ReadEnd::Closed => break,
            // The peer is never supposed to write on this direction; if it
            // does, treat the connection as healthy and keep watching until
            // it closes.
            ReadEnd::Done => continue,
        }
    }
    if !shared.stopping.load(Ordering::SeqCst) && conn_gen.load(Ordering::SeqCst) == gen {
        shared.link_down(sink, peer);
    }
}

fn spawn_acceptor(
    listener: TcpListener,
    sink: Box<dyn FrameSink>,
    shared: Arc<Shared>,
) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    break;
                }
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(READ_POLL));
                let mut sink = sink.clone();
                let shared_t = Arc::clone(&shared);
                let handle = std::thread::spawn(move || reader_main(shared_t, &mut sink, stream));
                shared.adopt(handle);
            }
            Err(_) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    })
}

/// Outcome of a polled blocking read.
enum ReadEnd {
    /// The buffer was filled.
    Done,
    /// EOF, connection reset, or the transport is stopping.
    Closed,
}

/// `read_exact` that polls the stopping flag on every timeout tick.
fn read_exact_polled(shared: &Shared, stream: &mut TcpStream, buf: &mut [u8]) -> ReadEnd {
    let mut filled = 0;
    while filled < buf.len() {
        if shared.stopping.load(Ordering::SeqCst) {
            return ReadEnd::Closed;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ReadEnd::Closed,
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return ReadEnd::Closed,
        }
    }
    ReadEnd::Done
}

/// Inbound connection reader: handshake, then frame loop.
fn reader_main(shared: Arc<Shared>, sink: &mut Box<dyn FrameSink>, mut stream: TcpStream) {
    let mut hello = [0u8; 5];
    if !matches!(
        read_exact_polled(&shared, &mut stream, &mut hello),
        ReadEnd::Done
    ) || hello[0] != WIRE_VERSION
    {
        return;
    }
    let from = NodeId(u32::from_le_bytes([hello[1], hello[2], hello[3], hello[4]]));
    loop {
        let mut prefix = [0u8; LEN_PREFIX_BYTES];
        if !matches!(
            read_exact_polled(&shared, &mut stream, &mut prefix),
            ReadEnd::Done
        ) {
            break;
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if !(3..=MAX_FRAME_BYTES).contains(&len) {
            // Corrupt stream: treat like a broken connection.
            break;
        }
        let mut frame = vec![0u8; LEN_PREFIX_BYTES + len];
        frame[..LEN_PREFIX_BYTES].copy_from_slice(&prefix);
        if !matches!(
            read_exact_polled(&shared, &mut stream, &mut frame[LEN_PREFIX_BYTES..]),
            ReadEnd::Done
        ) {
            break;
        }
        if !sink.deliver(NetEvent::Frame { from, frame }) {
            break;
        }
    }
    if !shared.stopping.load(Ordering::SeqCst) {
        // The peer's outbound connection died while we are still running:
        // surface it if the peer is monitored.
        shared.link_down(sink, from);
    }
}
