//! The TCP interconnect: pre-bound loopback listeners, one per node.
//!
//! This module owns only the **mesh** — the address table and the bound
//! listeners. The sockets themselves are driven by the sharded reactor
//! (see [`crate::reactor`]): a node's listener is handed to its shard with
//! [`ReactorPool::add_listener`](crate::reactor::ReactorPool::add_listener),
//! and every accept, read, write and re-dial happens non-blockingly on the
//! worker loop that owns the node.
//!
//! Wire conventions (unchanged since the thread-per-connection transport
//! this replaced, so the two interoperate on the wire):
//!
//! * all listeners are bound before any node starts, so connects never
//!   race the accept side;
//! * connections are **per-direction**: `a → b` traffic flows on a
//!   connection initiated by `a`, identified by a 5-byte handshake
//!   (`version`, `u32` node id) — and because the remote never writes back
//!   on it, readability of an outbound connection means EOF/reset, which
//!   is exactly the peer-death signal `open_connection` monitoring wants;
//! * frames are length-prefixed by the codec ([`crate::wire`]); a broken
//!   connection's partial frame is discarded with the connection, so a
//!   full resend on the re-dialed stream cannot duplicate bytes.
//!
//! Link-down detection maps TCP failure onto the simulator's
//! connection-monitoring contract: a dial that exhausts its retry budget,
//! a mid-stream write failure that survives the bounded backoff-reconnect
//! cycle (both budgets in [`RuntimeConfig`](crate::RuntimeConfig)), or
//! EOF/reset from a monitored peer all surface as
//! [`NetEvent::LinkDown`](crate::NetEvent::LinkDown) — at most once per
//! `open_connection` registration.

use brisa_simnet::NodeId;
use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Accept backlog for every mesh listener. `std` hardwires 128, which a
/// large cluster overruns at launch: hundreds of staggered joins dial the
/// contact node while its shard is still starting siblings, the accept
/// queue fills, and overflowing connects stall in SYN retransmit — each
/// one then convoys its worker's dialer thread for up to the connect
/// timeout. Re-`listen`ing on the bound socket simply widens the queue.
const LISTEN_BACKLOG: i32 = 4096;

#[cfg(unix)]
fn widen_backlog(listener: &TcpListener) {
    use std::os::unix::io::AsRawFd;
    unsafe extern "C" {
        fn listen(fd: i32, backlog: i32) -> i32;
    }
    // Best effort: the kernel clamps to net.core.somaxconn, and a failure
    // leaves the std default in place.
    unsafe {
        listen(listener.as_raw_fd(), LISTEN_BACKLOG);
    }
}

#[cfg(not(unix))]
fn widen_backlog(_listener: &TcpListener) {}

/// The bound interconnect: one listener per node, all on `127.0.0.1`.
pub struct TcpMesh {
    addrs: Arc<Vec<SocketAddr>>,
    listeners: Mutex<Vec<Option<TcpListener>>>,
}

impl TcpMesh {
    /// Binds `n` listeners on ephemeral loopback ports.
    pub fn bind(n: usize) -> std::io::Result<TcpMesh> {
        let mut addrs = Vec::with_capacity(n);
        let mut listeners = Vec::with_capacity(n);
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            widen_backlog(&listener);
            addrs.push(listener.local_addr()?);
            listeners.push(Some(listener));
        }
        Ok(TcpMesh {
            addrs: Arc::new(addrs),
            listeners: Mutex::new(listeners),
        })
    }

    /// The advertised address of `node` (exposed for diagnostics).
    pub fn addr(&self, node: NodeId) -> SocketAddr {
        self.addrs[node.index()]
    }

    /// The full address table, indexed by node — what the reactor's dialer
    /// resolves peers against.
    pub fn addrs(&self) -> Arc<Vec<SocketAddr>> {
        Arc::clone(&self.addrs)
    }

    /// Takes `node`'s pre-bound listener (once; panics on a second take).
    /// Hand it to the node's shard together with [`TcpMesh::addrs`].
    pub fn take_listener(&self, node: NodeId) -> TcpListener {
        self.listeners.lock().unwrap()[node.index()]
            .take()
            .expect("listener already taken")
    }

    /// Rebinds `node`'s advertised address — the restart path. The
    /// previous incarnation's listener must already be closed (its node
    /// stopped); the bind is retried briefly to ride out the kernel
    /// releasing the port.
    pub fn rebind_listener(&self, node: NodeId) -> std::io::Result<TcpListener> {
        let addr = self.addrs[node.index()];
        let mut last_err = None;
        for _ in 0..50 {
            match TcpListener::bind(addr) {
                Ok(listener) => {
                    widen_backlog(&listener);
                    return Ok(listener);
                }
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        Err(last_err.expect("bind attempted at least once"))
    }
}
