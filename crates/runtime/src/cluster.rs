//! The cluster harness: boots N live nodes over a chosen transport, drives
//! a broadcast workload and collects per-node reports.
//!
//! This is the live counterpart of `workloads::engine::run_experiment`: it
//! builds nodes through the same [`DisseminationProtocol`] trait (same
//! [`BuildCtx`] shape: node 0 is the source and contact point), publishes
//! through `publish_message`, and collects the same
//! [`NodeReport`]s into a [`LiveResult`] whose
//! `delivery_rate()`/`completeness()` are computed with the sim engine's
//! formulas — a simulated and a live run of one scenario are directly
//! comparable.

use crate::executor::{NodeRuntime, RuntimeMsg, WallClock};
use crate::loopback::LoopbackMesh;
use crate::report::{LiveNode, LiveResult};
use crate::tcp::TcpMesh;
use crate::transport::{FrameSink, Transport};
use crate::wire::WireCodec;
use brisa_simnet::{NodeId, SimTime};
use brisa_workloads::{BuildCtx, DisseminationProtocol, NodeReport};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Which interconnect a cluster runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process MPSC mesh: no syscalls, measures stack + executor.
    Loopback,
    /// Real TCP sockets on `127.0.0.1`.
    Tcp,
}

/// Parameters of a live cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes (node 0 is the source and contact point).
    pub nodes: u32,
    /// The interconnect.
    pub transport: TransportKind,
    /// Base seed for the per-node deterministic RNGs.
    pub seed: u64,
    /// Pause between consecutive node launches. A small stagger mimics a
    /// deployment script bringing nodes up one by one and keeps the
    /// contact node from absorbing every join in the same instant.
    pub join_stagger: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 8,
            transport: TransportKind::Loopback,
            seed: 42,
            join_stagger: Duration::from_millis(2),
        }
    }
}

/// A running live cluster of `P` nodes.
pub struct Cluster<P: DisseminationProtocol>
where
    P: Send + 'static,
    P::Message: WireCodec,
{
    clock: WallClock,
    /// Slot per node; `None` after a kill.
    runtimes: Vec<Option<NodeRuntime<P>>>,
    source: NodeId,
    original_nodes: u32,
    publish_times: Vec<SimTime>,
}

impl<P> Cluster<P>
where
    P: DisseminationProtocol + Send + 'static,
    P::Message: WireCodec,
{
    /// Boots a cluster: binds the interconnect, builds every node through
    /// [`DisseminationProtocol::build`] and starts one executor thread per
    /// node. Returns once every node is running.
    pub fn launch(cfg: &ClusterConfig, proto_cfg: &P::Config) -> std::io::Result<Self> {
        let n = cfg.nodes.max(1);
        let clock = WallClock::new();

        // Stage 1: create every node's channel and transport before any
        // executor starts, so the earliest join already finds its contact
        // attached (the TCP listeners are likewise all pre-bound).
        enum Mesh {
            Loopback(LoopbackMesh),
            Tcp(TcpMesh),
        }
        let mesh = match cfg.transport {
            TransportKind::Loopback => Mesh::Loopback(LoopbackMesh::new(n as usize)),
            TransportKind::Tcp => Mesh::Tcp(TcpMesh::bind(n as usize)?),
        };
        #[allow(clippy::type_complexity)]
        let mut plumbing: Vec<(
            mpsc::Sender<RuntimeMsg<P>>,
            mpsc::Receiver<RuntimeMsg<P>>,
            Box<dyn Transport>,
        )> = Vec::with_capacity(n as usize);
        for i in 0..n {
            let (tx, rx, sink): (_, _, Box<dyn FrameSink>) = NodeRuntime::<P>::channel();
            let transport: Box<dyn Transport> = match &mesh {
                Mesh::Loopback(m) => Box::new(m.attach(NodeId(i), sink)),
                Mesh::Tcp(m) => Box::new(m.attach(NodeId(i), sink)),
            };
            plumbing.push((tx, rx, transport));
        }

        // Stage 2: build and start the nodes, source first.
        let source = NodeId(0);
        let mut runtimes = Vec::with_capacity(n as usize);
        let mut prev = None;
        for (i, (tx, rx, transport)) in plumbing.into_iter().enumerate() {
            let i = i as u32;
            let bctx = BuildCtx {
                index: i,
                population: n,
                contact: (i > 0).then_some(source),
                prev,
                is_source: i == 0,
            };
            let proto = P::build(proto_cfg, NodeId(i), &bctx);
            runtimes.push(Some(NodeRuntime::spawn(
                NodeId(i),
                proto,
                cfg.seed,
                clock,
                transport,
                tx,
                rx,
            )));
            prev = Some(NodeId(i));
            if !cfg.join_stagger.is_zero() && i + 1 < n {
                std::thread::sleep(cfg.join_stagger);
            }
        }

        Ok(Cluster {
            clock,
            runtimes,
            source,
            original_nodes: n,
            publish_times: Vec::new(),
        })
    }

    /// The stream source (node 0).
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The cluster's wall clock (microseconds since launch, as `SimTime`).
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Number of nodes still running.
    pub fn alive(&self) -> usize {
        self.runtimes.iter().flatten().count()
    }

    /// Publishes the next stream message at the source and records the
    /// injection time. Panics if the source was killed — a phantom publish
    /// would silently skew every delivery metric downstream.
    pub fn publish(&mut self, payload_bytes: usize) {
        let rt = self.runtimes[self.source.index()]
            .as_ref()
            .expect("publish through a killed source");
        self.publish_times.push(self.clock.now());
        rt.invoke(move |p, ctx| p.publish_message(ctx, payload_bytes));
    }

    /// Lets the cluster run for `d` of wall time.
    pub fn run_for(&self, d: Duration) {
        std::thread::sleep(d);
    }

    /// Stops `id` (fail-stop from the peers' point of view: its transport
    /// tears down and monitored connections surface link-downs). The node
    /// is excluded from the final result, like a crashed simulator node.
    pub fn kill(&mut self, id: NodeId) {
        if let Some(rt) = self.runtimes[id.index()].take() {
            rt.stop();
            let _ = rt.join();
        }
    }

    /// Snapshots every live node's report, in node order. Runs on the
    /// nodes' own threads (consistent with their protocol state), so this
    /// can be called mid-stream.
    pub fn snapshot_reports(&self) -> Vec<(NodeId, NodeReport)> {
        let (tx, rx) = mpsc::channel::<(NodeId, NodeReport)>();
        let mut expected = 0;
        for rt in self.runtimes.iter().flatten() {
            let tx = tx.clone();
            let id = rt.id();
            rt.invoke(move |p, _ctx| {
                let _ = tx.send((id, p.report()));
            });
            expected += 1;
        }
        drop(tx);
        let mut reports = Vec::with_capacity(expected);
        while let Ok(r) = rx.recv_timeout(Duration::from_secs(10)) {
            reports.push(r);
        }
        reports.sort_by_key(|(id, _)| *id);
        reports
    }

    /// Polls until every live non-source node has delivered `expected`
    /// messages, or `deadline` of wall time elapsed. Returns whether the
    /// target was reached. A node whose report snapshot timed out counts as
    /// not done — a wedged executor must fail the wait, not vanish from it.
    pub fn wait_for_delivery(&self, expected: u64, deadline: Duration) -> bool {
        let end = Instant::now() + deadline;
        loop {
            let reports = self.snapshot_reports();
            let done = reports.len() == self.alive()
                && reports
                    .iter()
                    .filter(|(id, _)| *id != self.source)
                    .all(|(_, r)| r.delivered >= expected);
            if done {
                return true;
            }
            if Instant::now() >= end {
                return false;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Stops every node, joins the executor threads and assembles the
    /// final [`LiveResult`].
    pub fn stop_and_collect(self) -> LiveResult {
        for rt in self.runtimes.iter().flatten() {
            rt.stop();
        }
        let mut nodes = Vec::new();
        for rt in self.runtimes.into_iter().flatten() {
            let id = rt.id();
            let (proto, stats) = rt.join();
            nodes.push(LiveNode {
                id,
                report: proto.report(),
                stats,
            });
        }
        nodes.sort_by_key(|n| n.id);
        // Elapsed time is measured on the cluster clock (the epoch every
        // node stamps its telemetry against), so no report timestamp can
        // exceed it.
        let wall_elapsed = Duration::from_micros(self.clock.now().as_micros());
        LiveResult {
            protocol: P::protocol_name(),
            source: self.source,
            original_nodes: self.original_nodes,
            messages_published: self.publish_times.len() as u64,
            publish_times: self.publish_times,
            nodes,
            wall_elapsed,
        }
    }
}
