//! The cluster harness: boots N live nodes over a chosen transport, drives
//! a broadcast workload and collects per-node reports.
//!
//! This is the live counterpart of `workloads::engine::Runner`: it
//! builds nodes through the same [`DisseminationProtocol`] trait (same
//! [`BuildCtx`] shape: node 0 is the source and contact point), publishes
//! through `publish_message`, and collects the same
//! [`NodeReport`]s into a [`LiveResult`] whose
//! `delivery_rate()`/`completeness()` are computed with the sim engine's
//! formulas — a simulated and a live run of one scenario are directly
//! comparable.
//!
//! All nodes share one [`ReactorPool`]: `runtime.workers` threads carry
//! the whole cluster regardless of its size, so a 1000-node TCP overlay
//! costs the same thread count as a 16-node one.

use crate::config::RuntimeConfig;
use crate::executor::WallClock;
use crate::loopback::LoopbackMesh;
use crate::reactor::ReactorPool;
use crate::report::{LiveNode, LiveResult};
use crate::shim::ShimControl;
use crate::tcp::TcpMesh;
use crate::transport::Transport;
use crate::wire::WireCodec;
use brisa_simnet::{NodeId, SimTime};
use brisa_telemetry::{EventKind as TelEventKind, Telemetry};
use brisa_workloads::{BuildCtx, DisseminationProtocol, NodeReport};
use std::collections::BTreeSet;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Which interconnect a cluster runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process mesh: no syscalls, measures stack + reactor.
    Loopback,
    /// Real TCP sockets on `127.0.0.1`.
    Tcp,
}

/// Parameters of a live cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes (node 0 is the source and contact point).
    pub nodes: u32,
    /// The interconnect.
    pub transport: TransportKind,
    /// Base seed for the per-node deterministic RNGs.
    pub seed: u64,
    /// Pause between consecutive node launches. A small stagger mimics a
    /// deployment script bringing nodes up one by one and keeps the
    /// contact node from absorbing every join in the same instant.
    pub join_stagger: Duration,
    /// Extra interconnect capacity beyond `nodes`, reserved for
    /// mid-run joiners ([`Cluster::join_node`] — flash crowds in chaos
    /// scripts). Joins past the reserve panic.
    pub reserve: u32,
    /// Wraps every node's transport in a [`FaultShim`](crate::FaultShim)
    /// drawing from this cluster's seed, so `simnet::faults`-style loss,
    /// jitter and partitions can be injected live through
    /// [`Cluster::shim`].
    pub fault_shim: bool,
    /// Reactor sizing and live timing knobs (worker count, detection
    /// delay, dial budgets).
    pub runtime: RuntimeConfig,
    /// Telemetry handle threaded into the reactor pool and every node's
    /// protocol [`Context`](brisa_simnet::Context). Disabled by default;
    /// an enabled handle is strictly out-of-band — it never alters
    /// protocol behaviour.
    pub telemetry: Telemetry,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 8,
            transport: TransportKind::Loopback,
            seed: 42,
            join_stagger: Duration::from_millis(2),
            reserve: 0,
            fault_shim: false,
            runtime: RuntimeConfig::default(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// The bound interconnect, retained for the cluster's lifetime so killed
/// nodes can re-attach and reserved slots can join mid-run.
enum Mesh {
    Loopback(LoopbackMesh),
    Tcp(TcpMesh),
}

/// A running live cluster of `P` nodes.
pub struct Cluster<P: DisseminationProtocol>
where
    P: Send + 'static,
    P::Message: WireCodec,
{
    clock: WallClock,
    pool: ReactorPool<P>,
    /// Whether the slot's node is currently started (false after a kill).
    alive: Vec<bool>,
    source: NodeId,
    original_nodes: u32,
    publish_times: Vec<SimTime>,
    mesh: Mesh,
    proto_cfg: P::Config,
    seed: u64,
    /// Total interconnect capacity (`nodes + reserve`).
    capacity: u32,
    /// Identifier the next [`Cluster::join_node`] will use.
    next_join: u32,
    /// Every node that was killed at least once, restarted or not —
    /// excluded from the survivor metrics of the final result.
    ever_killed: BTreeSet<u32>,
    shim: Option<ShimControl>,
    telemetry: Telemetry,
}

impl<P> Cluster<P>
where
    P: DisseminationProtocol + Send + 'static,
    P::Message: WireCodec,
{
    /// Boots a cluster: binds the interconnect, spawns the reactor pool,
    /// builds every node through [`DisseminationProtocol::build`] and
    /// starts it on its shard. Returns once every node is started.
    pub fn launch(cfg: &ClusterConfig, proto_cfg: &P::Config) -> std::io::Result<Self> {
        let n = cfg.nodes.max(1);
        let capacity = n + cfg.reserve;
        let clock = WallClock::new();
        let shim = cfg
            .fault_shim
            .then(|| ShimControl::with_runtime(cfg.seed, clock, cfg.runtime));

        // The interconnect is fully pre-bound — reserved slots included —
        // before any node starts, so the earliest join already finds its
        // contact reachable.
        let mesh = match cfg.transport {
            TransportKind::Loopback => Mesh::Loopback(LoopbackMesh::new(capacity as usize)),
            TransportKind::Tcp => Mesh::Tcp(TcpMesh::bind(capacity as usize)?),
        };
        let pool = ReactorPool::with_telemetry(clock, &cfg.runtime, cfg.telemetry.clone());

        let mut cluster = Cluster {
            clock,
            pool,
            alive: vec![false; n as usize],
            source: NodeId(0),
            original_nodes: n,
            publish_times: Vec::new(),
            mesh,
            proto_cfg: proto_cfg.clone(),
            seed: cfg.seed,
            capacity,
            next_join: n,
            ever_killed: BTreeSet::new(),
            shim,
            telemetry: cfg.telemetry.clone(),
        };

        // Start the nodes, source first; each later node gets the source
        // as its contact.
        let mut prev = None;
        for i in 0..n {
            let id = NodeId(i);
            let bctx = BuildCtx {
                index: i,
                population: n,
                contact: (i > 0).then_some(cluster.source),
                prev,
                is_source: i == 0,
            };
            let proto = P::build(proto_cfg, id, &bctx);
            let transport = cluster.transport_for(id, true)?;
            cluster.pool.start_node(id, proto, cfg.seed, transport);
            cluster.alive[id.index()] = true;
            prev = Some(id);
            if !cfg.join_stagger.is_zero() && i + 1 < n {
                std::thread::sleep(cfg.join_stagger);
            }
        }

        Ok(cluster)
    }

    /// Builds `id`'s transport: wires the interconnect slot to `id`'s
    /// shard and wraps the handle in the fault shim when one is active.
    /// `fresh` selects first-time attachment (pre-bound listener) vs the
    /// restart path (rebind of the advertised address).
    fn transport_for(&self, id: NodeId, fresh: bool) -> std::io::Result<Box<dyn Transport>> {
        let transport: Box<dyn Transport> = match &self.mesh {
            // The loopback mesh's attach re-registers the slot natively,
            // so first-time and restart are the same operation.
            Mesh::Loopback(m) => Box::new(m.attach(id, self.pool.sink_for(id))),
            Mesh::Tcp(m) => {
                let listener = if fresh {
                    m.take_listener(id)
                } else {
                    m.rebind_listener(id)?
                };
                self.pool.add_listener(id, listener, m.addrs());
                self.pool.tcp_transport(id)
            }
        };
        Ok(match &self.shim {
            Some(ctl) => Box::new(ctl.wrap(id, transport, self.pool.sink_for(id))),
            None => transport,
        })
    }

    /// The stream source (node 0).
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The cluster's wall clock (microseconds since launch, as `SimTime`).
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The shared wall clock itself, for converting schedule times into
    /// real deadlines.
    pub fn clock(&self) -> &WallClock {
        &self.clock
    }

    /// Messages published so far.
    pub fn published(&self) -> u64 {
        self.publish_times.len() as u64
    }

    /// Number of nodes currently started.
    pub fn alive(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Publishes the next stream message at the source and records the
    /// injection time. Panics if the source was killed — a phantom publish
    /// would silently skew every delivery metric downstream.
    pub fn publish(&mut self, payload_bytes: usize) {
        assert!(
            self.alive[self.source.index()],
            "publish through a killed source"
        );
        self.publish_times.push(self.clock.now());
        self.pool.invoke(self.source, move |p, ctx| {
            p.publish_message(ctx, payload_bytes)
        });
    }

    /// Lets the cluster run for `d` of wall time.
    pub fn run_for(&self, d: Duration) {
        std::thread::sleep(d);
    }

    /// The fault-shim control plane, when the cluster was launched with
    /// [`ClusterConfig::fault_shim`].
    pub fn shim(&self) -> Option<&ShimControl> {
        self.shim.as_ref()
    }

    /// The telemetry handle this cluster was launched with.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Publishes cluster-level gauges into the telemetry registry:
    /// fault-shim counters (when a shim is active) plus the live node
    /// count. No-op on a disabled handle. Call from a periodic ticker or
    /// before snapshotting.
    pub fn publish_telemetry(&self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry
            .gauge("cluster.alive_nodes")
            .set(self.alive() as u64);
        self.telemetry
            .gauge("cluster.published")
            .set(self.published());
        if let Some(ctl) = &self.shim {
            let s = ctl.stats();
            self.telemetry
                .gauge("shim.frames_passed")
                .set(s.frames_passed);
            self.telemetry.gauge("shim.frames_lost").set(s.frames_lost);
            self.telemetry.gauge("shim.frames_cut").set(s.frames_cut);
            self.telemetry
                .gauge("shim.frames_delayed")
                .set(s.frames_delayed);
            self.telemetry
                .gauge("shim.linkdowns_synthesized")
                .set(s.linkdowns_synthesized);
        }
    }

    /// True if `id` is currently started.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.alive.get(id.index()).copied().unwrap_or(false)
    }

    /// Nodes killed at least once over the run so far (restarted or not).
    pub fn ever_killed(&self) -> Vec<u32> {
        self.ever_killed.iter().copied().collect()
    }

    /// Stops `id` (fail-stop from the peers' point of view: its transport
    /// tears down and monitored connections surface link-downs). The node
    /// is excluded from the survivor metrics of the final result, like a
    /// crashed simulator node.
    pub fn kill(&mut self, id: NodeId) {
        if !self.is_alive(id) {
            return;
        }
        self.alive[id.index()] = false;
        self.ever_killed.insert(id.0);
        self.telemetry.event(
            self.clock.now().as_micros(),
            id.0,
            TelEventKind::Crash,
            0,
            0,
        );
        // Wait for the shard to confirm; a `None` reply means the node
        // already crashed (panicked) — same outcome, already torn down.
        let _ = self
            .pool
            .stop_node(id)
            .recv_timeout(Duration::from_secs(10));
    }

    /// Restarts a previously killed node under the same identifier with
    /// **empty protocol state** — the crash-recovery path. The node
    /// re-attaches to the interconnect (same advertised address), rejoins
    /// through the source contact and must catch up on the stream through
    /// the protocol's own repair machinery (buffer anchoring).
    pub fn restart(&mut self, id: NodeId) -> std::io::Result<()> {
        assert!(id != self.source, "cannot restart the source");
        assert!(!self.is_alive(id), "restart of a running node");
        let transport = self.transport_for(id, false)?;
        let bctx = BuildCtx {
            index: id.0,
            population: self.original_nodes,
            contact: Some(self.source),
            prev: None,
            is_source: false,
        };
        let proto = P::build(&self.proto_cfg, id, &bctx);
        self.pool.start_node(id, proto, self.seed, transport);
        self.alive[id.index()] = true;
        self.telemetry.event(
            self.clock.now().as_micros(),
            id.0,
            TelEventKind::Restart,
            0,
            0,
        );
        Ok(())
    }

    /// Starts one fresh node in the next reserved interconnect slot
    /// (identifier `>= nodes`, so it is excluded from delivery eligibility
    /// exactly like a sim-side mid-run joiner) and returns its identifier.
    /// Panics once the reserve is exhausted.
    pub fn join_node(&mut self) -> NodeId {
        assert!(
            self.next_join < self.capacity,
            "interconnect reserve exhausted"
        );
        let id = NodeId(self.next_join);
        self.next_join += 1;
        let transport = self
            .transport_for(id, true)
            .expect("fresh slots use the pre-bound listener");
        let bctx = BuildCtx {
            index: id.0,
            population: self.original_nodes,
            contact: Some(self.source),
            prev: None,
            is_source: false,
        };
        let proto = P::build(&self.proto_cfg, id, &bctx);
        debug_assert_eq!(self.alive.len(), id.index());
        self.pool.start_node(id, proto, self.seed, transport);
        self.alive.push(true);
        id
    }

    /// Snapshots every started node's report, in node order. Runs on the
    /// nodes' own shards (consistent with their protocol state), so this
    /// can be called mid-stream. A node that panicked since the last call
    /// is silently absent (its invoke is dropped by its shard).
    pub fn snapshot_reports(&self) -> Vec<(NodeId, NodeReport)> {
        let (tx, rx) = mpsc::channel::<(NodeId, NodeReport)>();
        let mut expected = 0;
        for (idx, started) in self.alive.iter().enumerate() {
            if !started {
                continue;
            }
            let tx = tx.clone();
            let id = NodeId(idx as u32);
            self.pool.invoke(id, move |p, _ctx| {
                let _ = tx.send((id, p.report()));
            });
            expected += 1;
        }
        drop(tx);
        let mut reports = Vec::with_capacity(expected);
        while let Ok(r) = rx.recv_timeout(Duration::from_secs(10)) {
            reports.push(r);
        }
        reports.sort_by_key(|(id, _)| *id);
        reports
    }

    /// Polls until every live non-source node has delivered `expected`
    /// messages, or `deadline` of wall time elapsed. Returns whether the
    /// target was reached. A node whose report snapshot timed out counts as
    /// not done — a wedged shard must fail the wait, not vanish from it.
    pub fn wait_for_delivery(&self, expected: u64, deadline: Duration) -> bool {
        let end = Instant::now() + deadline;
        loop {
            let reports = self.snapshot_reports();
            let done = reports.len() == self.alive()
                && reports
                    .iter()
                    .filter(|(id, _)| *id != self.source)
                    .all(|(_, r)| r.delivered >= expected);
            if done {
                return true;
            }
            if Instant::now() >= end {
                return false;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Stops every node, shuts the reactor pool down and assembles the
    /// final [`LiveResult`]. A node that panicked mid-run yields no
    /// [`LiveNode`] and is accounted like a killed one.
    pub fn stop_and_collect(mut self) -> LiveResult {
        // Ask every shard to stop its nodes; collect the replies after all
        // stops are queued so shards drain in parallel.
        let mut stops = Vec::new();
        for (idx, started) in self.alive.iter().enumerate() {
            if *started {
                let id = NodeId(idx as u32);
                stops.push((id, self.pool.stop_node(id)));
            }
        }
        let mut nodes = Vec::new();
        for (id, reply) in stops {
            match reply.recv_timeout(Duration::from_secs(10)) {
                Ok(Some((proto, stats))) => nodes.push(LiveNode {
                    id,
                    report: proto.report(),
                    stats,
                }),
                // Poisoned (panicked) or unresponsive: excluded from the
                // survivor metrics like any other dead node.
                Ok(None) | Err(_) => {
                    self.ever_killed.insert(id.0);
                }
            }
        }
        self.pool.shutdown();
        nodes.sort_by_key(|n| n.id);
        // Elapsed time is measured on the cluster clock (the epoch every
        // node stamps its telemetry against), so no report timestamp can
        // exceed it.
        let wall_elapsed = Duration::from_micros(self.clock.now().as_micros());
        LiveResult {
            protocol: P::protocol_name(),
            source: self.source,
            original_nodes: self.original_nodes,
            messages_published: self.publish_times.len() as u64,
            publish_times: self.publish_times,
            nodes,
            wall_elapsed,
            ever_killed: self.ever_killed.into_iter().collect(),
        }
    }
}
