//! The cluster harness: boots N live nodes over a chosen transport, drives
//! a broadcast workload and collects per-node reports.
//!
//! This is the live counterpart of `workloads::engine::run_experiment`: it
//! builds nodes through the same [`DisseminationProtocol`] trait (same
//! [`BuildCtx`] shape: node 0 is the source and contact point), publishes
//! through `publish_message`, and collects the same
//! [`NodeReport`]s into a [`LiveResult`] whose
//! `delivery_rate()`/`completeness()` are computed with the sim engine's
//! formulas — a simulated and a live run of one scenario are directly
//! comparable.

use crate::executor::{NodeRuntime, RuntimeMsg, WallClock};
use crate::loopback::LoopbackMesh;
use crate::report::{LiveNode, LiveResult};
use crate::shim::ShimControl;
use crate::tcp::TcpMesh;
use crate::transport::{FrameSink, Transport};
use crate::wire::WireCodec;
use brisa_simnet::{NodeId, SimTime};
use brisa_workloads::{BuildCtx, DisseminationProtocol, NodeReport};
use std::collections::BTreeSet;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Which interconnect a cluster runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process MPSC mesh: no syscalls, measures stack + executor.
    Loopback,
    /// Real TCP sockets on `127.0.0.1`.
    Tcp,
}

/// Parameters of a live cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes (node 0 is the source and contact point).
    pub nodes: u32,
    /// The interconnect.
    pub transport: TransportKind,
    /// Base seed for the per-node deterministic RNGs.
    pub seed: u64,
    /// Pause between consecutive node launches. A small stagger mimics a
    /// deployment script bringing nodes up one by one and keeps the
    /// contact node from absorbing every join in the same instant.
    pub join_stagger: Duration,
    /// Extra interconnect capacity beyond `nodes`, reserved for
    /// mid-run joiners ([`Cluster::join_node`] — flash crowds in chaos
    /// scripts). Joins past the reserve panic.
    pub reserve: u32,
    /// Wraps every node's transport in a [`FaultShim`](crate::FaultShim)
    /// drawing from this cluster's seed, so `simnet::faults`-style loss,
    /// jitter and partitions can be injected live through
    /// [`Cluster::shim`].
    pub fault_shim: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 8,
            transport: TransportKind::Loopback,
            seed: 42,
            join_stagger: Duration::from_millis(2),
            reserve: 0,
            fault_shim: false,
        }
    }
}

/// The bound interconnect, retained for the cluster's lifetime so killed
/// nodes can re-attach and reserved slots can join mid-run.
enum Mesh {
    Loopback(LoopbackMesh),
    Tcp(TcpMesh),
}

impl Mesh {
    /// First-time attachment of `node` (its listener/slot is unused).
    fn attach(&self, node: NodeId, sink: Box<dyn FrameSink>) -> Box<dyn Transport> {
        match self {
            Mesh::Loopback(m) => Box::new(m.attach(node, sink)),
            Mesh::Tcp(m) => Box::new(m.attach(node, sink)),
        }
    }

    /// Re-attachment of a previously killed `node` (same identifier, same
    /// advertised address, fresh transport state).
    fn reattach(
        &self,
        node: NodeId,
        sink: Box<dyn FrameSink>,
    ) -> std::io::Result<Box<dyn Transport>> {
        match self {
            // The loopback mesh's attach re-registers the slot natively.
            Mesh::Loopback(m) => Ok(Box::new(m.attach(node, sink))),
            Mesh::Tcp(m) => Ok(Box::new(m.reattach(node, sink)?)),
        }
    }
}

/// A running live cluster of `P` nodes.
pub struct Cluster<P: DisseminationProtocol>
where
    P: Send + 'static,
    P::Message: WireCodec,
{
    clock: WallClock,
    /// Slot per node; `None` after a kill.
    runtimes: Vec<Option<NodeRuntime<P>>>,
    source: NodeId,
    original_nodes: u32,
    publish_times: Vec<SimTime>,
    mesh: Mesh,
    proto_cfg: P::Config,
    seed: u64,
    /// Total interconnect capacity (`nodes + reserve`).
    capacity: u32,
    /// Identifier the next [`Cluster::join_node`] will use.
    next_join: u32,
    /// Every node that was killed at least once, restarted or not —
    /// excluded from the survivor metrics of the final result.
    ever_killed: BTreeSet<u32>,
    shim: Option<ShimControl>,
}

impl<P> Cluster<P>
where
    P: DisseminationProtocol + Send + 'static,
    P::Message: WireCodec,
{
    /// Boots a cluster: binds the interconnect, builds every node through
    /// [`DisseminationProtocol::build`] and starts one executor thread per
    /// node. Returns once every node is running.
    pub fn launch(cfg: &ClusterConfig, proto_cfg: &P::Config) -> std::io::Result<Self> {
        let n = cfg.nodes.max(1);
        let capacity = n + cfg.reserve;
        let clock = WallClock::new();
        let shim = cfg.fault_shim.then(|| ShimControl::new(cfg.seed, clock));

        // Stage 1: create every node's channel and transport before any
        // executor starts, so the earliest join already finds its contact
        // attached (the TCP listeners are likewise all pre-bound —
        // reserved slots included).
        let mesh = match cfg.transport {
            TransportKind::Loopback => Mesh::Loopback(LoopbackMesh::new(capacity as usize)),
            TransportKind::Tcp => Mesh::Tcp(TcpMesh::bind(capacity as usize)?),
        };
        #[allow(clippy::type_complexity)]
        let mut plumbing: Vec<(
            mpsc::Sender<RuntimeMsg<P>>,
            mpsc::Receiver<RuntimeMsg<P>>,
            Box<dyn Transport>,
        )> = Vec::with_capacity(n as usize);
        for i in 0..n {
            let (tx, rx, sink): (_, _, Box<dyn FrameSink>) = NodeRuntime::<P>::channel();
            let shim_sink = sink.clone();
            let mut transport = mesh.attach(NodeId(i), sink);
            if let Some(ctl) = &shim {
                transport = Box::new(ctl.wrap(NodeId(i), transport, shim_sink));
            }
            plumbing.push((tx, rx, transport));
        }

        // Stage 2: build and start the nodes, source first.
        let source = NodeId(0);
        let mut runtimes = Vec::with_capacity(n as usize);
        let mut prev = None;
        for (i, (tx, rx, transport)) in plumbing.into_iter().enumerate() {
            let i = i as u32;
            let bctx = BuildCtx {
                index: i,
                population: n,
                contact: (i > 0).then_some(source),
                prev,
                is_source: i == 0,
            };
            let proto = P::build(proto_cfg, NodeId(i), &bctx);
            runtimes.push(Some(NodeRuntime::spawn(
                NodeId(i),
                proto,
                cfg.seed,
                clock,
                transport,
                tx,
                rx,
            )));
            prev = Some(NodeId(i));
            if !cfg.join_stagger.is_zero() && i + 1 < n {
                std::thread::sleep(cfg.join_stagger);
            }
        }

        Ok(Cluster {
            clock,
            runtimes,
            source,
            original_nodes: n,
            publish_times: Vec::new(),
            mesh,
            proto_cfg: proto_cfg.clone(),
            seed: cfg.seed,
            capacity,
            next_join: n,
            ever_killed: BTreeSet::new(),
            shim,
        })
    }

    /// The stream source (node 0).
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The cluster's wall clock (microseconds since launch, as `SimTime`).
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The shared wall clock itself, for converting schedule times into
    /// real deadlines.
    pub fn clock(&self) -> &WallClock {
        &self.clock
    }

    /// Messages published so far.
    pub fn published(&self) -> u64 {
        self.publish_times.len() as u64
    }

    /// Number of nodes still running.
    pub fn alive(&self) -> usize {
        self.runtimes.iter().flatten().count()
    }

    /// Publishes the next stream message at the source and records the
    /// injection time. Panics if the source was killed — a phantom publish
    /// would silently skew every delivery metric downstream.
    pub fn publish(&mut self, payload_bytes: usize) {
        let rt = self.runtimes[self.source.index()]
            .as_ref()
            .expect("publish through a killed source");
        self.publish_times.push(self.clock.now());
        rt.invoke(move |p, ctx| p.publish_message(ctx, payload_bytes));
    }

    /// Lets the cluster run for `d` of wall time.
    pub fn run_for(&self, d: Duration) {
        std::thread::sleep(d);
    }

    /// The fault-shim control plane, when the cluster was launched with
    /// [`ClusterConfig::fault_shim`].
    pub fn shim(&self) -> Option<&ShimControl> {
        self.shim.as_ref()
    }

    /// True if `id`'s executor is currently running.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.runtimes
            .get(id.index())
            .is_some_and(|slot| slot.is_some())
    }

    /// Nodes killed at least once over the run so far (restarted or not).
    pub fn ever_killed(&self) -> Vec<u32> {
        self.ever_killed.iter().copied().collect()
    }

    /// Stops `id` (fail-stop from the peers' point of view: its transport
    /// tears down and monitored connections surface link-downs). The node
    /// is excluded from the survivor metrics of the final result, like a
    /// crashed simulator node.
    pub fn kill(&mut self, id: NodeId) {
        if let Some(rt) = self.runtimes[id.index()].take() {
            self.ever_killed.insert(id.0);
            rt.stop();
            let _ = rt.join();
        }
    }

    /// Restarts a previously killed node under the same identifier with
    /// **empty protocol state** — the crash-recovery path. The node
    /// re-attaches to the interconnect (same advertised address), rejoins
    /// through the source contact and must catch up on the stream through
    /// the protocol's own repair machinery (buffer anchoring).
    pub fn restart(&mut self, id: NodeId) -> std::io::Result<()> {
        assert!(id != self.source, "cannot restart the source");
        assert!(
            self.runtimes[id.index()].is_none(),
            "restart of a running node"
        );
        let (tx, rx, sink): (_, _, Box<dyn FrameSink>) = NodeRuntime::<P>::channel();
        let shim_sink = sink.clone();
        let mut transport = self.mesh.reattach(id, sink)?;
        if let Some(ctl) = &self.shim {
            transport = Box::new(ctl.wrap(id, transport, shim_sink));
        }
        let bctx = BuildCtx {
            index: id.0,
            population: self.original_nodes,
            contact: Some(self.source),
            prev: None,
            is_source: false,
        };
        let proto = P::build(&self.proto_cfg, id, &bctx);
        self.runtimes[id.index()] = Some(NodeRuntime::spawn(
            id, proto, self.seed, self.clock, transport, tx, rx,
        ));
        Ok(())
    }

    /// Starts one fresh node in the next reserved interconnect slot
    /// (identifier `>= nodes`, so it is excluded from delivery eligibility
    /// exactly like a sim-side mid-run joiner) and returns its identifier.
    /// Panics once the reserve is exhausted.
    pub fn join_node(&mut self) -> NodeId {
        assert!(
            self.next_join < self.capacity,
            "interconnect reserve exhausted"
        );
        let id = NodeId(self.next_join);
        self.next_join += 1;
        let (tx, rx, sink): (_, _, Box<dyn FrameSink>) = NodeRuntime::<P>::channel();
        let shim_sink = sink.clone();
        let mut transport = self.mesh.attach(id, sink);
        if let Some(ctl) = &self.shim {
            transport = Box::new(ctl.wrap(id, transport, shim_sink));
        }
        let bctx = BuildCtx {
            index: id.0,
            population: self.original_nodes,
            contact: Some(self.source),
            prev: None,
            is_source: false,
        };
        let proto = P::build(&self.proto_cfg, id, &bctx);
        debug_assert_eq!(self.runtimes.len(), id.index());
        self.runtimes.push(Some(NodeRuntime::spawn(
            id, proto, self.seed, self.clock, transport, tx, rx,
        )));
        id
    }

    /// Snapshots every live node's report, in node order. Runs on the
    /// nodes' own threads (consistent with their protocol state), so this
    /// can be called mid-stream.
    pub fn snapshot_reports(&self) -> Vec<(NodeId, NodeReport)> {
        let (tx, rx) = mpsc::channel::<(NodeId, NodeReport)>();
        let mut expected = 0;
        for rt in self.runtimes.iter().flatten() {
            let tx = tx.clone();
            let id = rt.id();
            rt.invoke(move |p, _ctx| {
                let _ = tx.send((id, p.report()));
            });
            expected += 1;
        }
        drop(tx);
        let mut reports = Vec::with_capacity(expected);
        while let Ok(r) = rx.recv_timeout(Duration::from_secs(10)) {
            reports.push(r);
        }
        reports.sort_by_key(|(id, _)| *id);
        reports
    }

    /// Polls until every live non-source node has delivered `expected`
    /// messages, or `deadline` of wall time elapsed. Returns whether the
    /// target was reached. A node whose report snapshot timed out counts as
    /// not done — a wedged executor must fail the wait, not vanish from it.
    pub fn wait_for_delivery(&self, expected: u64, deadline: Duration) -> bool {
        let end = Instant::now() + deadline;
        loop {
            let reports = self.snapshot_reports();
            let done = reports.len() == self.alive()
                && reports
                    .iter()
                    .filter(|(id, _)| *id != self.source)
                    .all(|(_, r)| r.delivered >= expected);
            if done {
                return true;
            }
            if Instant::now() >= end {
                return false;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Stops every node, joins the executor threads and assembles the
    /// final [`LiveResult`].
    pub fn stop_and_collect(self) -> LiveResult {
        for rt in self.runtimes.iter().flatten() {
            rt.stop();
        }
        let mut nodes = Vec::new();
        for rt in self.runtimes.into_iter().flatten() {
            let id = rt.id();
            let (proto, stats) = rt.join();
            nodes.push(LiveNode {
                id,
                report: proto.report(),
                stats,
            });
        }
        nodes.sort_by_key(|n| n.id);
        // Elapsed time is measured on the cluster clock (the epoch every
        // node stamps its telemetry against), so no report timestamp can
        // exceed it.
        let wall_elapsed = Duration::from_micros(self.clock.now().as_micros());
        LiveResult {
            protocol: P::protocol_name(),
            source: self.source,
            original_nodes: self.original_nodes,
            messages_published: self.publish_times.len() as u64,
            publish_times: self.publish_times,
            nodes,
            wall_elapsed,
            ever_killed: self.ever_killed.into_iter().collect(),
        }
    }
}
