//! The wire codec: a length-prefixed, versioned binary framing for every
//! message type of the protocol stack.
//!
//! A frame is laid out as (all integers little-endian):
//!
//! ```text
//! offset 0  u32  len      — number of bytes after this field
//! offset 4  u8   version  — WIRE_VERSION
//! offset 5  u8   proto    — 0 HyParView | 1 BRISA | 2 Cyclon
//! offset 6  u8   kind     — variant tag within the protocol
//! offset 7  ...  header tail + body (protocol-specific)
//! ```
//!
//! The header tail pads the fixed header to exactly the per-message
//! overhead the simulator has always charged: [`brisa_membership::HPV_HEADER_BYTES`] (8) for
//! HyParView and Cyclon frames (one reserved byte), [`brisa::BRISA_HEADER_BYTES`]
//! (16) for BRISA frames (a `u64` stream identifier — always 0 while the
//! stack carries a single stream — plus one reserved byte). With the
//! explicit counts added to the `WireSize` formulas in this PR, **the
//! encoded frame length equals `wire_size()` for every variant**, so the
//! simulator's bandwidth accounting and the bytes a live transport carries
//! are the same number; the codec tests pin this per variant.
//!
//! [`DataMsg`] payloads are opaque in the protocol (only their size is
//! carried in the struct); the codec materialises `payload_bytes` of a
//! deterministic pattern so live transports move — and live benches measure
//! — real full-size frames. Decoding validates the length and recovers the
//! size, not the pattern.
//!
//! Decoding is total: any truncated, corrupt or version-skewed input
//! returns a [`WireError`], never panics, and never reads past the frame.

use brisa::{BrisaMsg, CycleGuard, DataMsg, StackMsg};
use brisa_membership::{CyclonMsg, Descriptor, HpvMsg};
use brisa_simnet::NodeId;
use std::fmt;

/// Version byte carried by every frame.
pub const WIRE_VERSION: u8 = 1;

/// Size of the `u32` length prefix.
pub const LEN_PREFIX_BYTES: usize = 4;

/// Upper bound a receiver accepts for the `len` field (a corrupt length
/// prefix must not make a TCP reader allocate gigabytes).
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Protocol discriminants (frame offset 5).
mod proto {
    pub const HPV: u8 = 0;
    pub const BRISA: u8 = 1;
    pub const CYCLON: u8 = 2;
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the announced frame did.
    Truncated {
        /// Bytes needed to make progress.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The frame's version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// Unknown protocol discriminant.
    BadProto(u8),
    /// Unknown variant tag within a known protocol.
    BadKind {
        /// The protocol discriminant.
        proto: u8,
        /// The offending variant tag.
        kind: u8,
    },
    /// The frame parsed but violates a structural rule (bad length prefix,
    /// trailing bytes, oversized count, ...).
    Corrupt(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} bytes, had {available}")
            }
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadProto(p) => write!(f, "unknown protocol discriminant {p}"),
            WireError::BadKind { proto, kind } => {
                write!(f, "unknown message kind {kind} for protocol {proto}")
            }
            WireError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
        }
    }
}

/// Types that encode to / decode from a self-contained wire frame.
pub trait WireCodec: Sized {
    /// Appends the full frame (length prefix included) to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decodes a full frame. `frame` must be exactly one frame (length
    /// prefix included); trailing bytes are an error.
    fn decode(frame: &[u8]) -> Result<Self, WireError>;

    /// Convenience: encodes into a fresh vector.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }
}

/// Reads the length prefix of a buffered stream and returns the total frame
/// size (prefix included) if the prefix is complete, or `None` if more
/// bytes are needed. Used by transports to split a byte stream into frames
/// before handing each to [`WireCodec::decode`].
pub fn frame_len(buf: &[u8]) -> Result<Option<usize>, WireError> {
    if buf.len() < LEN_PREFIX_BYTES {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if !(3..=MAX_FRAME_BYTES).contains(&len) {
        return Err(WireError::Corrupt("length prefix out of range"));
    }
    Ok(Some(LEN_PREFIX_BYTES + len))
}

// ---------------------------------------------------------------------------
// Primitive writers/readers
// ---------------------------------------------------------------------------

struct Writer<'a> {
    out: &'a mut Vec<u8>,
    /// Index of the frame's length prefix, patched on finish.
    len_at: usize,
}

impl<'a> Writer<'a> {
    fn begin(out: &'a mut Vec<u8>, protocol: u8, kind: u8) -> Self {
        let len_at = out.len();
        out.extend_from_slice(&[0, 0, 0, 0]);
        out.push(WIRE_VERSION);
        out.push(protocol);
        out.push(kind);
        Writer { out, len_at }
    }

    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// A node identifier in the paper's 6-byte `ip:port` footprint: the
    /// 32-bit index plus two reserved bytes.
    fn node(&mut self, n: NodeId) {
        self.u32(n.0);
        self.u16(0);
    }

    fn finish(self) {
        let len = (self.out.len() - self.len_at - LEN_PREFIX_BYTES) as u32;
        self.out[self.len_at..self.len_at + LEN_PREFIX_BYTES].copy_from_slice(&len.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated {
                needed: n,
                available: self.buf.len() - self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    fn node(&mut self) -> Result<NodeId, WireError> {
        let id = self.u32()?;
        self.take(2)?; // reserved "port" bytes
        Ok(NodeId(id))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Corrupt("trailing bytes after message body"));
        }
        Ok(())
    }

    /// Validates the fixed prefix and returns `(proto, kind)` with the
    /// reader positioned after the kind byte.
    fn open(frame: &'a [u8]) -> Result<(u8, u8, Reader<'a>), WireError> {
        let mut r = Reader { buf: frame, pos: 0 };
        let len = r.u32()? as usize;
        if len != frame.len() - LEN_PREFIX_BYTES {
            return Err(WireError::Corrupt("length prefix does not match frame"));
        }
        let version = r.u8()?;
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let protocol = r.u8()?;
        let kind = r.u8()?;
        Ok((protocol, kind, r))
    }
}

/// The deterministic filler byte at offset `i` of the payload of stream
/// message `seq`. Purely a function of its arguments so encoding is a pure
/// function of the message value.
fn payload_byte(seq: u64, i: usize) -> u8 {
    (seq as u8) ^ (i as u8).wrapping_mul(31)
}

// ---------------------------------------------------------------------------
// HyParView
// ---------------------------------------------------------------------------

mod hpv_kind {
    pub const JOIN: u8 = 0;
    pub const FORWARD_JOIN: u8 = 1;
    pub const NEIGHBOR: u8 = 2;
    pub const NEIGHBOR_REPLY: u8 = 3;
    pub const DISCONNECT: u8 = 4;
    pub const SHUFFLE: u8 = 5;
    pub const SHUFFLE_REPLY: u8 = 6;
    pub const KEEP_ALIVE: u8 = 7;
    pub const KEEP_ALIVE_ACK: u8 = 8;
}

fn write_nodes(w: &mut Writer<'_>, nodes: &[NodeId]) {
    assert!(
        nodes.len() <= u16::MAX as usize,
        "node list too long to encode"
    );
    w.u16(nodes.len() as u16);
    for &n in nodes {
        w.node(n);
    }
}

fn read_nodes(r: &mut Reader<'_>) -> Result<Vec<NodeId>, WireError> {
    let count = r.u16()? as usize;
    let mut nodes = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        nodes.push(r.node()?);
    }
    Ok(nodes)
}

impl WireCodec for HpvMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let kind = match self {
            HpvMsg::Join => hpv_kind::JOIN,
            HpvMsg::ForwardJoin { .. } => hpv_kind::FORWARD_JOIN,
            HpvMsg::Neighbor { .. } => hpv_kind::NEIGHBOR,
            HpvMsg::NeighborReply { .. } => hpv_kind::NEIGHBOR_REPLY,
            HpvMsg::Disconnect => hpv_kind::DISCONNECT,
            HpvMsg::Shuffle { .. } => hpv_kind::SHUFFLE,
            HpvMsg::ShuffleReply { .. } => hpv_kind::SHUFFLE_REPLY,
            HpvMsg::KeepAlive { .. } => hpv_kind::KEEP_ALIVE,
            HpvMsg::KeepAliveAck { .. } => hpv_kind::KEEP_ALIVE_ACK,
        };
        let mut w = Writer::begin(out, proto::HPV, kind);
        w.u8(0); // reserved: pads the header to HPV_HEADER_BYTES
        match self {
            HpvMsg::Join | HpvMsg::Disconnect => {}
            HpvMsg::ForwardJoin { new_node, ttl } => {
                w.node(*new_node);
                w.u8(*ttl);
            }
            HpvMsg::Neighbor { high_priority } => w.u8(*high_priority as u8),
            HpvMsg::NeighborReply { accepted } => w.u8(*accepted as u8),
            HpvMsg::Shuffle { origin, nodes, ttl } => {
                w.node(*origin);
                w.u8(*ttl);
                write_nodes(&mut w, nodes);
            }
            HpvMsg::ShuffleReply { nodes } => write_nodes(&mut w, nodes),
            HpvMsg::KeepAlive { nonce } | HpvMsg::KeepAliveAck { nonce } => w.u64(*nonce),
        }
        w.finish();
    }

    fn decode(frame: &[u8]) -> Result<Self, WireError> {
        let (protocol, kind, mut r) = Reader::open(frame)?;
        if protocol != proto::HPV {
            return Err(WireError::BadProto(protocol));
        }
        r.u8()?; // reserved
        let msg = match kind {
            hpv_kind::JOIN => HpvMsg::Join,
            hpv_kind::FORWARD_JOIN => HpvMsg::ForwardJoin {
                new_node: r.node()?,
                ttl: r.u8()?,
            },
            hpv_kind::NEIGHBOR => HpvMsg::Neighbor {
                high_priority: r.u8()? != 0,
            },
            hpv_kind::NEIGHBOR_REPLY => HpvMsg::NeighborReply {
                accepted: r.u8()? != 0,
            },
            hpv_kind::DISCONNECT => HpvMsg::Disconnect,
            hpv_kind::SHUFFLE => {
                let origin = r.node()?;
                let ttl = r.u8()?;
                HpvMsg::Shuffle {
                    origin,
                    nodes: read_nodes(&mut r)?,
                    ttl,
                }
            }
            hpv_kind::SHUFFLE_REPLY => HpvMsg::ShuffleReply {
                nodes: read_nodes(&mut r)?,
            },
            hpv_kind::KEEP_ALIVE => HpvMsg::KeepAlive { nonce: r.u64()? },
            hpv_kind::KEEP_ALIVE_ACK => HpvMsg::KeepAliveAck { nonce: r.u64()? },
            other => {
                return Err(WireError::BadKind {
                    proto: protocol,
                    kind: other,
                })
            }
        };
        r.done()?;
        Ok(msg)
    }
}

// ---------------------------------------------------------------------------
// BRISA
// ---------------------------------------------------------------------------

mod brisa_kind {
    pub const DATA: u8 = 0;
    pub const DEACTIVATE: u8 = 1;
    pub const ACTIVATE: u8 = 2;
    pub const REACTIVATION_ORDER: u8 = 3;
    pub const DEPTH_UPDATE: u8 = 4;
    pub const RETRANSMIT: u8 = 5;
    pub const EDGE: u8 = 6;
}

mod guard_kind {
    pub const PATH: u8 = 1;
    pub const DEPTH: u8 = 2;
}

fn write_guard(w: &mut Writer<'_>, guard: &CycleGuard) {
    match guard {
        CycleGuard::Path(path) => {
            w.u8(guard_kind::PATH);
            write_nodes(w, path);
        }
        CycleGuard::Depth(d) => {
            w.u8(guard_kind::DEPTH);
            w.u32(*d);
        }
    }
}

fn read_guard(r: &mut Reader<'_>) -> Result<CycleGuard, WireError> {
    match r.u8()? {
        guard_kind::PATH => Ok(CycleGuard::Path(read_nodes(r)?)),
        guard_kind::DEPTH => Ok(CycleGuard::Depth(r.u32()?)),
        _ => Err(WireError::Corrupt("unknown cycle-guard kind")),
    }
}

impl WireCodec for BrisaMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let kind = match self {
            BrisaMsg::Data(_) => brisa_kind::DATA,
            BrisaMsg::Deactivate { .. } => brisa_kind::DEACTIVATE,
            BrisaMsg::Activate => brisa_kind::ACTIVATE,
            BrisaMsg::ReactivationOrder => brisa_kind::REACTIVATION_ORDER,
            BrisaMsg::DepthUpdate { .. } => brisa_kind::DEPTH_UPDATE,
            BrisaMsg::Retransmit { .. } => brisa_kind::RETRANSMIT,
            BrisaMsg::Edge { .. } => brisa_kind::EDGE,
        };
        let mut w = Writer::begin(out, proto::BRISA, kind);
        w.u64(0); // stream identifier: a single stream for now
        w.u8(0); // reserved: pads the header to BRISA_HEADER_BYTES
        match self {
            BrisaMsg::Data(d) => {
                assert!(
                    d.payload_bytes <= u32::MAX as usize,
                    "payload too large to encode"
                );
                w.u64(d.seq);
                w.u32(d.payload_bytes as u32);
                w.u32(d.sender_uptime_secs);
                w.u16(d.sender_load);
                write_guard(&mut w, &d.guard);
                // The filler pattern repeats every 256 bytes (it depends on
                // `i` only through `i as u8`), so build one period and copy
                // it in slices — this is the hot path of every data send.
                let mut period = [0u8; 256];
                for (i, b) in period.iter_mut().enumerate() {
                    *b = payload_byte(d.seq, i);
                }
                w.out.reserve(d.payload_bytes);
                let mut remaining = d.payload_bytes;
                while remaining > 0 {
                    let n = remaining.min(period.len());
                    w.out.extend_from_slice(&period[..n]);
                    remaining -= n;
                }
            }
            BrisaMsg::Deactivate { symmetric } => w.u8(*symmetric as u8),
            BrisaMsg::Activate | BrisaMsg::ReactivationOrder => {}
            BrisaMsg::DepthUpdate { depth } => w.u32(*depth),
            BrisaMsg::Retransmit { from_seq, to_seq } => {
                w.u64(*from_seq);
                w.u64(*to_seq);
            }
            BrisaMsg::Edge { highest } => w.u64(*highest),
        }
        w.finish();
    }

    fn decode(frame: &[u8]) -> Result<Self, WireError> {
        let (protocol, kind, mut r) = Reader::open(frame)?;
        if protocol != proto::BRISA {
            return Err(WireError::BadProto(protocol));
        }
        r.u64()?; // stream identifier
        r.u8()?; // reserved
        let msg = match kind {
            brisa_kind::DATA => {
                let seq = r.u64()?;
                let payload_bytes = r.u32()? as usize;
                let sender_uptime_secs = r.u32()?;
                let sender_load = r.u16()?;
                let guard = read_guard(&mut r)?;
                // The payload pattern is opaque; only its length matters.
                r.take(payload_bytes)?;
                BrisaMsg::data(DataMsg {
                    seq,
                    payload_bytes,
                    guard,
                    sender_uptime_secs,
                    sender_load,
                })
            }
            brisa_kind::DEACTIVATE => BrisaMsg::Deactivate {
                symmetric: r.u8()? != 0,
            },
            brisa_kind::ACTIVATE => BrisaMsg::Activate,
            brisa_kind::REACTIVATION_ORDER => BrisaMsg::ReactivationOrder,
            brisa_kind::DEPTH_UPDATE => BrisaMsg::DepthUpdate { depth: r.u32()? },
            brisa_kind::RETRANSMIT => BrisaMsg::Retransmit {
                from_seq: r.u64()?,
                to_seq: r.u64()?,
            },
            brisa_kind::EDGE => BrisaMsg::Edge { highest: r.u64()? },
            other => {
                return Err(WireError::BadKind {
                    proto: protocol,
                    kind: other,
                })
            }
        };
        r.done()?;
        Ok(msg)
    }
}

// ---------------------------------------------------------------------------
// Cyclon
// ---------------------------------------------------------------------------

mod cyclon_kind {
    pub const SHUFFLE_REQUEST: u8 = 0;
    pub const SHUFFLE_RESPONSE: u8 = 1;
}

fn write_descriptors(w: &mut Writer<'_>, descriptors: &[Descriptor]) {
    assert!(
        descriptors.len() <= u16::MAX as usize,
        "descriptor list too long to encode"
    );
    w.u16(descriptors.len() as u16);
    for d in descriptors {
        w.node(d.node);
        w.u16(d.age);
    }
}

fn read_descriptors(r: &mut Reader<'_>) -> Result<Vec<Descriptor>, WireError> {
    let count = r.u16()? as usize;
    let mut descriptors = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let node = r.node()?;
        let age = r.u16()?;
        descriptors.push(Descriptor { node, age });
    }
    Ok(descriptors)
}

impl WireCodec for CyclonMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let kind = match self {
            CyclonMsg::ShuffleRequest { .. } => cyclon_kind::SHUFFLE_REQUEST,
            CyclonMsg::ShuffleResponse { .. } => cyclon_kind::SHUFFLE_RESPONSE,
        };
        let mut w = Writer::begin(out, proto::CYCLON, kind);
        w.u8(0); // reserved: pads the header to CYCLON_HEADER_BYTES
        match self {
            CyclonMsg::ShuffleRequest { descriptors }
            | CyclonMsg::ShuffleResponse { descriptors } => write_descriptors(&mut w, descriptors),
        }
        w.finish();
    }

    fn decode(frame: &[u8]) -> Result<Self, WireError> {
        let (protocol, kind, mut r) = Reader::open(frame)?;
        if protocol != proto::CYCLON {
            return Err(WireError::BadProto(protocol));
        }
        r.u8()?; // reserved
        let msg = match kind {
            cyclon_kind::SHUFFLE_REQUEST => CyclonMsg::ShuffleRequest {
                descriptors: read_descriptors(&mut r)?,
            },
            cyclon_kind::SHUFFLE_RESPONSE => CyclonMsg::ShuffleResponse {
                descriptors: read_descriptors(&mut r)?,
            },
            other => {
                return Err(WireError::BadKind {
                    proto: protocol,
                    kind: other,
                })
            }
        };
        r.done()?;
        Ok(msg)
    }
}

// ---------------------------------------------------------------------------
// The combined stack
// ---------------------------------------------------------------------------

impl WireCodec for StackMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            StackMsg::Hpv(m) => m.encode_into(out),
            StackMsg::Brisa(m) => m.encode_into(out),
        }
    }

    fn decode(frame: &[u8]) -> Result<Self, WireError> {
        // Peek the protocol discriminant (offset 5) to route the frame; the
        // per-protocol decoder re-validates the whole prefix.
        let Some(&protocol) = frame.get(LEN_PREFIX_BYTES + 1) else {
            return Err(WireError::Truncated {
                needed: LEN_PREFIX_BYTES + 3,
                available: frame.len(),
            });
        };
        match protocol {
            proto::HPV => Ok(StackMsg::Hpv(HpvMsg::decode(frame)?)),
            proto::BRISA => Ok(StackMsg::Brisa(BrisaMsg::decode(frame)?)),
            other => Err(WireError::BadProto(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisa_simnet::WireSize;

    /// One representative value per variant of every message type the codec
    /// handles. Kept exhaustive by the match in `variant_name`.
    pub(crate) fn stack_specimens() -> Vec<StackMsg> {
        let mut v: Vec<StackMsg> = vec![
            StackMsg::Hpv(HpvMsg::Join),
            StackMsg::Hpv(HpvMsg::ForwardJoin {
                new_node: NodeId(7),
                ttl: 3,
            }),
            StackMsg::Hpv(HpvMsg::Neighbor {
                high_priority: true,
            }),
            StackMsg::Hpv(HpvMsg::NeighborReply { accepted: false }),
            StackMsg::Hpv(HpvMsg::Disconnect),
            StackMsg::Hpv(HpvMsg::Shuffle {
                origin: NodeId(1),
                nodes: vec![NodeId(2), NodeId(3), NodeId(4)],
                ttl: 2,
            }),
            StackMsg::Hpv(HpvMsg::ShuffleReply {
                nodes: vec![NodeId(9)],
            }),
            StackMsg::Hpv(HpvMsg::KeepAlive { nonce: 0xDEAD }),
            StackMsg::Hpv(HpvMsg::KeepAliveAck { nonce: 0xBEEF }),
            StackMsg::Brisa(BrisaMsg::data(DataMsg {
                seq: 42,
                payload_bytes: 1024,
                guard: CycleGuard::Path(vec![NodeId(0), NodeId(5)]),
                sender_uptime_secs: 17,
                sender_load: 3,
            })),
            StackMsg::Brisa(BrisaMsg::data(DataMsg {
                seq: 0,
                payload_bytes: 0,
                guard: CycleGuard::Depth(6),
                sender_uptime_secs: 0,
                sender_load: 0,
            })),
            StackMsg::Brisa(BrisaMsg::Deactivate { symmetric: true }),
            StackMsg::Brisa(BrisaMsg::Deactivate { symmetric: false }),
            StackMsg::Brisa(BrisaMsg::Activate),
            StackMsg::Brisa(BrisaMsg::ReactivationOrder),
            StackMsg::Brisa(BrisaMsg::DepthUpdate { depth: 4 }),
            StackMsg::Brisa(BrisaMsg::Retransmit {
                from_seq: 10,
                to_seq: 20,
            }),
            StackMsg::Brisa(BrisaMsg::Edge { highest: 599 }),
        ];
        // Edge cases: empty node lists.
        v.push(StackMsg::Hpv(HpvMsg::Shuffle {
            origin: NodeId(0),
            nodes: vec![],
            ttl: 0,
        }));
        v.push(StackMsg::Hpv(HpvMsg::ShuffleReply { nodes: vec![] }));
        v.push(StackMsg::Brisa(BrisaMsg::data(DataMsg {
            seq: 1,
            payload_bytes: 3,
            guard: CycleGuard::Path(vec![]),
            sender_uptime_secs: 1,
            sender_load: 1,
        })));
        v
    }

    fn cyclon_specimens() -> Vec<CyclonMsg> {
        vec![
            CyclonMsg::ShuffleRequest {
                descriptors: vec![
                    Descriptor {
                        node: NodeId(3),
                        age: 2,
                    },
                    Descriptor {
                        node: NodeId(8),
                        age: 0,
                    },
                ],
            },
            CyclonMsg::ShuffleResponse {
                descriptors: vec![],
            },
        ]
    }

    #[test]
    fn stack_roundtrip_every_variant() {
        for msg in stack_specimens() {
            let frame = msg.encode();
            let back = StackMsg::decode(&frame).expect("decode");
            assert_eq!(back, msg);
            // Re-encoding the decoded value is bit-identical.
            assert_eq!(back.encode(), frame);
        }
    }

    #[test]
    fn cyclon_roundtrip_every_variant() {
        for msg in cyclon_specimens() {
            let frame = msg.encode();
            assert_eq!(CyclonMsg::decode(&frame).expect("decode"), msg);
            assert_eq!(frame.len(), msg.wire_size());
        }
    }

    /// The satellite contract: `wire_size()` is the *actual* encoded size,
    /// for every variant.
    #[test]
    fn wire_size_is_encoded_len_for_every_variant() {
        for msg in stack_specimens() {
            let frame = msg.encode();
            assert_eq!(frame.len(), msg.wire_size(), "wire_size drift for {msg:?}");
        }
    }

    #[test]
    fn truncation_never_panics_and_always_errs() {
        for msg in stack_specimens() {
            let frame = msg.encode();
            for cut in 0..frame.len() {
                assert!(
                    StackMsg::decode(&frame[..cut]).is_err(),
                    "truncated frame (cut at {cut}) decoded for {msg:?}"
                );
            }
        }
    }

    #[test]
    fn header_corruption_is_rejected() {
        let frame = StackMsg::Hpv(HpvMsg::KeepAlive { nonce: 1 }).encode();
        // Version skew.
        let mut bad = frame.clone();
        bad[4] = WIRE_VERSION + 1;
        assert_eq!(
            StackMsg::decode(&bad),
            Err(WireError::BadVersion(WIRE_VERSION + 1))
        );
        // Unknown protocol.
        let mut bad = frame.clone();
        bad[5] = 99;
        assert_eq!(StackMsg::decode(&bad), Err(WireError::BadProto(99)));
        // Unknown kind.
        let mut bad = frame.clone();
        bad[6] = 200;
        assert!(matches!(
            StackMsg::decode(&bad),
            Err(WireError::BadKind { kind: 200, .. })
        ));
        // Length prefix mismatch.
        let mut bad = frame.clone();
        bad[0] ^= 1;
        assert!(StackMsg::decode(&bad).is_err());
        // Trailing garbage.
        let mut bad = frame.clone();
        bad.push(0);
        assert!(StackMsg::decode(&bad).is_err());
    }

    #[test]
    fn frame_len_splits_streams() {
        let a = StackMsg::Hpv(HpvMsg::Join).encode();
        let b = StackMsg::Brisa(BrisaMsg::Deactivate { symmetric: false }).encode();
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let la = frame_len(&stream).unwrap().unwrap();
        assert_eq!(la, a.len());
        let lb = frame_len(&stream[la..]).unwrap().unwrap();
        assert_eq!(lb, b.len());
        assert_eq!(frame_len(&stream[..2]).unwrap(), None);
        // A hostile length prefix is rejected instead of allocating.
        let huge = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes().to_vec();
        assert!(frame_len(&huge).is_err());
    }

    #[test]
    fn data_payload_bytes_are_materialised() {
        let msg = BrisaMsg::data(DataMsg {
            seq: 9,
            payload_bytes: 100,
            guard: CycleGuard::Depth(1),
            sender_uptime_secs: 0,
            sender_load: 0,
        });
        let frame = msg.encode();
        assert_eq!(frame.len(), msg.wire_size());
        // The last 100 bytes are the deterministic pattern.
        let tail = &frame[frame.len() - 100..];
        for (i, &b) in tail.iter().enumerate() {
            assert_eq!(b, payload_byte(9, i));
        }
    }
}
