//! Timing and sizing knobs of the live runtime, gathered in one place.
//!
//! Before this module existed, the 200 ms synthetic link-down detection
//! delay and the 50 → 800 ms re-dial backoff schedule were hardcoded
//! constants scattered across `shim` and `tcp` — invisible to the sim's
//! model and impossible to keep aligned with it. [`RuntimeConfig`] lifts
//! them into configuration, with defaults pinned (by unit test) to the
//! simulator's [`NetworkConfig`](brisa_simnet::NetworkConfig) so a live
//! run and a simulated run of one scenario charge the same detection and
//! reconnect timings.

use brisa_simnet::SimDuration;
use std::time::Duration;

/// Timing/sizing parameters of the live runtime: reactor shard count,
/// failure-detection delay, and the outbound dial/re-dial schedules.
///
/// The default `detection_delay` **must** equal the simulator's
/// `NetworkConfig::default().failure_detection_delay` — the unit test
/// `detection_delay_matches_the_sim_default` pins the two together, so a
/// drift in either world breaks the build instead of silently skewing the
/// divergence gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Reactor worker threads. Every node is pinned to the shard
    /// `id % workers`; each worker multiplexes its nodes' protocol
    /// callbacks, timers and sockets on one poll loop.
    pub workers: usize,
    /// How long a failed connection attempt (a dial across a partition
    /// cut, a dial to a dead peer) takes to surface as a link-down — the
    /// live counterpart of the simulator's
    /// `NetworkConfig::failure_detection_delay`.
    pub detection_delay: Duration,
    /// Initial-dial retry budget. Listeners are pre-bound before any node
    /// starts, so these retries only cover transient kernel backlog
    /// pressure.
    pub connect_retries: u32,
    /// Pause between initial-dial retries.
    pub connect_retry_delay: Duration,
    /// Re-dial budget for an *established* outbound connection that fails
    /// mid-stream. Only after every attempt fails does the failure surface
    /// as a link-down.
    pub reconnect_attempts: u32,
    /// First re-dial backoff; doubles per attempt.
    pub reconnect_base: Duration,
    /// Backoff ceiling.
    pub reconnect_cap: Duration,
    /// Timeout of one blocking `connect` on the dialer thread.
    pub connect_timeout: Duration,
    /// Idle cut-off for *unmonitored* outbound links. Any send creates a
    /// connection; dissemination links live under `open_connection`
    /// monitoring and are reused for the life of a tree edge, but overlay
    /// maintenance traffic (shuffles, random walks) targets a different
    /// peer almost every time, so those connections would otherwise
    /// accumulate without bound — at in-process cluster scale, straight
    /// into the process fd ceiling. A link that is up, fully flushed,
    /// unmonitored, and idle this long is closed by the reactor's ~1 s
    /// reap sweep, announced to the receiver with a goodbye marker so the
    /// deliberate close is not mistaken for peer death.
    pub idle_link_timeout: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 4,
            detection_delay: Duration::from_millis(200),
            connect_retries: 20,
            connect_retry_delay: Duration::from_millis(25),
            reconnect_attempts: 5,
            reconnect_base: Duration::from_millis(50),
            reconnect_cap: Duration::from_millis(800),
            connect_timeout: Duration::from_secs(2),
            idle_link_timeout: Duration::from_secs(3),
        }
    }
}

impl RuntimeConfig {
    /// The exponential re-dial backoff before attempt `attempt` (0-based):
    /// `reconnect_base * 2^attempt`, capped at `reconnect_cap`. Jitter is
    /// added by the caller (deterministically, per link).
    pub fn reconnect_backoff(&self, attempt: u32) -> Duration {
        self.reconnect_base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.reconnect_cap)
    }

    /// The detection delay in the simulator's time type, for comparing a
    /// live schedule against the sim's model of the same scenario.
    pub fn detection_delay_sim(&self) -> SimDuration {
        SimDuration::from_micros(self.detection_delay.as_micros() as u64)
    }

    /// Upper bound of the whole re-dial cycle (every backoff, maximum
    /// jitter, plus one connect timeout per attempt): how long a
    /// mid-stream connection failure can take to surface as a link-down.
    pub fn max_reconnect_window(&self) -> Duration {
        let mut total = Duration::ZERO;
        for attempt in 0..self.reconnect_attempts {
            let backoff = self.reconnect_backoff(attempt);
            total += backoff + backoff / 2 + self.connect_timeout;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisa_simnet::NetworkConfig;

    #[test]
    fn detection_delay_matches_the_sim_default() {
        // The pin this module exists for: live synthetic link-down
        // detection and the sim's failure detection charge the same time.
        assert_eq!(
            RuntimeConfig::default().detection_delay_sim(),
            NetworkConfig::default().failure_detection_delay,
        );
    }

    #[test]
    fn reconnect_backoff_doubles_and_caps() {
        let cfg = RuntimeConfig::default();
        let schedule: Vec<u64> = (0..cfg.reconnect_attempts)
            .map(|a| cfg.reconnect_backoff(a).as_millis() as u64)
            .collect();
        assert_eq!(schedule, vec![50, 100, 200, 400, 800]);
        // Past the cap the schedule stays flat (and never overflows).
        assert_eq!(cfg.reconnect_backoff(40), cfg.reconnect_cap);
        assert!(cfg.max_reconnect_window() >= Duration::from_millis(1550));
    }
}
