//! The in-process loopback mesh: an N-node interconnect made of MPSC
//! queues.
//!
//! Every node's inbound channel is registered in a shared table; `send`
//! clones nothing and performs no syscalls, so the mesh measures the
//! protocol stack and executor — not the kernel. Failure detection is
//! exact: a node that shuts down notifies every peer that had an open
//! (monitored) connection to it, mirroring the simulator's crash
//! semantics with a zero detection delay.

use crate::transport::{FrameSink, NetEvent, Transport};
use brisa_simnet::NodeId;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

struct MeshState {
    /// Inbound sink per node; `None` once the node shut down (or before it
    /// attached).
    inboxes: Vec<Option<Box<dyn FrameSink>>>,
    /// `monitors[x]` = nodes holding an open (failure-detected) connection
    /// to `x`; they are notified when `x` shuts down.
    monitors: Vec<BTreeSet<u32>>,
}

/// The shared interconnect. Create one, then [`attach`](LoopbackMesh::attach)
/// every node **before** starting any executor so early joins find their
/// contact registered.
#[derive(Clone)]
pub struct LoopbackMesh {
    state: Arc<Mutex<MeshState>>,
}

impl LoopbackMesh {
    /// A mesh with capacity for nodes `0..n`.
    pub fn new(n: usize) -> Self {
        LoopbackMesh {
            state: Arc::new(Mutex::new(MeshState {
                inboxes: (0..n).map(|_| None).collect(),
                monitors: vec![BTreeSet::new(); n],
            })),
        }
    }

    /// Registers `node`'s inbound sink and returns its transport handle.
    pub fn attach(&self, node: NodeId, sink: Box<dyn FrameSink>) -> LoopbackTransport {
        let mut st = self.state.lock().unwrap();
        assert!(node.index() < st.inboxes.len(), "node beyond mesh capacity");
        st.inboxes[node.index()] = Some(sink);
        LoopbackTransport {
            me: node,
            state: Arc::clone(&self.state),
        }
    }
}

/// One node's handle onto a [`LoopbackMesh`].
pub struct LoopbackTransport {
    me: NodeId,
    state: Arc<Mutex<MeshState>>,
}

impl Transport for LoopbackTransport {
    fn send(&mut self, to: NodeId, frame: Vec<u8>) {
        let mut st = self.state.lock().unwrap();
        let from = self.me;
        if let Some(Some(sink)) = st.inboxes.get_mut(to.index()) {
            sink.deliver(NetEvent::Frame { from, frame });
        }
        // Dead destination: silently dropped, like a broken connection.
    }

    fn open_connection(&mut self, peer: NodeId) {
        let mut st = self.state.lock().unwrap();
        let me = self.me;
        let peer_alive = matches!(st.inboxes.get(peer.index()), Some(Some(_)));
        if peer_alive {
            st.monitors[peer.index()].insert(me.0);
        } else if let Some(Some(sink)) = st.inboxes.get_mut(me.index()) {
            // Opening towards a dead peer fails detection immediately.
            sink.deliver(NetEvent::LinkDown { peer });
        }
    }

    fn close_connection(&mut self, peer: NodeId) {
        let mut st = self.state.lock().unwrap();
        if let Some(set) = st.monitors.get_mut(peer.index()) {
            set.remove(&self.me.0);
        }
    }

    fn shutdown(&mut self) {
        let mut st = self.state.lock().unwrap();
        let me = self.me;
        st.inboxes[me.index()] = None;
        let watchers = std::mem::take(&mut st.monitors[me.index()]);
        for w in watchers {
            if let Some(Some(sink)) = st.inboxes.get_mut(w as usize) {
                sink.deliver(NetEvent::LinkDown { peer: me });
            }
        }
        for set in &mut st.monitors {
            set.remove(&me.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    struct TestSink(mpsc::Sender<NetEvent>);

    impl FrameSink for TestSink {
        fn deliver(&mut self, event: NetEvent) -> bool {
            self.0.send(event).is_ok()
        }
        fn box_clone(&self) -> Box<dyn FrameSink> {
            Box::new(TestSink(self.0.clone()))
        }
    }

    fn sink() -> (Box<dyn FrameSink>, mpsc::Receiver<NetEvent>) {
        let (tx, rx) = mpsc::channel();
        (Box::new(TestSink(tx)), rx)
    }

    #[test]
    fn frames_flow_between_attached_nodes() {
        let mesh = LoopbackMesh::new(2);
        let (s0, r0) = sink();
        let (s1, r1) = sink();
        let mut t0 = mesh.attach(NodeId(0), s0);
        let _t1 = mesh.attach(NodeId(1), s1);
        t0.send(NodeId(1), vec![1, 2, 3]);
        match r1.recv().unwrap() {
            NetEvent::Frame { from, frame } => {
                assert_eq!(from, NodeId(0));
                assert_eq!(frame, vec![1, 2, 3]);
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(r0.try_recv().is_err(), "no echo to the sender");
    }

    #[test]
    fn shutdown_notifies_monitoring_peers_only() {
        let mesh = LoopbackMesh::new(3);
        let (s0, r0) = sink();
        let (s1, r1) = sink();
        let (s2, r2) = sink();
        let mut t0 = mesh.attach(NodeId(0), s0);
        let mut t1 = mesh.attach(NodeId(1), s1);
        let _t2 = mesh.attach(NodeId(2), s2);
        // 0 monitors 1; 2 does not.
        t0.open_connection(NodeId(1));
        t1.shutdown();
        match r0.recv().unwrap() {
            NetEvent::LinkDown { peer } => assert_eq!(peer, NodeId(1)),
            other => panic!("unexpected event {other:?}"),
        }
        assert!(r2.try_recv().is_err());
        // Sends to the dead node are silently dropped.
        t0.send(NodeId(1), vec![9]);
        assert!(r1.try_recv().is_err());
        // Opening towards the dead node fails immediately.
        t0.open_connection(NodeId(1));
        assert!(matches!(
            r0.recv().unwrap(),
            NetEvent::LinkDown { peer: NodeId(1) }
        ));
    }

    #[test]
    fn closed_connections_are_not_notified() {
        let mesh = LoopbackMesh::new(2);
        let (s0, r0) = sink();
        let (s1, _r1) = sink();
        let mut t0 = mesh.attach(NodeId(0), s0);
        let mut t1 = mesh.attach(NodeId(1), s1);
        t0.open_connection(NodeId(1));
        t0.close_connection(NodeId(1));
        t1.shutdown();
        assert!(r0.try_recv().is_err());
    }
}
