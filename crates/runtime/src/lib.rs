//! # brisa-runtime — live wall-clock execution of the sans-IO stack
//!
//! Everything above the simulator is written sans-IO: protocols react to
//! events through `brisa_simnet::Protocol` and emit commands, never
//! touching sockets, threads or clocks. This crate cashes that design in:
//! it executes **the same protocol implementations, unmodified**, in real
//! time over real byte transports — the execution mode the paper's
//! prototype used on its physical testbeds.
//!
//! Three layers:
//!
//! * [`wire`] — a length-prefixed, versioned binary codec for every stack
//!   message type, with the contract that `WireSize::wire_size()` **is**
//!   the encoded frame length (so sim bandwidth accounting equals live
//!   bytes);
//! * [`transport`] — the [`Transport`] trait with two backends: the
//!   in-process [`LoopbackMesh`] (in-memory queues) and the real
//!   [`TcpMesh`] (framed sockets on `127.0.0.1`, TCP failures surfaced as
//!   `on_link_down`);
//! * [`reactor`]/[`cluster`] — the sharded reactor: `workers` threads
//!   each multiplexing many nodes' protocol callbacks, real-time timers
//!   and non-blocking sockets on one poll loop, and the [`Cluster`]
//!   harness that boots N nodes on a shared pool, publishes a broadcast
//!   workload and collects the sim engine's `NodeReport`s into a
//!   [`LiveResult`]. Timing/sizing knobs live in [`RuntimeConfig`],
//!   pinned to the simulator's defaults.
//!
//! ## Quick start
//!
//! ```
//! use brisa_runtime::{Cluster, ClusterConfig, TransportKind};
//! use brisa_workloads::BrisaStackConfig;
//! use brisa::{BrisaConfig, BrisaNode};
//! use brisa_membership::HyParViewConfig;
//! use std::time::Duration;
//!
//! let cfg = ClusterConfig {
//!     nodes: 8,
//!     transport: TransportKind::Loopback,
//!     ..Default::default()
//! };
//! let stack = BrisaStackConfig {
//!     hpv: HyParViewConfig::default(),
//!     brisa: BrisaConfig::default(),
//! };
//! let mut cluster: Cluster<BrisaNode> = Cluster::launch(&cfg, &stack).unwrap();
//! cluster.run_for(Duration::from_millis(300)); // overlay forms
//! cluster.publish(1024);
//! cluster.wait_for_delivery(1, Duration::from_secs(10));
//! let result = cluster.stop_and_collect();
//! assert_eq!(result.delivery_rate(), 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod cluster;
pub mod config;
pub mod executor;
pub mod loopback;
pub mod reactor;
pub mod report;
pub mod shim;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use chaos::{run_chaos, SoakConfig, SoakOutcome};
pub use cluster::{Cluster, ClusterConfig, TransportKind};
pub use config::RuntimeConfig;
pub use executor::{NodeRuntime, RuntimeStats, WallClock};
pub use loopback::{LoopbackMesh, LoopbackTransport};
pub use reactor::ReactorPool;
pub use report::{LiveNode, LiveResult};
pub use shim::{FaultShim, ShimControl, ShimStats};
pub use tcp::TcpMesh;
pub use transport::{FrameSink, NetEvent, Transport};
pub use wire::{WireCodec, WireError, WIRE_VERSION};
