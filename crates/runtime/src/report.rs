//! The collected outcome of a live cluster run.
//!
//! [`LiveResult`] mirrors the sim engine's `EngineResult` where the two
//! execution modes overlap: per-node [`NodeReport`]s, the publish schedule,
//! and the `delivery_rate()`/`completeness()` summaries (same formulas, so
//! the acceptance bars of the fault sweeps translate verbatim). Wall-clock
//! runs are not bit-reproducible, so instead of the engine's full
//! fingerprint it exposes [`LiveResult::delivery_fingerprint`] — the
//! timing-free projection (who delivered which sequence numbers) that a
//! simulated run of the same scenario must agree with.

use crate::executor::RuntimeStats;
use brisa_simnet::{NodeId, SimTime};
use brisa_workloads::invariants::check_delivery_report;
use brisa_workloads::{completeness_of, delivery_rate_of, NodeReport};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// One live node's end-of-run state.
#[derive(Debug, Clone)]
pub struct LiveNode {
    /// The node.
    pub id: NodeId,
    /// The protocol's own report (same type the sim engine collects).
    pub report: NodeReport,
    /// The executor's transfer counters.
    pub stats: RuntimeStats,
}

/// The outcome of one live cluster run.
#[derive(Debug, Clone)]
pub struct LiveResult {
    /// Protocol label.
    pub protocol: &'static str,
    /// The stream source.
    pub source: NodeId,
    /// Nodes the cluster was launched with.
    pub original_nodes: u32,
    /// Messages the source injected.
    pub messages_published: u64,
    /// Injection time of every message (wall clock since cluster launch),
    /// indexed by sequence number.
    pub publish_times: Vec<SimTime>,
    /// Per-node outcomes for nodes alive at collection, in node order.
    pub nodes: Vec<LiveNode>,
    /// Wall time from launch to collection.
    pub wall_elapsed: Duration,
    /// Nodes killed at least once during the run (sorted). A restarted
    /// node is alive at collection but lost its state mid-stream, so the
    /// survivor metrics exclude it — the live mirror of the sim engine
    /// excluding crashed nodes and counting their replacements as
    /// ineligible joiners.
    pub ever_killed: Vec<u32>,
}

impl LiveResult {
    /// Fraction of (eligible node × message) pairs delivered — literally
    /// the sim engine's formula ([`delivery_rate_of`]) over live reports.
    pub fn delivery_rate(&self) -> f64 {
        delivery_rate_of(self.eligible_delivered_counts(), self.messages_published)
    }

    /// Fraction of live non-source nodes that delivered every message
    /// (the engine's [`completeness_of`]).
    pub fn completeness(&self) -> f64 {
        completeness_of(self.eligible_delivered_counts(), self.messages_published)
    }

    /// Delivered counts of the eligible nodes: alive, non-source, launched
    /// with the cluster.
    fn eligible_delivered_counts(&self) -> impl Iterator<Item = u64> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.id != self.source && n.id.0 < self.original_nodes)
            .map(|n| n.report.delivered)
    }

    /// Delivered counts of the *survivors*: eligible nodes that were never
    /// killed. A restarted node's empty-state rebirth would otherwise drag
    /// the averages for messages published before it existed.
    fn survivor_delivered_counts(&self) -> impl Iterator<Item = u64> + '_ {
        self.nodes
            .iter()
            .filter(|n| {
                n.id != self.source
                    && n.id.0 < self.original_nodes
                    && self.ever_killed.binary_search(&n.id.0).is_err()
            })
            .map(|n| n.report.delivered)
    }

    /// [`LiveResult::delivery_rate`] over the survivors only — the metric
    /// the sim-vs-live divergence gate compares, since the sim's
    /// eligibility filter excludes crashed nodes the same way.
    pub fn survivor_delivery_rate(&self) -> f64 {
        delivery_rate_of(self.survivor_delivered_counts(), self.messages_published)
    }

    /// [`LiveResult::completeness`] over the survivors only.
    pub fn survivor_completeness(&self) -> f64 {
        completeness_of(self.survivor_delivered_counts(), self.messages_published)
    }

    /// Injection-to-delivery latency of every (node, message) pair, in
    /// milliseconds. The raw samples behind the latency CDFs.
    pub fn latency_samples_ms(&self) -> Vec<f64> {
        let mut samples = Vec::new();
        for n in &self.nodes {
            if n.id == self.source {
                continue;
            }
            for &(seq, at) in &n.report.first_delivery {
                if let Some(&published) = self.publish_times.get(seq as usize) {
                    samples.push(at.saturating_since(published).as_millis_f64());
                }
            }
        }
        samples
    }

    /// Per-node sets of delivered sequence numbers. The projection of the
    /// run that is deterministic for a correct protocol — a simulated run
    /// of the same scenario must produce the same map.
    pub fn delivered_sets(&self) -> BTreeMap<u32, Vec<u64>> {
        self.nodes
            .iter()
            .map(|n| {
                (
                    n.id.0,
                    n.report.first_delivery.iter().map(|&(s, _)| s).collect(),
                )
            })
            .collect()
    }

    /// A compact, timing-free fingerprint of the delivery outcome:
    /// protocol, source, and each node's delivered sequence set. The live
    /// counterpart of the engine fingerprint's delivery projection.
    pub fn delivery_fingerprint(&self) -> String {
        let mut out = String::new();
        write!(
            out,
            "{}|src={}|pub={}|",
            self.protocol, self.source.0, self.messages_published
        )
        .unwrap();
        for (id, seqs) in self.delivered_sets() {
            write!(out, "n{id}:d{:?};", seqs).unwrap();
        }
        out
    }

    /// Total frames and bytes the cluster moved (sum over nodes, outbound).
    pub fn frames_and_bytes_out(&self) -> (u64, u64) {
        self.nodes.iter().fold((0, 0), |(f, b), n| {
            (f + n.stats.frames_out, b + n.stats.bytes_out)
        })
    }

    /// Idle outbound links the reap sweep closed, cluster-wide.
    pub fn links_reaped(&self) -> u64 {
        self.nodes.iter().map(|n| n.stats.links_reaped).sum()
    }

    /// Backoff re-dials that fired for the cluster's outbound links.
    pub fn redials(&self) -> u64 {
        self.nodes.iter().map(|n| n.stats.redials).sum()
    }

    /// Delivered (node × message) events per second of wall time — the
    /// headline throughput of the live bench.
    pub fn deliveries_per_sec(&self) -> f64 {
        let delivered: u64 = self
            .nodes
            .iter()
            .filter(|n| n.id != self.source)
            .map(|n| n.report.delivered)
            .sum();
        let secs = self.wall_elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            delivered as f64 / secs
        }
    }

    /// Runs the engine's offline delivery checks on every node's report:
    /// unique, ordered first-delivery records; counts consistent; no
    /// sequence number beyond what was published; no timestamp from the
    /// future. This is `workloads::invariants` applied to the live trace.
    pub fn check_delivery_invariants(&self) -> Result<(), String> {
        let now = SimTime::from_micros(self.wall_elapsed.as_micros() as u64);
        for n in &self.nodes {
            check_delivery_report(n.id, &n.report, self.messages_published, now)?;
        }
        Ok(())
    }
}
