//! The live chaos runner: replays a [`ChaosSchedule`] against a real
//! cluster in wall-clock time.
//!
//! This is the live counterpart of `workloads::engine` driving a
//! scenario's merged schedule: the stream's publishes, the script's
//! lifecycle events (kills, restarts, flash joins) and periodic online
//! invariant sweeps are merged into one time-ordered plan and executed
//! against the wall clock. Faults ride the cluster's transport
//! [`FaultShim`](crate::FaultShim): the stochastic profile activates at
//! stream start and the partition window is installed up front — the
//! same activation discipline as the simulator engine.
//!
//! Each sweep snapshots every live node's report *mid-stream* and holds
//! it to `workloads::invariants::check_delivery_report` (unique ordered
//! deliveries, nothing from the future, nothing beyond what was
//! published) plus cross-sweep delivered-count monotonicity — a live
//! node must never un-deliver. Violations are collected, not thrown, so
//! a soak driver can report every breakage of a long run at once.

use crate::cluster::{Cluster, ClusterConfig, TransportKind};
use crate::report::LiveResult;
use crate::shim::ShimStats;
use crate::wire::WireCodec;
use brisa_simnet::{NodeId, SimTime};
use brisa_telemetry::{EventKind as TelEventKind, Telemetry};
use brisa_workloads::chaos::{ChaosEventKind, ChaosSchedule};
use brisa_workloads::invariants::check_delivery_report;
use brisa_workloads::{DisseminationProtocol, StreamSpec, FIRST_PUBLISH_DELAY};
use std::collections::HashMap;
use std::time::Duration;

/// Parameters of a chaos soak run (the live analogue of the sim
/// scenario's size/stream/bootstrap/drain knobs).
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Number of nodes (node 0 is the source).
    pub nodes: u32,
    /// The interconnect.
    pub transport: TransportKind,
    /// Master seed: per-node RNGs *and* the fault shim's PRF derive from
    /// it, so the same seed means the same fault draws as a simulated run.
    pub seed: u64,
    /// Stream shape (messages, rate, payload).
    pub stream: StreamSpec,
    /// Wall time the overlay gets to form before the stream starts.
    pub bootstrap: Duration,
    /// Wall-time budget for the post-stream drain (repairs catching up).
    pub drain: Duration,
    /// Interval between online invariant sweeps.
    pub sweep_interval: Duration,
    /// Telemetry handle threaded into the cluster (reactor, protocol
    /// cores) and used by the runner itself for sweep/fault/partition
    /// flight-recorder events. Disabled by default.
    pub telemetry: Telemetry,
    /// When set, every sweep prints a one-line progress summary to
    /// stderr tagged with this label (scenario name), e.g.
    /// `[soak churn] t=12.4s published=300 delivered=290/300 alive=64`.
    pub progress: Option<String>,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            nodes: 16,
            transport: TransportKind::Loopback,
            seed: 0xB215A,
            stream: StreamSpec::short(50, 256),
            bootstrap: Duration::from_secs(2),
            drain: Duration::from_secs(10),
            sweep_interval: Duration::from_secs(2),
            telemetry: Telemetry::disabled(),
            progress: None,
        }
    }
}

/// Everything a chaos soak run produced.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// The collected cluster result (reports, publish times, survivors).
    pub result: LiveResult,
    /// Online invariant sweeps performed.
    pub sweeps: usize,
    /// Every invariant violation any sweep observed (empty on a clean run).
    pub violations: Vec<String>,
    /// Nodes the schedule restarted (subset of `result.ever_killed`).
    pub restarted: Vec<u32>,
    /// Fresh joiners the schedule injected mid-run.
    pub joined: Vec<u32>,
    /// What the fault shim did to traffic over the whole run.
    pub shim: ShimStats,
}

/// One entry of the merged wall-clock plan. Variant order is the
/// stable-sort tiebreak at equal times, mirroring the engine: faults
/// switch on before the event or publish they coincide with.
enum SoakStep {
    EnableLinkFaults,
    Chaos(ChaosEventKind),
    Publish,
    Sweep,
    /// Telemetry-only marker at the partition's heal instant (the shim
    /// heals itself from the installed window; this just records it).
    PartitionHealed,
}

/// Replays `schedule` against a fresh `cfg`-shaped live cluster and
/// returns the full outcome. The schedule must be valid for the
/// population ([`ChaosSchedule::validate`]); the cluster is always
/// launched with the fault shim enabled.
pub fn run_chaos<P>(
    cfg: &SoakConfig,
    proto_cfg: &P::Config,
    schedule: &ChaosSchedule,
) -> std::io::Result<SoakOutcome>
where
    P: DisseminationProtocol + Send + 'static,
    P::Message: WireCodec,
{
    schedule
        .validate(cfg.nodes, 0)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    let reserve: u32 = schedule
        .events
        .iter()
        .map(|ev| match ev.kind {
            ChaosEventKind::FlashJoin { count } => count,
            _ => 0,
        })
        .sum();
    let cluster_cfg = ClusterConfig {
        nodes: cfg.nodes,
        transport: cfg.transport,
        seed: cfg.seed,
        reserve,
        fault_shim: true,
        telemetry: cfg.telemetry.clone(),
        ..Default::default()
    };
    let mut cluster: Cluster<P> = Cluster::launch(&cluster_cfg, proto_cfg)?;
    cluster.run_for(cfg.bootstrap);

    let stream_start = cluster.now() + FIRST_PUBLISH_DELAY;
    let interval = cfg.stream.interval();
    let stream_end = stream_start + cfg.stream.duration();
    let shim = cluster.shim().expect("launched with fault_shim").clone();

    // The partition window is absolute, so it can be installed up front;
    // the stochastic profile flips on at stream start, via the plan.
    let mut heal_at: Option<SimTime> = None;
    if let Some(phase) = schedule.faults.partition.filter(|p| !p.duration.is_zero()) {
        let partition = phase.to_partition(stream_start, cfg.nodes);
        cfg.telemetry.event(
            cluster.now().as_micros(),
            u32::MAX,
            TelEventKind::PartitionApply,
            partition.start.as_micros(),
            partition.end.as_micros(),
        );
        heal_at = Some(partition.end);
        shim.add_partition(partition);
    }

    // Merge publishes, chaos events and sweeps into one plan. Pushing
    // fault/chaos steps before publishes and sorting stably keeps the
    // engine's tie-break: adversity lands before the traffic it hits.
    let mut plan: Vec<(SimTime, SoakStep)> = Vec::new();
    if !schedule.faults.link_faults().is_inert() {
        plan.push((stream_start, SoakStep::EnableLinkFaults));
    }
    plan.extend(
        schedule
            .events
            .iter()
            .map(|ev| (stream_start + ev.after, SoakStep::Chaos(ev.kind))),
    );
    plan.extend(
        (0..cfg.stream.messages).map(|seq| (stream_start + interval * seq, SoakStep::Publish)),
    );
    let sweep_every =
        brisa_simnet::SimDuration::from_micros((cfg.sweep_interval.as_micros() as u64).max(1));
    let mut sweep_at = stream_start + sweep_every;
    while sweep_at < stream_end {
        plan.push((sweep_at, SoakStep::Sweep));
        sweep_at += sweep_every;
    }
    if let Some(at) = heal_at.filter(|at| *at < stream_end) {
        plan.push((at, SoakStep::PartitionHealed));
    }
    plan.sort_by_key(|(t, _)| *t);

    let mut sweeps = 0usize;
    let mut violations: Vec<String> = Vec::new();
    let mut restarted: Vec<u32> = Vec::new();
    let mut joined: Vec<u32> = Vec::new();
    // Cross-sweep monotonicity floor; an entry is reset by a restart
    // (state loss is the point of the exercise).
    let mut floor: HashMap<u32, u64> = HashMap::new();

    let clock = *cluster.clock();
    for (at, step) in plan {
        let deadline = clock.instant_at(at);
        let now = std::time::Instant::now();
        if deadline > now {
            std::thread::sleep(deadline - now);
        }
        match step {
            SoakStep::EnableLinkFaults => {
                cfg.telemetry.event(
                    cluster.now().as_micros(),
                    u32::MAX,
                    TelEventKind::FaultsEnabled,
                    0,
                    0,
                );
                shim.set_link_faults(schedule.faults.link_faults())
            }
            SoakStep::PartitionHealed => {
                cfg.telemetry.event(
                    cluster.now().as_micros(),
                    u32::MAX,
                    TelEventKind::PartitionHeal,
                    0,
                    0,
                );
            }
            SoakStep::Publish => cluster.publish(cfg.stream.payload_bytes),
            SoakStep::Chaos(ChaosEventKind::Kill { node }) => {
                let victim = NodeId(node);
                if victim != cluster.source() && cluster.is_alive(victim) {
                    cluster.kill(victim);
                    floor.remove(&node);
                }
            }
            SoakStep::Chaos(ChaosEventKind::Restart { node }) => {
                if !cluster.is_alive(NodeId(node)) {
                    cluster.restart(NodeId(node))?;
                    restarted.push(node);
                    floor.remove(&node);
                }
            }
            SoakStep::Chaos(ChaosEventKind::FlashJoin { count }) => {
                for _ in 0..count {
                    joined.push(cluster.join_node().0);
                }
            }
            SoakStep::Sweep => {
                sweeps += 1;
                sweep(cfg, &cluster, sweeps, &mut floor, &mut violations);
            }
        }
    }

    // Drain: let repairs catch the survivors up, sweeping as we wait, and
    // stop early once every never-killed original node has the full
    // stream.
    let drain_end = std::time::Instant::now() + cfg.drain;
    loop {
        std::thread::sleep(cfg.sweep_interval.min(Duration::from_millis(500)));
        sweeps += 1;
        let reports = sweep(cfg, &cluster, sweeps, &mut floor, &mut violations);
        let killed = cluster.ever_killed();
        let done = reports.iter().all(|(id, r)| {
            id.0 == 0
                || id.0 >= cfg.nodes
                || killed.contains(&id.0)
                || r.delivered >= cfg.stream.messages
        });
        if done || std::time::Instant::now() >= drain_end {
            break;
        }
    }

    let shim_stats = shim.stats();
    let result = cluster.stop_and_collect();
    Ok(SoakOutcome {
        result,
        sweeps,
        violations,
        restarted,
        joined,
        shim: shim_stats,
    })
}

/// One online invariant sweep: snapshot every live report and hold it to
/// the engine's delivery checks plus cross-sweep monotonicity. Returns
/// the snapshots so callers can reuse them. Records an `InvariantSweep`
/// flight-recorder event, refreshes the cluster-level gauges and, when
/// [`SoakConfig::progress`] is set, prints a one-line summary.
fn sweep<P>(
    cfg: &SoakConfig,
    cluster: &Cluster<P>,
    sweeps: usize,
    floor: &mut HashMap<u32, u64>,
    violations: &mut Vec<String>,
) -> Vec<(NodeId, brisa_workloads::NodeReport)>
where
    P: DisseminationProtocol + Send + 'static,
    P::Message: WireCodec,
{
    let reports = cluster.snapshot_reports();
    let published = cluster.published();
    // `now` is taken *after* collection so no report timestamp can be from
    // the sweep's future.
    let now = cluster.now();
    for (id, report) in &reports {
        if let Err(e) = check_delivery_report(*id, report, published, now) {
            violations.push(e);
        }
        let prev = floor.entry(id.0).or_insert(0);
        if report.delivered < *prev {
            violations.push(format!(
                "node {}: delivered count went backwards ({} -> {})",
                id.0, prev, report.delivered
            ));
        }
        *prev = report.delivered;
    }
    cluster.publish_telemetry();
    cfg.telemetry.event(
        now.as_micros(),
        u32::MAX,
        TelEventKind::InvariantSweep,
        reports.len() as u64,
        violations.len() as u64,
    );
    if let Some(label) = &cfg.progress {
        // Delivered floor across eligible original survivors — the number
        // the final completeness gate will be judged on.
        let killed = cluster.ever_killed();
        let delivered_min = reports
            .iter()
            .filter(|(id, _)| id.0 != 0 && id.0 < cfg.nodes && !killed.contains(&id.0))
            .map(|(_, r)| r.delivered)
            .min()
            .unwrap_or(0);
        eprintln!(
            "[soak {label}] t={:.1}s sweep={sweeps} published={published} delivered={delivered_min}/{} alive={} violations={}",
            now.as_micros() as f64 / 1e6,
            cfg.stream.messages,
            cluster.alive(),
            violations.len(),
        );
    }
    reports
}
