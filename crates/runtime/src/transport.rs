//! The byte-transport abstraction the live runtime executes over.
//!
//! A [`Transport`] is one node's handle onto the interconnect: it pushes
//! encoded frames towards peers and registers/unregisters failure-detection
//! interest. Inbound traffic travels the other way: the transport delivers
//! [`NetEvent`]s into the node's executor through a [`FrameSink`] (an
//! abstraction over the executor's channel that hides the protocol type
//! from the transport implementations).
//!
//! Two backends ship with the crate: the in-process
//! [`LoopbackMesh`](crate::loopback::LoopbackMesh) (MPSC queues, zero
//! syscalls — the throughput-bench substrate) and the real
//! [`TcpMesh`](crate::tcp::TcpMesh) over `127.0.0.1` sockets.

use brisa_simnet::NodeId;

/// An event a transport delivers into a node's executor.
#[derive(Debug)]
pub enum NetEvent {
    /// A full frame (length prefix included) arrived from `from`.
    Frame {
        /// The sending node.
        from: NodeId,
        /// The raw frame bytes.
        frame: Vec<u8>,
    },
    /// Connection-level failure detection reports the link to `peer` broken.
    LinkDown {
        /// The peer whose link failed.
        peer: NodeId,
    },
}

/// Where a transport delivers inbound events.
///
/// Implemented by the executor's channel adapter
/// (the reactor's inbox-backed sink); the indirection keeps
/// transports independent of the protocol type parameter.
pub trait FrameSink: Send {
    /// Delivers one event. Returns `false` if the receiving executor is
    /// gone (the transport may then drop further traffic for it).
    fn deliver(&mut self, event: NetEvent) -> bool;

    /// Clones the sink for another transport thread.
    fn box_clone(&self) -> Box<dyn FrameSink>;
}

impl Clone for Box<dyn FrameSink> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// One node's handle onto the interconnect.
///
/// The executor translates the sans-IO [`brisa_simnet::Command`]s a
/// protocol emits into calls on this trait; implementations own whatever
/// sockets, queues and helper threads the medium needs.
pub trait Transport: Send {
    /// Sends an encoded frame to `to`. Delivery is best-effort and FIFO per
    /// destination; sending to a dead peer silently drops the frame
    /// (exactly what a broken TCP connection does — loss surfaces through
    /// [`NetEvent::LinkDown`] on monitored connections instead).
    fn send(&mut self, to: NodeId, frame: Vec<u8>);

    /// Declares failure-detection interest in `peer`: if the peer dies, a
    /// [`NetEvent::LinkDown`] must eventually reach this node's sink.
    fn open_connection(&mut self, peer: NodeId);

    /// Withdraws failure-detection interest in `peer`.
    fn close_connection(&mut self, peer: NodeId);

    /// Tears the transport down: closes sockets/queues and wakes helper
    /// threads. Called by the executor when its node stops; peers with an
    /// open connection to this node observe a link-down.
    fn shutdown(&mut self);
}
