//! The per-node executor: one thread driving a sans-IO [`Protocol`] in
//! wall-clock time.
//!
//! The executor owns the protocol state, its deterministic RNG and a
//! real-time timer queue, and loops on a single MPSC channel carrying
//! inbound transport events and control messages. Every callback runs with
//! a [`Context`] built through [`Context::external`]; the commands the
//! protocol emits are drained afterwards and translated:
//!
//! * `Send` → encode through [`WireCodec`] and hand to the [`Transport`];
//! * `SetTimer` → push `(Instant::now() + delay, seq, tag)` onto the timer
//!   heap — the same [`TimerTag`] discipline as the simulator, with
//!   insertion order breaking ties so same-instant timers fire in the
//!   order they were set;
//! * `OpenConnection` / `CloseConnection` → transport failure-detection
//!   registration.
//!
//! Time: the node reports [`Context::now`] as microseconds of wall clock
//! since the cluster's shared epoch, so `SimTime`-stamped telemetry
//! (first-delivery records, repair delays) is directly comparable between
//! a simulated run and a live one.

use crate::transport::{FrameSink, NetEvent, Transport};
use crate::wire::WireCodec;
use brisa_simnet::{Command, Context, NodeId, Protocol, SimTime, TimerTag};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the executor parks when no timer is pending.
const IDLE_PARK: Duration = Duration::from_millis(100);

/// A monotonic wall clock shared by every node of a cluster; `now()` is the
/// live counterpart of the simulator's global clock.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// Microseconds of wall time since the epoch, as the simulator's time
    /// type.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// The wall-clock [`Instant`] corresponding to cluster time `t` — the
    /// inverse of [`WallClock::now`]. Lets schedules expressed in the
    /// simulator's time type (partition heal instants, chaos events) be
    /// replayed against real deadlines.
    pub fn instant_at(&self, t: SimTime) -> Instant {
        self.epoch + Duration::from_micros(t.as_micros())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Byte/frame counters one executor accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuntimeStats {
    /// Frames decoded and dispatched to `on_message`.
    pub frames_in: u64,
    /// Bytes of those frames (length prefix included).
    pub bytes_in: u64,
    /// Frames encoded and handed to the transport.
    pub frames_out: u64,
    /// Bytes of those frames.
    pub bytes_out: u64,
    /// Frames that failed to decode (dropped; a live system would count
    /// and alert on these).
    pub decode_errors: u64,
    /// Timer callbacks fired.
    pub timers_fired: u64,
}

/// A boxed protocol callback queued through [`NodeRuntime::invoke`].
pub type InvokeFn<P> = Box<dyn FnOnce(&mut P, &mut Context<'_, <P as Protocol>::Message>) + Send>;

/// Control/data messages consumed by an executor thread.
pub enum RuntimeMsg<P: Protocol> {
    /// An inbound transport event.
    Net(NetEvent),
    /// Run a closure against the protocol (publish, snapshot a report...).
    /// Commands it issues through the context are executed normally.
    Invoke(InvokeFn<P>),
    /// Stop the node: tear down the transport and return the protocol
    /// state to [`NodeRuntime::join`].
    Stop,
}

/// The transport-facing adapter over an executor's channel. Hides the
/// protocol type parameter behind [`FrameSink`].
pub struct NetSender<P: Protocol> {
    tx: mpsc::Sender<RuntimeMsg<P>>,
}

impl<P: Protocol + 'static> FrameSink for NetSender<P> {
    fn deliver(&mut self, event: NetEvent) -> bool {
        self.tx.send(RuntimeMsg::Net(event)).is_ok()
    }

    fn box_clone(&self) -> Box<dyn FrameSink> {
        Box::new(NetSender {
            tx: self.tx.clone(),
        })
    }
}

/// A pending wall-clock timer. Ordered by `(deadline, insertion seq)` so
/// ties fire in insertion order, exactly like the simulator's event queue.
#[derive(PartialEq, Eq)]
struct TimerEntry {
    at: Instant,
    seq: u64,
    tag: TimerTag,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A running node: the executor thread plus its control channel.
pub struct NodeRuntime<P: Protocol> {
    id: NodeId,
    tx: mpsc::Sender<RuntimeMsg<P>>,
    handle: JoinHandle<(P, RuntimeStats)>,
}

impl<P> NodeRuntime<P>
where
    P: Protocol + Send + 'static,
    P::Message: WireCodec,
{
    /// Spawns the executor thread for `proto`.
    ///
    /// `rx` must be the receiving end of the channel whose senders were
    /// handed to the transport (via [`NodeRuntime::channel`]); `seed`
    /// derives the node's deterministic RNG exactly like the simulator
    /// derives per-node streams.
    pub fn spawn(
        id: NodeId,
        proto: P,
        seed: u64,
        clock: WallClock,
        transport: Box<dyn Transport>,
        tx: mpsc::Sender<RuntimeMsg<P>>,
        rx: mpsc::Receiver<RuntimeMsg<P>>,
    ) -> Self {
        let handle = std::thread::Builder::new()
            .name(format!("brisa-node-{}", id.0))
            .spawn(move || executor_main(id, proto, seed, clock, transport, rx))
            .expect("spawn node thread");
        NodeRuntime { id, tx, handle }
    }

    /// Creates the executor channel: the receiver goes to
    /// [`NodeRuntime::spawn`], the [`FrameSink`] to the transport.
    #[allow(clippy::type_complexity)]
    pub fn channel() -> (
        mpsc::Sender<RuntimeMsg<P>>,
        mpsc::Receiver<RuntimeMsg<P>>,
        Box<dyn FrameSink>,
    ) {
        let (tx, rx) = mpsc::channel();
        let sink = Box::new(NetSender { tx: tx.clone() });
        (tx, rx, sink)
    }

    /// The node this runtime executes.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Queues a closure to run against the protocol on its own thread.
    pub fn invoke(&self, f: impl FnOnce(&mut P, &mut Context<'_, P::Message>) + Send + 'static) {
        let _ = self.tx.send(RuntimeMsg::Invoke(Box::new(f)));
    }

    /// Asks the node to stop (asynchronously; use [`NodeRuntime::join`]).
    pub fn stop(&self) {
        let _ = self.tx.send(RuntimeMsg::Stop);
    }

    /// Waits for the executor to exit and returns the final protocol state
    /// and transfer counters.
    pub fn join(self) -> (P, RuntimeStats) {
        self.handle.join().expect("node thread panicked")
    }
}

fn executor_main<P>(
    id: NodeId,
    mut proto: P,
    seed: u64,
    clock: WallClock,
    mut transport: Box<dyn Transport>,
    rx: mpsc::Receiver<RuntimeMsg<P>>,
) -> (P, RuntimeStats)
where
    P: Protocol,
    P::Message: WireCodec,
{
    let mut rng = SmallRng::seed_from_u64(brisa_simnet::seed::split_mix64(seed, id.0 as u64));
    let mut stats = RuntimeStats::default();
    let mut timers: BinaryHeap<Reverse<TimerEntry>> = BinaryHeap::new();
    let mut timer_seq = 0u64;
    let mut commands: Vec<Command<P::Message>> = Vec::new();

    // One protocol callback + command drain.
    macro_rules! dispatch {
        ($f:expr) => {{
            let mut ctx = Context::external(clock.now(), id, &mut rng, &mut commands);
            #[allow(clippy::redundant_closure_call)]
            ($f)(&mut proto, &mut ctx);
            for cmd in commands.drain(..) {
                match cmd {
                    Command::Send { to, msg } => {
                        let frame = msg.encode();
                        stats.frames_out += 1;
                        stats.bytes_out += frame.len() as u64;
                        transport.send(to, frame);
                    }
                    Command::SetTimer { delay, tag } => {
                        timers.push(Reverse(TimerEntry {
                            at: Instant::now() + Duration::from_micros(delay.as_micros()),
                            seq: timer_seq,
                            tag,
                        }));
                        timer_seq += 1;
                    }
                    Command::OpenConnection { peer } => transport.open_connection(peer),
                    Command::CloseConnection { peer } => transport.close_connection(peer),
                }
            }
        }};
    }

    dispatch!(|p: &mut P, ctx: &mut Context<'_, P::Message>| p.on_start(ctx));

    loop {
        // Fire every due timer before blocking again.
        loop {
            let due = matches!(timers.peek(), Some(Reverse(e)) if e.at <= Instant::now());
            if !due {
                break;
            }
            let Reverse(entry) = timers.pop().expect("peeked entry");
            stats.timers_fired += 1;
            let tag = entry.tag;
            dispatch!(|p: &mut P, ctx: &mut Context<'_, P::Message>| p.on_timer(ctx, tag));
        }
        let timeout = timers
            .peek()
            .map(|Reverse(e)| e.at.saturating_duration_since(Instant::now()))
            .unwrap_or(IDLE_PARK);
        match rx.recv_timeout(timeout) {
            Ok(RuntimeMsg::Net(NetEvent::Frame { from, frame })) => {
                match P::Message::decode(&frame) {
                    Ok(msg) => {
                        stats.frames_in += 1;
                        stats.bytes_in += frame.len() as u64;
                        dispatch!(|p: &mut P, ctx: &mut Context<'_, P::Message>| {
                            p.on_message(ctx, from, msg)
                        });
                    }
                    Err(_) => stats.decode_errors += 1,
                }
            }
            Ok(RuntimeMsg::Net(NetEvent::LinkDown { peer })) => {
                dispatch!(|p: &mut P, ctx: &mut Context<'_, P::Message>| p.on_link_down(ctx, peer));
            }
            Ok(RuntimeMsg::Invoke(f)) => dispatch!(f),
            Ok(RuntimeMsg::Stop) | Err(mpsc::RecvTimeoutError::Disconnected) => break,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
        }
    }
    transport.shutdown();
    (proto, stats)
}
