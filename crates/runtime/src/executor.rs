//! Live execution of a sans-IO [`Protocol`] in wall-clock time.
//!
//! This module keeps the pieces every live component shares — the
//! cluster-wide [`WallClock`], the per-node [`RuntimeStats`] counters and
//! the [`InvokeFn`] callback type — plus [`NodeRuntime`], a convenience
//! wrapper that runs **one** node on a private single-worker
//! [`ReactorPool`]. Clusters do not use
//! `NodeRuntime`; they share one pool across all their nodes (see
//! [`Cluster`](crate::Cluster)). The wrapper exists for tests and small
//! tools that want a node without a cluster.
//!
//! The execution model itself (callback dispatch, the merged timer heap,
//! command translation to the [`Transport`]) lives in
//! [`reactor`](crate::reactor); the semantics match the simulator's:
//! `SetTimer` deadlines fire in `(deadline, insertion-seq)` order, RNGs
//! derive from `split_mix64(seed, node)`, and [`Context::now`] reports
//! microseconds of wall clock since the shared epoch so `SimTime`-stamped
//! telemetry is directly comparable between a simulated run and a live
//! one.

use crate::config::RuntimeConfig;
use crate::reactor::ReactorPool;
use crate::transport::{FrameSink, Transport};
use crate::wire::WireCodec;
use brisa_simnet::{Context, NodeId, Protocol, SimTime};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// A monotonic wall clock shared by every node of a cluster; `now()` is the
/// live counterpart of the simulator's global clock.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// Microseconds of wall time since the epoch, as the simulator's time
    /// type.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// The wall-clock [`Instant`] corresponding to cluster time `t` — the
    /// inverse of [`WallClock::now`]. Lets schedules expressed in the
    /// simulator's time type (partition heal instants, chaos events) be
    /// replayed against real deadlines.
    pub fn instant_at(&self, t: SimTime) -> Instant {
        self.epoch + Duration::from_micros(t.as_micros())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Byte/frame counters one node accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuntimeStats {
    /// Frames decoded and dispatched to `on_message`.
    pub frames_in: u64,
    /// Bytes of those frames (length prefix included).
    pub bytes_in: u64,
    /// Frames encoded and handed to the transport.
    pub frames_out: u64,
    /// Bytes of those frames.
    pub bytes_out: u64,
    /// Frames that failed to decode (dropped; a live system would count
    /// and alert on these).
    pub decode_errors: u64,
    /// Timer callbacks fired.
    pub timers_fired: u64,
    /// Idle unmonitored outbound links closed by the reap sweep.
    pub links_reaped: u64,
    /// Scheduled backoff re-dials that actually fired for this node's
    /// outbound links.
    pub redials: u64,
}

/// A boxed protocol callback queued through [`NodeRuntime::invoke`] or
/// [`ReactorPool::invoke`](crate::reactor::ReactorPool::invoke).
pub type InvokeFn<P> = Box<dyn FnOnce(&mut P, &mut Context<'_, <P as Protocol>::Message>) + Send>;

/// One live node on its own single-worker reactor.
pub struct NodeRuntime<P: Protocol> {
    id: NodeId,
    pool: ReactorPool<P>,
    reply: Option<mpsc::Receiver<Option<(P, RuntimeStats)>>>,
}

impl<P> NodeRuntime<P>
where
    P: Protocol + Send + 'static,
    P::Message: WireCodec,
{
    /// Starts `proto` as node `id` on a fresh single-worker reactor.
    ///
    /// `attach` receives the node's inbound [`FrameSink`] and must return
    /// the [`Transport`] carrying its traffic (e.g. wire the sink into a
    /// mesh and hand back that mesh's transport). `seed` derives the
    /// node's deterministic RNG exactly like the simulator derives
    /// per-node streams.
    pub fn launch(
        id: NodeId,
        proto: P,
        seed: u64,
        clock: WallClock,
        attach: impl FnOnce(&ReactorPool<P>, Box<dyn FrameSink>) -> Box<dyn Transport>,
    ) -> Self {
        let cfg = RuntimeConfig {
            workers: 1,
            ..RuntimeConfig::default()
        };
        let pool = ReactorPool::new(clock, &cfg);
        let transport = attach(&pool, pool.sink_for(id));
        pool.start_node(id, proto, seed, transport);
        NodeRuntime {
            id,
            pool,
            reply: None,
        }
    }

    /// The node this runtime executes.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The underlying pool (for wiring TCP listeners in tests).
    pub fn pool(&self) -> &ReactorPool<P> {
        &self.pool
    }

    /// Queues a closure to run against the protocol on its shard.
    pub fn invoke(&self, f: impl FnOnce(&mut P, &mut Context<'_, P::Message>) + Send + 'static) {
        self.pool.invoke(self.id, f);
    }

    /// Asks the node to stop (asynchronously; use [`NodeRuntime::join`]).
    pub fn stop(&mut self) {
        if self.reply.is_none() {
            self.reply = Some(self.pool.stop_node(self.id));
        }
    }

    /// Stops the node if still running, shuts the reactor down and returns
    /// the final protocol state and transfer counters.
    ///
    /// Panics if the node panicked (poisoning mirrors the old
    /// thread-per-node join semantics for a crashed node).
    pub fn join(mut self) -> (P, RuntimeStats) {
        self.stop();
        let reply = self.reply.take().expect("stop() was just called");
        let state = reply
            .recv_timeout(Duration::from_secs(10))
            .expect("reactor worker unresponsive");
        self.pool.shutdown();
        state.expect("node panicked")
    }
}
