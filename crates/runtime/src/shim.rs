//! The transport fault shim: `simnet::faults` semantics over a real
//! transport.
//!
//! [`FaultShim`] decorates any [`Transport`] and applies the same three
//! fault families as the simulator's fault layer — per-link Bernoulli
//! loss, uniform per-message jitter, and timed partitions — by drawing
//! from the **same counter-based split-seed PRF**
//! ([`brisa_simnet::FaultPrf`]): for one master seed, the `n`-th fault
//! draw on directed link `from → to` is the same number in a simulated
//! run and a live one, so a `FaultSpec`/`PartitionPhase` schedule means
//! the same thing in both worlds.
//!
//! The routing pipeline mirrors `FaultLayer::route` decision for
//! decision:
//!
//! 1. **Cut dominates.** Traffic crossing an active partition never
//!    consumes loss or jitter draws (so a partition cannot perturb the
//!    draw streams of uncut links). `Drop` cuts discard the frame;
//!    `Delay` cuts hold it and release it at the heal instant.
//! 2. **Loss draw first, then jitter draw**, in the sim's order, so the
//!    two worlds consume identical counter sequences per link.
//! 3. `latency_factor` is a *simulator-only* knob — it scales the
//!    modelled link latency, and a live link's latency is whatever the
//!    real network does — so the shim treats any factor as `1.0`.
//!
//! `Delay`-cut release semantics are **aligned** between the two worlds:
//! a frame sent during the window arrives at `max(send + link latency,
//! heal)`. The sim charges its modelled latency from the send instant
//! with the heal as a floor; the shim releases the frame at the heal
//! instant and the real transport adds its (loopback-scale) transit. A
//! frame sent close enough to the heal that its flight straddles it is
//! unaffected in both worlds.
//!
//! Partitions do **not** tear down connections (same as the sim), but
//! connection *attempts* across an active cut fail after the configured
//! detection delay ([`RuntimeConfig::detection_delay`]) — the live
//! counterpart of the sim's `failure_detection_delay`, pinned equal by
//! default in `config`'s unit tests. The failure is synthesized locally;
//! the attempt never reaches the inner transport, exactly as a SYN lost
//! inside the partition.
//!
//! Per-destination FIFO is preserved across delayed and undelayed
//! frames: once a frame to `d` is scheduled for a future release, every
//! later frame to `d` releases no earlier (the sim's per-link FIFO
//! clocks give the same guarantee).

use crate::config::RuntimeConfig;
use crate::executor::WallClock;
use crate::transport::{FrameSink, NetEvent, Transport};
use brisa_simnet::{FaultPrf, LinkFaults, NodeId, PartitionMode, PartitionSpec};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Counters of everything the shim did to traffic, cluster-wide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShimStats {
    /// Frames passed through untouched.
    pub frames_passed: u64,
    /// Frames dropped by per-link Bernoulli loss.
    pub frames_lost: u64,
    /// Frames dropped by an active `Drop` partition cut.
    pub frames_cut: u64,
    /// Frames held back (jitter or a `Delay` cut) and released later.
    pub frames_delayed: u64,
    /// Link-down events synthesized for connection attempts across an
    /// active cut.
    pub linkdowns_synthesized: u64,
}

#[derive(Default)]
struct StatsCells {
    passed: AtomicU64,
    lost: AtomicU64,
    cut: AtomicU64,
    delayed: AtomicU64,
    linkdowns: AtomicU64,
}

/// The mutable fault profile shared by every node's shim.
struct ShimState {
    link: LinkFaults,
    partitions: Vec<PartitionSpec>,
}

/// Cluster-wide control plane of the fault shim: one instance is shared
/// (cloned) across all nodes, so flipping the profile or installing a
/// partition affects every link at once — the live counterpart of
/// `Network::set_link_faults` / `Network::add_partition`.
#[derive(Clone)]
pub struct ShimControl {
    state: Arc<Mutex<ShimState>>,
    prf: FaultPrf,
    clock: WallClock,
    cfg: RuntimeConfig,
    stats: Arc<StatsCells>,
}

impl ShimControl {
    /// A control plane drawing from `master_seed`'s fault stream, with an
    /// inert profile and default timings. `clock` must be the cluster's
    /// clock — partition windows are expressed in its time base.
    pub fn new(master_seed: u64, clock: WallClock) -> Self {
        Self::with_runtime(master_seed, clock, RuntimeConfig::default())
    }

    /// Like [`ShimControl::new`], with explicit runtime timings (the
    /// cluster passes its own [`RuntimeConfig`] so the shim's synthetic
    /// detection delay matches the transport's real one).
    pub fn with_runtime(master_seed: u64, clock: WallClock, cfg: RuntimeConfig) -> Self {
        ShimControl {
            state: Arc::new(Mutex::new(ShimState {
                link: LinkFaults::default(),
                partitions: Vec::new(),
            })),
            prf: FaultPrf::new(master_seed),
            clock,
            cfg,
            stats: Arc::new(StatsCells::default()),
        }
    }

    /// Replaces the live per-link stochastic profile.
    pub fn set_link_faults(&self, link: LinkFaults) {
        self.state.lock().unwrap().link = link;
    }

    /// Installs an additional timed partition.
    pub fn add_partition(&self, spec: PartitionSpec) {
        self.state.lock().unwrap().partitions.push(spec);
    }

    /// Snapshot of the cluster-wide shim counters.
    pub fn stats(&self) -> ShimStats {
        ShimStats {
            frames_passed: self.stats.passed.load(Ordering::Relaxed),
            frames_lost: self.stats.lost.load(Ordering::Relaxed),
            frames_cut: self.stats.cut.load(Ordering::Relaxed),
            frames_delayed: self.stats.delayed.load(Ordering::Relaxed),
            linkdowns_synthesized: self.stats.linkdowns.load(Ordering::Relaxed),
        }
    }

    /// Wraps `me`'s transport in a fault shim. `sink` must be a clone of
    /// the node's inbound sink — the shim delivers synthesized link-down
    /// events (failed connection attempts across a cut) through it.
    pub fn wrap(
        &self,
        me: NodeId,
        inner: Box<dyn Transport>,
        sink: Box<dyn FrameSink>,
    ) -> FaultShim {
        let inner = Arc::new(Mutex::new(inner));
        let pump = Pump::spawn(me, Arc::clone(&inner), sink);
        FaultShim {
            me,
            ctl: self.clone(),
            counters: HashMap::new(),
            release_floor: HashMap::new(),
            inner,
            pump,
        }
    }
}

/// What the delay pump does when an entry comes due.
enum PumpAction {
    /// Release a held frame to the inner transport.
    Frame { to: NodeId, frame: Vec<u8> },
    /// Deliver a synthesized link-down into the local executor.
    LinkDown { peer: NodeId },
}

struct PumpEntry {
    at: Instant,
    seq: u64,
    action: PumpAction,
}

impl PartialEq for PumpEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for PumpEntry {}
impl Ord for PumpEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl PartialOrd for PumpEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct PumpState {
    heap: BinaryHeap<Reverse<PumpEntry>>,
    seq: u64,
    stopping: bool,
}

/// The per-node delay pump: one thread releasing held frames at their
/// scheduled instants, `(at, seq)`-ordered like the executor's timer heap.
struct Pump {
    shared: Arc<(Mutex<PumpState>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Pump {
    fn spawn(me: NodeId, inner: Arc<Mutex<Box<dyn Transport>>>, sink: Box<dyn FrameSink>) -> Self {
        let shared = Arc::new((
            Mutex::new(PumpState {
                heap: BinaryHeap::new(),
                seq: 0,
                stopping: false,
            }),
            Condvar::new(),
        ));
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("brisa-shim-{}", me.0))
            .spawn(move || pump_main(thread_shared, inner, sink))
            .expect("spawn shim pump thread");
        Pump {
            shared,
            handle: Some(handle),
        }
    }

    fn push(&self, at: Instant, action: PumpAction) {
        let (lock, cv) = &*self.shared;
        let mut st = lock.lock().unwrap();
        let seq = st.seq;
        st.seq += 1;
        st.heap.push(Reverse(PumpEntry { at, seq, action }));
        cv.notify_one();
    }

    fn stop(&mut self) {
        let (lock, cv) = &*self.shared;
        {
            let mut st = lock.lock().unwrap();
            st.stopping = true;
            // Pending entries die with the shim: a killed node's in-flight
            // delayed traffic is gone, like the sim dropping events of a
            // crashed node.
            st.heap.clear();
            cv.notify_one();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn pump_main(
    shared: Arc<(Mutex<PumpState>, Condvar)>,
    inner: Arc<Mutex<Box<dyn Transport>>>,
    mut sink: Box<dyn FrameSink>,
) {
    let (lock, cv) = &*shared;
    let mut st = lock.lock().unwrap();
    loop {
        if st.stopping {
            return;
        }
        let now = Instant::now();
        let due = matches!(st.heap.peek(), Some(Reverse(e)) if e.at <= now);
        if due {
            let Reverse(entry) = st.heap.pop().expect("peeked entry");
            drop(st);
            match entry.action {
                PumpAction::Frame { to, frame } => inner.lock().unwrap().send(to, frame),
                PumpAction::LinkDown { peer } => {
                    sink.deliver(NetEvent::LinkDown { peer });
                }
            }
            st = lock.lock().unwrap();
            continue;
        }
        st = match st.heap.peek() {
            Some(Reverse(e)) => {
                let wait = e.at.saturating_duration_since(now);
                cv.wait_timeout(st, wait).unwrap().0
            }
            None => cv.wait(st).unwrap(),
        };
    }
}

/// One node's fault-injecting view of the interconnect (see the module
/// docs for the exact semantics). Created through [`ShimControl::wrap`].
pub struct FaultShim {
    me: NodeId,
    ctl: ShimControl,
    /// Per-destination fault-draw counters for links `me → to`; together
    /// the per-node maps partition the sim's per-link counter table.
    counters: HashMap<u32, u64>,
    /// Per-destination FIFO floor: the latest scheduled release among
    /// frames still held for that destination.
    release_floor: HashMap<u32, Instant>,
    inner: Arc<Mutex<Box<dyn Transport>>>,
    pump: Pump,
}

impl FaultShim {
    /// The next uniform draw in `[0, 1)` on link `me → to` — same PRF,
    /// same counter discipline as `FaultLayer::unit_draw`.
    fn unit_draw(&mut self, to: NodeId) -> f64 {
        let n = self.counters.entry(to.0).or_insert(0);
        *n += 1;
        self.ctl.prf.unit_draw(self.me, to, *n)
    }

    /// Schedules `frame` for release at `at` (or the destination's FIFO
    /// floor, whichever is later) and advances the floor.
    fn hold(&mut self, to: NodeId, frame: Vec<u8>, at: Instant) {
        let at = match self.release_floor.get(&to.0) {
            Some(&floor) => at.max(floor),
            None => at,
        };
        self.release_floor.insert(to.0, at);
        self.ctl.stats.delayed.fetch_add(1, Ordering::Relaxed);
        self.pump.push(at, PumpAction::Frame { to, frame });
    }
}

impl Transport for FaultShim {
    fn send(&mut self, to: NodeId, frame: Vec<u8>) {
        let now = self.ctl.clock.now();
        // Read the profile under the lock, act outside it. Expired
        // partitions are retired time-driven, like the sim layer.
        let (link, cut) = {
            let mut st = self.ctl.state.lock().unwrap();
            if st.partitions.iter().any(|p| now >= p.end) {
                st.partitions.retain(|p| now < p.end);
            }
            let cut = st
                .partitions
                .iter()
                .find(|p| p.cuts(now, self.me, to))
                .map(|p| (p.mode, p.end));
            (st.link.clone(), cut)
        };
        // A cut dominates the stochastic profile: partitioned traffic
        // never consumes loss or jitter draws.
        if let Some((mode, heal)) = cut {
            match mode {
                PartitionMode::Drop => {
                    self.ctl.stats.cut.fetch_add(1, Ordering::Relaxed);
                }
                PartitionMode::Delay => {
                    let at = self.ctl.clock.instant_at(heal);
                    self.hold(to, frame, at);
                }
            }
            return;
        }
        let mut extra = Duration::ZERO;
        if !link.is_inert() {
            if link.loss_rate > 0.0 && self.unit_draw(to) < link.loss_rate {
                self.ctl.stats.lost.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // `latency_factor` scales the *modelled* latency and has no
            // live counterpart; only jitter adds real delay here.
            if !link.jitter.is_zero() {
                let micros = link.jitter.as_micros() as f64 * self.unit_draw(to);
                extra = Duration::from_micros(micros.round() as u64);
            }
        }
        let now_i = Instant::now();
        let floor_blocks = matches!(self.release_floor.get(&to.0), Some(&f) if f > now_i);
        if extra.is_zero() && !floor_blocks {
            self.ctl.stats.passed.fetch_add(1, Ordering::Relaxed);
            self.inner.lock().unwrap().send(to, frame);
        } else {
            self.hold(to, frame, now_i + extra);
        }
    }

    fn open_connection(&mut self, peer: NodeId) {
        let now = self.ctl.clock.now();
        let cut = {
            let st = self.ctl.state.lock().unwrap();
            st.partitions.iter().any(|p| p.cuts(now, self.me, peer))
        };
        if cut {
            // A connection attempt across an active cut fails after the
            // detection delay and never reaches the wire, like the sim's
            // treatment of connecting to an unreachable peer.
            self.ctl.stats.linkdowns.fetch_add(1, Ordering::Relaxed);
            self.pump.push(
                Instant::now() + self.ctl.cfg.detection_delay,
                PumpAction::LinkDown { peer },
            );
        } else {
            self.inner.lock().unwrap().open_connection(peer);
        }
    }

    fn close_connection(&mut self, peer: NodeId) {
        self.inner.lock().unwrap().close_connection(peer);
    }

    fn shutdown(&mut self) {
        self.pump.stop();
        self.inner.lock().unwrap().shutdown();
    }
}

impl Drop for FaultShim {
    fn drop(&mut self) {
        if self.pump.handle.is_some() {
            self.pump.stop();
        }
    }
}

/// Extends [`SimDuration`]-based jitter bounds checking in tests.
#[cfg(test)]
mod tests {
    use super::*;
    use brisa_simnet::SimDuration;
    use std::sync::mpsc;

    struct RecordingTransport {
        tx: mpsc::Sender<(NodeId, Vec<u8>, Instant)>,
        opened: mpsc::Sender<NodeId>,
    }

    impl Transport for RecordingTransport {
        fn send(&mut self, to: NodeId, frame: Vec<u8>) {
            let _ = self.tx.send((to, frame, Instant::now()));
        }
        fn open_connection(&mut self, peer: NodeId) {
            let _ = self.opened.send(peer);
        }
        fn close_connection(&mut self, _peer: NodeId) {}
        fn shutdown(&mut self) {}
    }

    struct TestSink(mpsc::Sender<NetEvent>);
    impl FrameSink for TestSink {
        fn deliver(&mut self, event: NetEvent) -> bool {
            self.0.send(event).is_ok()
        }
        fn box_clone(&self) -> Box<dyn FrameSink> {
            Box::new(TestSink(self.0.clone()))
        }
    }

    #[allow(clippy::type_complexity)]
    fn shim_under_test(
        ctl: &ShimControl,
        me: NodeId,
    ) -> (
        FaultShim,
        mpsc::Receiver<(NodeId, Vec<u8>, Instant)>,
        mpsc::Receiver<NodeId>,
        mpsc::Receiver<NetEvent>,
    ) {
        let (tx, rx) = mpsc::channel();
        let (otx, orx) = mpsc::channel();
        let (stx, srx) = mpsc::channel();
        let inner = Box::new(RecordingTransport { tx, opened: otx });
        let shim = ctl.wrap(me, inner, Box::new(TestSink(stx)));
        (shim, rx, orx, srx)
    }

    #[test]
    fn inert_profile_passes_everything_through() {
        let ctl = ShimControl::new(7, WallClock::new());
        let (mut shim, rx, _orx, _srx) = shim_under_test(&ctl, NodeId(0));
        for i in 0..50u8 {
            shim.send(NodeId(1), vec![i]);
        }
        for i in 0..50u8 {
            let (to, frame, _) = rx.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(to, NodeId(1));
            assert_eq!(frame, vec![i]);
        }
        let stats = ctl.stats();
        assert_eq!(stats.frames_passed, 50);
        assert_eq!(
            stats.frames_lost + stats.frames_cut + stats.frames_delayed,
            0
        );
        shim.shutdown();
    }

    #[test]
    fn loss_decisions_match_the_sim_prf() {
        // The shim must drop exactly the transmissions the sim's fault
        // layer would: replay the PRF by hand and compare per-frame fate.
        let seed = 0xB215A;
        let loss = LinkFaults {
            loss_rate: 0.25,
            ..Default::default()
        };
        let ctl = ShimControl::new(seed, WallClock::new());
        ctl.set_link_faults(loss.clone());
        let (mut shim, rx, _orx, _srx) = shim_under_test(&ctl, NodeId(0));
        let total = 400u64;
        for i in 0..total {
            shim.send(NodeId(1), i.to_le_bytes().to_vec());
        }
        shim.shutdown();
        let mut arrived = Vec::new();
        while let Ok((_, frame, _)) = rx.try_recv() {
            arrived.push(u64::from_le_bytes(frame.try_into().unwrap()));
        }
        let prf = FaultPrf::new(seed);
        let expected: Vec<u64> = (0..total)
            .filter(|i| prf.unit_draw(NodeId(0), NodeId(1), i + 1) >= loss.loss_rate)
            .collect();
        assert_eq!(arrived, expected, "live loss fate must equal sim fate");
        assert_eq!(ctl.stats().frames_lost, total - expected.len() as u64);
    }

    #[test]
    fn drop_partition_cuts_and_heals() {
        let clock = WallClock::new();
        let ctl = ShimControl::new(3, clock);
        let start = clock.now();
        ctl.add_partition(PartitionSpec::new(
            vec![NodeId(1)],
            start,
            start + SimDuration::from_millis(80),
            PartitionMode::Drop,
        ));
        let (mut shim, rx, _orx, _srx) = shim_under_test(&ctl, NodeId(0));
        shim.send(NodeId(1), vec![1]); // cross-cut: dropped
        shim.send(NodeId(2), vec![2]); // same side: passes
        let (to, _, _) = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(to, NodeId(2));
        std::thread::sleep(Duration::from_millis(100));
        shim.send(NodeId(1), vec![3]); // healed: passes
        let (to, frame, _) = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!((to, frame), (NodeId(1), vec![3]));
        assert_eq!(ctl.stats().frames_cut, 1);
        shim.shutdown();
    }

    #[test]
    fn delay_partition_releases_at_heal_in_order() {
        let clock = WallClock::new();
        let ctl = ShimControl::new(3, clock);
        let start = clock.now();
        let heal = start + SimDuration::from_millis(120);
        ctl.add_partition(PartitionSpec::new(
            vec![NodeId(1)],
            start,
            heal,
            PartitionMode::Delay,
        ));
        let (mut shim, rx, _orx, _srx) = shim_under_test(&ctl, NodeId(0));
        let held_at = Instant::now();
        shim.send(NodeId(1), vec![1]);
        shim.send(NodeId(1), vec![2]);
        let (_, f1, t1) = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        let (_, f2, t2) = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(f1, vec![1]);
        assert_eq!(f2, vec![2]);
        assert!(t2 >= t1, "per-destination FIFO preserved through the hold");
        assert!(
            t1.duration_since(held_at) >= Duration::from_millis(100),
            "released no earlier than the heal instant"
        );
        assert_eq!(ctl.stats().frames_delayed, 2);
        shim.shutdown();
    }

    #[test]
    fn jitter_delays_but_keeps_fifo() {
        let ctl = ShimControl::new(11, WallClock::new());
        ctl.set_link_faults(LinkFaults {
            jitter: SimDuration::from_millis(30),
            ..Default::default()
        });
        let (mut shim, rx, _orx, _srx) = shim_under_test(&ctl, NodeId(0));
        let sent_at = Instant::now();
        for i in 0..20u8 {
            shim.send(NodeId(1), vec![i]);
        }
        let mut releases = Vec::new();
        for _ in 0..20 {
            let (_, frame, at) = rx.recv_timeout(Duration::from_secs(2)).unwrap();
            releases.push((frame[0], at));
        }
        let order: Vec<u8> = releases.iter().map(|(b, _)| *b).collect();
        assert_eq!(order, (0..20).collect::<Vec<u8>>(), "FIFO per destination");
        assert!(releases
            .iter()
            .all(|(_, at)| at.duration_since(sent_at) <= Duration::from_millis(500)));
        shim.shutdown();
    }

    #[test]
    fn open_across_cut_synthesizes_linkdown() {
        let clock = WallClock::new();
        let ctl = ShimControl::new(5, clock);
        let start = clock.now();
        ctl.add_partition(PartitionSpec::new(
            vec![NodeId(1)],
            start,
            start + SimDuration::from_secs(30),
            PartitionMode::Drop,
        ));
        let (mut shim, _rx, orx, srx) = shim_under_test(&ctl, NodeId(0));
        let asked = Instant::now();
        shim.open_connection(NodeId(1)); // cross-cut: fails after delay
        shim.open_connection(NodeId(2)); // same side: forwarded
        assert_eq!(orx.recv_timeout(Duration::from_secs(1)).unwrap(), NodeId(2));
        match srx.recv_timeout(Duration::from_secs(2)).unwrap() {
            NetEvent::LinkDown { peer } => assert_eq!(peer, NodeId(1)),
            other => panic!("expected synthesized link-down, got {other:?}"),
        }
        assert!(
            asked.elapsed() >= RuntimeConfig::default().detection_delay,
            "failure surfaces only after the configured detection delay"
        );
        assert!(
            orx.try_recv().is_err(),
            "cut attempt never reaches the wire"
        );
        assert_eq!(ctl.stats().linkdowns_synthesized, 1);
        shim.shutdown();
    }
}
