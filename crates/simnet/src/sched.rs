//! Event schedulers: the timing-wheel hot path and the binary-heap reference.
//!
//! The simulator totally orders events by `(time, prio, seq)`: an explicit
//! 64-bit priority supplied by the caller breaks same-instant ties first,
//! and a monotonically assigned insertion counter resolves anything the
//! priority leaves equal. The network layer derives the priority from the
//! event's *cause* (the lane key: causing node × per-node cause counter),
//! which makes the total order independent of the order pushes happen to
//! arrive in — the property the sharded driver relies on for bit-identical
//! sharded ≡ sequential runs. Callers that do not care (plain `push`) get
//! priority 0 and therefore plain insertion order, as before.
//! Two interchangeable implementations provide that order:
//!
//! * [`TimingWheel`] — a two-level hierarchical timing wheel / calendar
//!   queue: near-future events go into a cache-resident circular array of
//!   fine time buckets (O(1) insertion, amortised O(1) + per-bucket sort
//!   extraction), further events into a coarse second level whose slots are
//!   scattered into the fine wheel on demand, and everything beyond that
//!   into an unsorted far list partitioned lazily. This is the default used
//!   by [`Network`](crate::Network).
//! * [`HeapScheduler`] — the classic `BinaryHeap` priority queue (O(log n)
//!   per operation). Kept as the reference implementation: equivalence tests
//!   drive both in lockstep, and `bench_engine_wallclock` measures the wheel
//!   against it.
//!
//! Both pop entries in exactly the same order for any interleaving of pushes
//! and pops (guarded by unit tests here and a proptest in
//! `tests/integration_properties.rs`).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Selects the scheduler implementation a [`Network`](crate::Network) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The timing-wheel / calendar queue (default, hot path).
    TimingWheel,
    /// The `BinaryHeap` reference implementation (baseline for benches and
    /// equivalence tests).
    BinaryHeap,
}

impl Default for SchedulerKind {
    /// The timing wheel, unless the `BRISA_SCHEDULER` environment variable
    /// selects the heap (`heap` / `binary_heap`). The override exists so an
    /// entire test suite or experiment batch can be re-run on the reference
    /// scheduler without code changes (CI runs one such leg to keep the
    /// legacy path honest); it is read once per process, so a run never
    /// mixes defaults. Code that pins a specific scheduler (equivalence
    /// tests, benches) sets the field explicitly and is unaffected.
    fn default() -> Self {
        static KIND: std::sync::OnceLock<SchedulerKind> = std::sync::OnceLock::new();
        *KIND.get_or_init(|| match std::env::var("BRISA_SCHEDULER").as_deref() {
            Ok("heap") | Ok("binary_heap") | Ok("binary-heap") | Ok("BinaryHeap") => {
                SchedulerKind::BinaryHeap
            }
            _ => SchedulerKind::TimingWheel,
        })
    }
}

/// A scheduled entry: the payload plus its total-order key
/// `(time, prio, seq)`.
#[derive(Debug, Clone)]
pub struct Entry<T> {
    /// Absolute scheduled time.
    pub time: SimTime,
    /// Caller-supplied priority (first tie-breaker within one instant;
    /// 0 for plain pushes).
    pub prio: u64,
    /// Insertion sequence number (final tie-breaker).
    pub seq: u64,
    /// The scheduled payload.
    pub item: T,
}

/// One recorded scheduler operation (see
/// [`NetworkConfig::trace_events`](crate::NetworkConfig::trace_events)):
/// benches replay real workload traces through both scheduler
/// implementations to measure them in isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// An event was scheduled at the given absolute time.
    Push(SimTime),
    /// The earliest pending event was popped.
    Pop,
}

/// Simulated microseconds covered by one near-wheel bucket
/// (`1 << L0_BITS` = 64 µs). Narrower than the minimum link latency, so a
/// message send essentially never targets the bucket already staged for
/// popping (which would cost a sorted insert instead of an O(1) append).
const L0_BITS: u32 = 6;
/// Mask selecting the in-bucket (sub-bucket) bits of a time in microseconds.
const L0_TIME_MASK: u64 = (1 << L0_BITS) - 1;
/// Buckets on the near wheel: 512 × 64 µs ≈ 32.8 ms horizon. Small enough
/// that the whole level (headers + occupancy) stays cache-resident.
const L0_SLOTS: usize = 512;
const L0_MASK: u64 = L0_SLOTS as u64 - 1;
/// Simulated microseconds covered by one coarse-level slot
/// (`1 << L1_BITS` = one full near-wheel rotation, ~32.8 ms).
const L1_BITS: u32 = L0_BITS + 9;
/// Slots on the coarse level: 512 × ~32.8 ms ≈ 16.8 s horizon.
const L1_SLOTS: usize = 512;
const L1_MASK: u64 = L1_SLOTS as u64 - 1;

/// Biased level-0 bucket index of `time`: the raw index
/// `micros >> L0_BITS`, plus one. The bias keeps absolute index 0 free to
/// act as the initial "before every bucket" cursor sentinel, so events at
/// `t = 0` still land in a real bucket (an unbiased wheel would treat
/// bucket 0 as already drained and degrade every `t = 0` push into a
/// sorted insert on the ready list — O(n^2) for a same-instant burst).
fn b0_of(time: SimTime) -> u64 {
    (time.as_micros() >> L0_BITS) + 1
}

/// Biased level-1 slot index of `time` (same +1 bias as [`b0_of`]).
fn b1_of(time: SimTime) -> u64 {
    (time.as_micros() >> L1_BITS) + 1
}

/// A two-level hierarchical timing wheel with an unsorted far-future list.
///
/// * **Level 0** — 512 buckets of 64 µs (~32.8 ms horizon). Events are
///   appended unsorted to their bucket; a bucket is sorted by `(time, seq)`
///   only when the cursor reaches it, then *swapped* wholesale into the
///   ready list (no per-entry moves).
/// * **Level 1** — 512 slots of one full level-0 rotation each (~16.8 s
///   horizon). When level 0 runs dry, the next occupied coarse slot is
///   scattered into level-0 buckets; each event therefore moves O(1) times
///   regardless of how far ahead it was scheduled.
/// * **Far list** — events beyond the level-1 horizon sit in one unsorted
///   vector, partitioned into level 1 only when both wheels are empty
///   (contiguous scans; in simulation workloads this level is nearly always
///   empty).
///
/// Per-level occupancy bitmaps (one bit per bucket) let the cursors skip
/// empty stretches 64 buckets at a time, and all storage is pooled — bucket
/// vectors retain their capacity across drains, so steady-state operation
/// does not allocate per event.
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// Boxed fixed-size arrays (not `Vec`s) so that mask-derived indices
    /// are provably in bounds — no bounds checks on the push fast path.
    l0: Box<[Vec<Entry<T>>; L0_SLOTS]>,
    occ0: [u64; L0_SLOTS / 64],
    /// Absolute level-0 bucket index currently drained into `ready`. All
    /// level-0 buckets at or below the cursor are empty.
    cursor: u64,
    /// Absolute level-0 bucket bound of the near window: level 0 holds
    /// exactly the buckets in `(cursor, window0_end)`.
    window0_end: u64,
    l1: Box<[Vec<Entry<T>>; L1_SLOTS]>,
    occ1: [u64; L1_SLOTS / 64],
    /// Absolute level-1 slot index of the last slot scattered into level 0.
    cursor1: u64,
    /// Absolute level-1 slot bound: level 1 holds slots in
    /// `(cursor1, window1_end)`; later events sit in `far`.
    window1_end: u64,
    /// Events of the cursor bucket, sorted *descending* by `(time, seq)` so
    /// the earliest entry pops from the back in O(1).
    ready: Vec<Entry<T>>,
    /// Unsorted events beyond the level-1 horizon.
    far: Vec<Entry<T>>,
    /// Reused scratch for staging sorts. Every entry of one level-0 bucket
    /// shares `time >> L0_BITS`, so
    /// `(low 6 time bits << 96) | (prio << 32) | index` packs the whole
    /// comparison into one u128: sorting these keys and gathering entries
    /// once is much cheaper than swapping full entries.
    sort_keys: Vec<u128>,
    next_seq: u64,
    len: usize,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        TimingWheel {
            l0: empty_buckets::<T, L0_SLOTS>(),
            occ0: [0u64; L0_SLOTS / 64],
            cursor: 0,
            window0_end: L0_SLOTS as u64 + 1,
            l1: empty_buckets::<T, L1_SLOTS>(),
            occ1: [0u64; L1_SLOTS / 64],
            cursor1: 0,
            window1_end: L1_SLOTS as u64 + 1,
            ready: Vec::new(),
            far: Vec::new(),
            sort_keys: Vec::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Schedules `item` at absolute time `time` with priority 0 (plain
    /// insertion order within an instant).
    pub fn push(&mut self, time: SimTime, item: T) {
        self.push_prio(time, 0, item);
    }

    /// Schedules `item` at absolute time `time` with an explicit priority:
    /// same-instant entries pop in ascending `(prio, seq)` order.
    pub fn push_prio(&mut self, time: SimTime, prio: u64, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let b0 = b0_of(time);
        if b0 > self.cursor {
            if b0 < self.window0_end {
                let slot = (b0 & L0_MASK) as usize;
                self.l0[slot].push(Entry {
                    time,
                    prio,
                    seq,
                    item,
                });
                self.occ0[slot >> 6] |= 1 << (slot & 63);
            } else {
                let b1 = b1_of(time);
                if b1 < self.window1_end {
                    let slot = (b1 & L1_MASK) as usize;
                    self.l1[slot].push(Entry {
                        time,
                        prio,
                        seq,
                        item,
                    });
                    self.occ1[slot >> 6] |= 1 << (slot & 63);
                } else {
                    self.far.push(Entry {
                        time,
                        prio,
                        seq,
                        item,
                    });
                }
            }
        } else {
            // The instant is at or before the staged cursor bucket, so its
            // place is inside `ready` (stored descending, popped from the
            // back). `seq` exceeds every pending sequence number, so the
            // slot is found by `(time, prio)` alone: entries with a
            // strictly greater `(time, prio)` stay in front, and pending
            // entries equal on both pop first (smaller seq).
            let pos = self
                .ready
                .partition_point(|e| (e.time, e.prio) > (time, prio));
            self.ready.insert(
                pos,
                Entry {
                    time,
                    prio,
                    seq,
                    item,
                },
            );
        }
    }

    /// Removes and returns the earliest entry, if any.
    pub fn pop(&mut self) -> Option<Entry<T>> {
        if self.ready.is_empty() {
            self.advance()?;
        }
        let e = self.ready.pop()?;
        self.len -= 1;
        Some(e)
    }

    /// Time of the earliest pending entry.
    ///
    /// Read-only by design: a peek must never advance the cursor. The
    /// simulation loop peeks one event past every deadline, and if that
    /// peek staged a far-future bucket, everything the harness injects at
    /// the deadline would land "before" the cursor and degrade the wheel
    /// into a sorted-insert list. Instead, when nothing is staged, the next
    /// event's time is computed by scanning the first occupied bucket of
    /// the first non-empty level — O(bucket) work, amortised once per
    /// bucket transition.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.ready.last() {
            return Some(e.time);
        }
        if self.len == 0 {
            return None;
        }
        // Earlier levels always hold strictly earlier events than later
        // ones, so the minimum of the first non-empty level is global.
        if let Some(b0) = next_occupied::<{ L0_SLOTS / 64 }>(&self.occ0, self.cursor, L0_MASK) {
            let slot = (b0 & L0_MASK) as usize;
            return self.l0[slot].iter().map(|e| e.time).min();
        }
        if let Some(b1) = next_occupied::<{ L1_SLOTS / 64 }>(&self.occ1, self.cursor1, L1_MASK) {
            let slot = (b1 & L1_MASK) as usize;
            return self.l1[slot].iter().map(|e| e.time).min();
        }
        self.far.iter().map(|e| e.time).min()
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Advances the cursor to the next non-empty level-0 bucket — refilling
    /// level 0 from level 1, and level 1 from the far list, as needed — and
    /// stages that bucket into `ready` (descending `(time, seq)`). Returns
    /// `None` if the scheduler is empty.
    fn advance(&mut self) -> Option<()> {
        debug_assert!(self.ready.is_empty());
        if self.len == 0 {
            return None;
        }
        loop {
            // Fast path: an occupied near-wheel bucket.
            if let Some(b0) = next_occupied::<{ L0_SLOTS / 64 }>(&self.occ0, self.cursor, L0_MASK) {
                let slot = (b0 & L0_MASK) as usize;
                self.occ0[slot >> 6] &= !(1 << (slot & 63));
                self.cursor = b0;
                let bucket = &mut self.l0[slot];
                if bucket.len() > 1 {
                    // Sort packed `(in-bucket time bits, prio, index)` keys
                    // instead of swapping full entries, then gather each
                    // entry into `ready` with exactly one move. In-bucket
                    // index order is push order, i.e. `seq` order, so
                    // ascending (time, prio, index) walked backwards is
                    // exactly the descending (time, prio, seq) the pop path
                    // needs.
                    self.sort_keys.clear();
                    self.sort_keys
                        .extend(bucket.iter().enumerate().map(|(i, e)| {
                            (((e.time.as_micros() & L0_TIME_MASK) as u128) << 96)
                                | ((e.prio as u128) << 32)
                                | i as u128
                        }));
                    self.sort_keys.sort_unstable();
                    self.ready.reserve(bucket.len());
                    // SAFETY: each index in `sort_keys` is a distinct valid
                    // index into `bucket`; every entry is read exactly once,
                    // `reserve` above makes the pushes non-panicking, and
                    // `set_len(0)` forgets the moved-out entries before
                    // anything else can observe them.
                    unsafe {
                        let src = bucket.as_ptr();
                        for &key in self.sort_keys.iter().rev() {
                            self.ready
                                .push(std::ptr::read(src.add((key as u32) as usize)));
                        }
                        bucket.set_len(0);
                    }
                    return Some(());
                }
                // 0/1-entry bucket: swap the vector in directly.
                std::mem::swap(&mut self.ready, bucket);
                return Some(());
            }
            // Level 0 is dry: scatter the next occupied coarse slot into it.
            if let Some(b1) = next_occupied::<{ L1_SLOTS / 64 }>(&self.occ1, self.cursor1, L1_MASK)
            {
                let slot = (b1 & L1_MASK) as usize;
                self.occ1[slot >> 6] &= !(1 << (slot & 63));
                self.cursor1 = b1;
                // Biased slot `b1` covers raw level-0 indices
                // `[(b1-1) << 9, (b1-1) << 9 + 512)`, i.e. biased indices
                // one higher; the cursor is the sentinel just before them.
                self.cursor = (b1 - 1) << (L1_BITS - L0_BITS);
                self.window0_end = self.cursor + L0_SLOTS as u64 + 1;
                let mut batch = std::mem::take(&mut self.l1[slot]);
                for e in batch.drain(..) {
                    let s0 = (b0_of(e.time) & L0_MASK) as usize;
                    self.l0[s0].push(e);
                    self.occ0[s0 >> 6] |= 1 << (s0 & 63);
                }
                self.l1[slot] = batch; // hand the emptied allocation back
                continue;
            }
            // Both wheels are dry: jump the coarse window to the earliest
            // far event and partition the far list into level 1.
            if self.far.is_empty() {
                return None;
            }
            let min_b1 = self
                .far
                .iter()
                .map(|e| b1_of(e.time))
                .min()
                .expect("checked non-empty");
            self.cursor1 = min_b1 - 1;
            self.window1_end = min_b1 + L1_SLOTS as u64;
            // Order-preserving partition (`extract_if`, not `swap_remove`):
            // the far list is in push order, and in-bucket index order *is*
            // the seq tie-breaker once entries reach a level-0 sort, so
            // same-time entries must stream into level 1 in their original
            // relative order.
            let window1_end = self.window1_end;
            for e in self.far.extract_if(.., |e| b1_of(e.time) < window1_end) {
                let s1 = (b1_of(e.time) & L1_MASK) as usize;
                self.l1[s1].push(e);
                self.occ1[s1 >> 6] |= 1 << (s1 & 63);
            }
        }
    }
}

/// A boxed array of `N` empty bucket vectors.
fn empty_buckets<T, const N: usize>() -> Box<[Vec<Entry<T>>; N]> {
    let v: Vec<Vec<Entry<T>>> = std::iter::repeat_with(Vec::new).take(N).collect();
    match v.try_into() {
        Ok(boxed) => boxed,
        Err(_) => unreachable!("length N by construction"),
    }
}

/// Absolute index of the nearest occupied bucket after `cursor`, found by
/// scanning a `WORDS * 64`-bit occupancy bitmap (wrapping once around the
/// wheel). Occupied buckets always lie within `(cursor, cursor + slots]`
/// (the upper bound is reached only transiently, right after a window
/// jump, when the cursor is a sentinel one bucket before the window), so
/// the wrapped scan includes the cursor's own slot and every relative
/// position maps back to an absolute index unambiguously.
fn next_occupied<const WORDS: usize>(occ: &[u64; WORDS], cursor: u64, mask: u64) -> Option<u64> {
    let slots = WORDS * 64;
    let rel = (cursor & mask) as usize;
    let base = cursor - rel as u64;
    if let Some(r) = scan_bitmap(occ, rel + 1, slots) {
        return Some(base + r as u64);
    }
    scan_bitmap(occ, 0, rel + 1).map(|r| base + slots as u64 + r as u64)
}

/// First set bit in `[from, to)` of the bitmap, as a bucket slot index.
fn scan_bitmap<const WORDS: usize>(occ: &[u64; WORDS], from: usize, to: usize) -> Option<usize> {
    let mut r = from;
    while r < to {
        let word = occ[r >> 6] & (!0u64 << (r & 63));
        if word != 0 {
            let idx = (r & !63) + word.trailing_zeros() as usize;
            // A hit past `to` means the remaining range lies inside this
            // word and holds no set bit.
            return if idx < to { Some(idx) } else { None };
        }
        r = (r & !63) + 64;
    }
    None
}

/// The `BinaryHeap` reference scheduler: the exact structure the simulator
/// used before the timing wheel, kept for equivalence tests and as the
/// baseline of `bench_engine_wallclock`.
#[derive(Debug)]
pub struct HeapScheduler<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_seq: u64,
}

#[derive(Debug)]
struct HeapEntry<T>(Entry<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.prio == other.0.prio && self.0.seq == other.0.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest entry pops first.
        other
            .0
            .time
            .cmp(&self.0.time)
            .then_with(|| other.0.prio.cmp(&self.0.prio))
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

impl<T> Default for HeapScheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> HeapScheduler<T> {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        HeapScheduler {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `item` at absolute time `time` with priority 0.
    pub fn push(&mut self, time: SimTime, item: T) {
        self.push_prio(time, 0, item);
    }

    /// Schedules `item` at absolute time `time` with an explicit priority:
    /// same-instant entries pop in ascending `(prio, seq)` order.
    pub fn push_prio(&mut self, time: SimTime, prio: u64, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Entry {
            time,
            prio,
            seq,
            item,
        }));
    }

    /// Removes and returns the earliest entry, if any.
    pub fn pop(&mut self) -> Option<Entry<T>> {
        self.heap.pop().map(|e| e.0)
    }

    /// Time of the earliest pending entry.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.time)
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_order(wheel: &mut TimingWheel<u32>) -> Vec<(u64, u32)> {
        std::iter::from_fn(|| wheel.pop())
            .map(|e| (e.time.as_micros(), e.item))
            .collect()
    }

    #[test]
    fn pops_in_time_order_across_buckets() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        w.push(SimTime::from_millis(30), 3);
        w.push(SimTime::from_millis(10), 1);
        w.push(SimTime::from_millis(20), 2);
        assert_eq!(
            drain_order(&mut w),
            vec![(10_000, 1), (20_000, 2), (30_000, 3)]
        );
    }

    #[test]
    fn same_time_pops_in_insertion_order() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            w.push(t, i);
        }
        assert_eq!(
            drain_order(&mut w)
                .iter()
                .map(|&(_, i)| i)
                .collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn same_time_priority_beats_insertion_order() {
        // Priority is the first same-instant tie-breaker on every path a
        // push can take: straight into the cursor bucket, into the ready
        // list while the bucket is staged, and via the heap reference.
        let t = SimTime::from_millis(5);
        let mut w: TimingWheel<u32> = TimingWheel::new();
        let mut h: HeapScheduler<u32> = HeapScheduler::new();
        for (i, prio) in [3u64, 1, 2, 1, 0].iter().enumerate() {
            w.push_prio(t, *prio, i as u32);
            h.push_prio(t, *prio, i as u32);
        }
        // (prio, seq) ascending: (0,4) (1,1) (1,3) (2,2) (3,0).
        let expect = vec![4, 1, 3, 2, 0];
        let wheel_order: Vec<u32> = std::iter::from_fn(|| w.pop()).map(|e| e.item).collect();
        let heap_order: Vec<u32> = std::iter::from_fn(|| h.pop()).map(|e| e.item).collect();
        assert_eq!(wheel_order, expect);
        assert_eq!(heap_order, expect);

        // Ready-list insert path: stage the bucket, then push lower- and
        // higher-priority entries at the same instant.
        let mut w: TimingWheel<u32> = TimingWheel::new();
        w.push_prio(t, 5, 0);
        w.push_prio(t, 5, 1);
        assert_eq!(w.pop().unwrap().item, 0); // stages the bucket
        w.push_prio(t, 9, 2); // after the pending prio-5 entry
        w.push_prio(t, 1, 3); // before it
        w.push_prio(t, 5, 4); // same prio: after (higher seq)
        let order: Vec<u32> = std::iter::from_fn(|| w.pop()).map(|e| e.item).collect();
        assert_eq!(order, vec![3, 1, 4, 2]);
    }

    #[test]
    fn far_future_events_go_through_overflow_and_back() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        // 30 s is beyond both wheel levels (~32.8 ms and ~16.8 s) and must
        // take the far-list path; 90 s forces a second far partition.
        w.push(SimTime::from_secs(30), 2);
        w.push(SimTime::from_secs(90), 3);
        w.push(SimTime::from_millis(1), 1);
        assert_eq!(w.len(), 3);
        assert_eq!(
            drain_order(&mut w),
            vec![(1_000, 1), (30_000_000, 2), (90_000_000, 3)]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn same_instant_burst_at_time_zero_is_linear() {
        // Regression: bucket indices are biased by one so that `t = 0`
        // lands in a real bucket (index 1) instead of being treated as
        // already behind the initial cursor. Without the bias, every push
        // here would take a front-of-vector sorted insert into `ready` —
        // O(n^2) entry moves for the burst, which is exactly the shape of
        // an engine bootstrap scheduling every node's start at once.
        let mut w: TimingWheel<u32> = TimingWheel::new();
        const N: u32 = 20_000;
        for i in 0..N {
            w.push(SimTime::ZERO, i);
        }
        w.push(SimTime::from_micros(1), N);
        let order: Vec<u32> = std::iter::from_fn(|| w.pop()).map(|e| e.item).collect();
        assert_eq!(order, (0..=N).collect::<Vec<_>>());
    }

    #[test]
    fn far_list_same_time_entries_keep_insertion_order() {
        // Regression: the far-list partition must preserve the relative
        // order of same-time entries. With a `swap_remove` partition, the
        // layout [30 s, 90 s, 90 s] moves the *last* 90 s entry into the
        // extracted hole, reversing the two and popping seq 2 before seq 1.
        let mut w: TimingWheel<u32> = TimingWheel::new();
        w.push(SimTime::from_secs(30), 0);
        w.push(SimTime::from_secs(90), 1);
        w.push(SimTime::from_secs(90), 2);
        assert_eq!(
            drain_order(&mut w),
            vec![(30_000_000, 0), (90_000_000, 1), (90_000_000, 2)]
        );
    }

    #[test]
    fn interleaved_push_pop_within_current_bucket() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        let t = SimTime::from_micros(100);
        w.push(t, 0);
        w.push(SimTime::from_micros(120), 2);
        assert_eq!(w.pop().unwrap().item, 0);
        // Pushed while the cursor bucket is partially drained: same instant
        // as a pending entry -> must pop after it (insertion order)...
        w.push(SimTime::from_micros(120), 3);
        // ...and an earlier instant within the bucket still pops first.
        w.push(SimTime::from_micros(110), 1);
        let order: Vec<u32> = std::iter::from_fn(|| w.pop()).map(|e| e.item).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn wheel_wraps_around() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        // Walk the cursor far enough to wrap the 4096-slot wheel repeatedly.
        let mut expect = Vec::new();
        for i in 0..200u64 {
            let t = i * 37_003; // ~37 ms apart -> several wraps over 200 events
            w.push(SimTime::from_micros(t), i as u32);
            expect.push((t, i as u32));
        }
        assert_eq!(drain_order(&mut w), expect);
    }

    #[test]
    fn equivalent_to_heap_on_mixed_workload() {
        let mut wheel: TimingWheel<u64> = TimingWheel::new();
        let mut heap: HeapScheduler<u64> = HeapScheduler::new();
        // Deterministic pseudo-random interleaving of pushes and pops with
        // times spanning bucket-local, in-horizon and overflow ranges.
        let mut x = 0xDEADBEEFu64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..5000u64 {
            if step() % 3 == 0 {
                let (a, b) = (
                    wheel.pop().map(|e| (e.time, e.prio, e.seq)),
                    heap.pop().map(|e| (e.time, e.prio, e.seq)),
                );
                assert_eq!(a, b, "divergence at op {i}");
            } else {
                // Coarse times force same-instant collisions so the prio
                // tie-breaker is actually exercised.
                let t = SimTime::from_micros((step() % 500) * 10_000);
                let prio = step() % 7;
                wheel.push_prio(t, prio, i);
                heap.push_prio(t, prio, i);
            }
            assert_eq!(wheel.len(), heap.len());
            assert_eq!(wheel.peek_time(), heap.peek_time());
        }
        loop {
            let (a, b) = (
                wheel.pop().map(|e| (e.time, e.prio, e.seq)),
                heap.pop().map(|e| (e.time, e.prio, e.seq)),
            );
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn peek_and_len() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.peek_time(), None);
        w.push(SimTime::from_secs(1), 0);
        w.push(SimTime::from_secs(2), 1);
        assert_eq!(w.len(), 2);
        assert_eq!(w.peek_time(), Some(SimTime::from_secs(1)));
        let mut h: HeapScheduler<u32> = HeapScheduler::new();
        assert!(h.is_empty());
        h.push(SimTime::from_secs(1), 0);
        assert_eq!(h.len(), 1);
        assert_eq!(h.peek_time(), Some(SimTime::from_secs(1)));
    }
}
