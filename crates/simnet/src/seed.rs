//! SplitMix64 seed derivation, shared by everything that needs independent
//! deterministic random streams (per-node RNGs, the reference-latency RNG,
//! per-cell sweep seeds, the PlanetLab latency hash).
//!
//! One implementation lives here — in the bottom crate — so the mixing
//! constants cannot drift apart between call sites.

/// The SplitMix64 stream increment (the golden-ratio constant).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finalizer: bijectively scrambles `z` so consecutive
/// inputs produce statistically independent outputs.
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of independent stream `stream` from `base` (SplitMix64
/// of the pair): equal bases with different streams give uncorrelated
/// seeds, without consuming draws from any RNG.
pub fn split_mix64(base: u64, stream: u64) -> u64 {
    mix64(base ^ stream.wrapping_mul(GOLDEN_GAMMA))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_distinct_and_deterministic() {
        assert_eq!(split_mix64(42, 0), split_mix64(42, 0));
        assert_ne!(split_mix64(42, 0), split_mix64(42, 1));
        assert_ne!(split_mix64(42, 0), split_mix64(43, 0));
    }

    #[test]
    fn mix64_scrambles_small_inputs() {
        // Zero is the finalizer's (only relevant) fixed point; anything else
        // must scramble.
        assert_eq!(mix64(0), 0);
        assert_ne!(mix64(1), 1);
        assert_ne!(mix64(1), mix64(2));
    }
}
