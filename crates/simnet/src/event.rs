//! The discrete-event queue.
//!
//! Events are totally ordered by `(time, prio, sequence)`. The priority is
//! the event's *lane key* — derived by the network from the causing node
//! and that node's cause counter — so same-instant ordering is a function
//! of causality, not of the order pushes happen to arrive in; the sequence
//! number (assigned monotonically at insertion) only resolves pushes the
//! priority leaves equal. This is what lets a sharded run reproduce the
//! sequential event order bit-for-bit.
//!
//! The queue is a thin dispatcher over the two scheduler implementations in
//! [`crate::sched`]: the timing wheel (default hot path) and the binary heap
//! (reference/baseline). Both produce the same total order; which one runs
//! is selected by [`SchedulerKind`] in the network configuration.

use crate::node::NodeId;
use crate::sched::{Entry, HeapScheduler, SchedulerKind, TimingWheel, TraceOp};
use crate::time::SimTime;

/// A tag identifying a timer set by a protocol.
///
/// Protocols multiplex all their periodic and one-shot timers through a
/// single `on_timer` callback; `kind` distinguishes timer families (e.g.
/// "shuffle tick" vs "pull tick") and `data` carries an optional payload
/// (e.g. a message sequence number the timer refers to). The simulator never
/// interprets the contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerTag {
    /// Protocol-defined timer family.
    pub kind: u16,
    /// Protocol-defined payload.
    pub data: u64,
}

impl TimerTag {
    /// Convenience constructor.
    pub const fn new(kind: u16, data: u64) -> Self {
        TimerTag { kind, data }
    }

    /// A tag with no payload.
    pub const fn of_kind(kind: u16) -> Self {
        TimerTag { kind, data: 0 }
    }
}

/// Kinds of event processed by the simulation loop.
#[derive(Debug, Clone)]
pub(crate) enum EventKind<M> {
    /// A message reaches its destination.
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
        size: usize,
    },
    /// A timer set by `node` fires.
    Timer { node: NodeId, tag: TimerTag },
    /// `node` learns (through connection-level failure detection) that the
    /// connection to `peer` is broken.
    LinkDown { node: NodeId, peer: NodeId },
    /// A node previously added with a start delay begins executing.
    Start { node: NodeId },
    /// A node crashes (fail-stop).
    Crash { node: NodeId },
}

// One `QueueImpl` exists per simulation, so the size difference between the
// wheel (inline bitmap + cursor header) and the heap is irrelevant — while
// boxing the wheel would put an extra pointer chase on every push/pop of
// the hot path.
#[allow(clippy::large_enum_variant)]
enum QueueImpl<M> {
    Wheel(TimingWheel<EventKind<M>>),
    Heap(HeapScheduler<EventKind<M>>),
}

/// A deterministic priority queue of simulation events.
pub(crate) struct EventQueue<M> {
    queue: QueueImpl<M>,
    /// When tracing is enabled, every push/pop is recorded so benches can
    /// replay the exact operation sequence through a scheduler in isolation.
    trace: Option<Vec<TraceOp>>,
}

impl<M> EventQueue<M> {
    pub fn new(kind: SchedulerKind, trace_events: bool) -> Self {
        EventQueue {
            queue: match kind {
                SchedulerKind::TimingWheel => QueueImpl::Wheel(TimingWheel::new()),
                SchedulerKind::BinaryHeap => QueueImpl::Heap(HeapScheduler::new()),
            },
            trace: trace_events.then(Vec::new),
        }
    }

    /// Schedules `kind` at absolute time `time` with lane-key priority
    /// `prio` (same-instant events pop in ascending `(prio, seq)` order).
    pub fn push(&mut self, time: SimTime, prio: u64, kind: EventKind<M>) {
        if let Some(trace) = &mut self.trace {
            trace.push(TraceOp::Push(time));
        }
        match &mut self.queue {
            QueueImpl::Wheel(w) => w.push_prio(time, prio, kind),
            QueueImpl::Heap(h) => h.push_prio(time, prio, kind),
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Entry<EventKind<M>>> {
        let popped = match &mut self.queue {
            QueueImpl::Wheel(w) => w.pop(),
            QueueImpl::Heap(h) => h.pop(),
        };
        if popped.is_some() {
            if let Some(trace) = &mut self.trace {
                trace.push(TraceOp::Pop);
            }
        }
        popped
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.queue {
            QueueImpl::Wheel(w) => w.peek_time(),
            QueueImpl::Heap(h) => h.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.queue {
            QueueImpl::Wheel(w) => w.len(),
            QueueImpl::Heap(h) => h.len(),
        }
    }

    /// True if no events are pending.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes the recorded operation trace (empty when tracing is disabled).
    pub fn take_trace(&mut self) -> Vec<TraceOp> {
        self.trace.take().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32) -> EventKind<()> {
        EventKind::Timer {
            node: NodeId(node),
            tag: TimerTag::of_kind(0),
        }
    }

    fn queue(kind: SchedulerKind) -> EventQueue<()> {
        EventQueue::new(kind, false)
    }

    #[test]
    fn pops_in_time_order() {
        for kind in [SchedulerKind::TimingWheel, SchedulerKind::BinaryHeap] {
            let mut q = queue(kind);
            q.push(SimTime::from_millis(30), 0, timer(3));
            q.push(SimTime::from_millis(10), 0, timer(1));
            q.push(SimTime::from_millis(20), 0, timer(2));
            let order: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|e| e.time.as_micros())
                .collect();
            assert_eq!(order, vec![10_000, 20_000, 30_000]);
        }
    }

    #[test]
    fn same_time_pops_in_insertion_order() {
        for kind in [SchedulerKind::TimingWheel, SchedulerKind::BinaryHeap] {
            let mut q = queue(kind);
            let t = SimTime::from_millis(5);
            for i in 0..10u32 {
                q.push(t, 0, timer(i));
            }
            let nodes: Vec<u32> = std::iter::from_fn(|| q.pop())
                .map(|e| match e.item {
                    EventKind::Timer { node, .. } => node.0,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(nodes, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = queue(SchedulerKind::default());
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(1), 0, timer(0));
        q.push(SimTime::from_secs(2), 0, timer(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn trace_records_operations() {
        let mut q: EventQueue<()> = EventQueue::new(SchedulerKind::default(), true);
        q.push(SimTime::from_millis(1), 0, timer(0));
        q.push(SimTime::from_millis(2), 0, timer(1));
        q.pop();
        let trace = q.take_trace();
        assert_eq!(
            trace,
            vec![
                TraceOp::Push(SimTime::from_millis(1)),
                TraceOp::Push(SimTime::from_millis(2)),
                TraceOp::Pop,
            ]
        );
        // Untraced queues return an empty trace.
        let mut untraced = queue(SchedulerKind::default());
        untraced.push(SimTime::from_millis(1), 0, timer(0));
        assert!(untraced.take_trace().is_empty());
    }

    #[test]
    fn timer_tag_constructors() {
        assert_eq!(TimerTag::new(3, 9), TimerTag { kind: 3, data: 9 });
        assert_eq!(TimerTag::of_kind(5), TimerTag { kind: 5, data: 0 });
    }
}
