//! The discrete-event queue.
//!
//! Events are totally ordered by `(time, sequence)`. The sequence number is
//! assigned monotonically at insertion so that events scheduled for the same
//! instant are processed in insertion order, which keeps runs fully
//! deterministic for a given seed.

use crate::node::NodeId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A tag identifying a timer set by a protocol.
///
/// Protocols multiplex all their periodic and one-shot timers through a
/// single `on_timer` callback; `kind` distinguishes timer families (e.g.
/// "shuffle tick" vs "pull tick") and `data` carries an optional payload
/// (e.g. a message sequence number the timer refers to). The simulator never
/// interprets the contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerTag {
    /// Protocol-defined timer family.
    pub kind: u16,
    /// Protocol-defined payload.
    pub data: u64,
}

impl TimerTag {
    /// Convenience constructor.
    pub const fn new(kind: u16, data: u64) -> Self {
        TimerTag { kind, data }
    }

    /// A tag with no payload.
    pub const fn of_kind(kind: u16) -> Self {
        TimerTag { kind, data: 0 }
    }
}

/// Kinds of event processed by the simulation loop.
#[derive(Debug, Clone)]
pub(crate) enum EventKind<M> {
    /// A message reaches its destination.
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
        size: usize,
    },
    /// A timer set by `node` fires.
    Timer { node: NodeId, tag: TimerTag },
    /// `node` learns (through connection-level failure detection) that the
    /// connection to `peer` is broken.
    LinkDown { node: NodeId, peer: NodeId },
    /// A node previously added with a start delay begins executing.
    Start { node: NodeId },
    /// A node crashes (fail-stop).
    Crash { node: NodeId },
}

/// An event with its scheduled time and tie-breaking sequence number.
#[derive(Debug)]
pub(crate) struct Event<M> {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of simulation events.
#[derive(Debug)]
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32) -> EventKind<()> {
        EventKind::Timer {
            node: NodeId(node),
            tag: TimerTag::of_kind(0),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.push(SimTime::from_millis(30), timer(3));
        q.push(SimTime::from_millis(10), timer(1));
        q.push(SimTime::from_millis(20), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_micros())
            .collect();
        assert_eq!(order, vec![10_000, 20_000, 30_000]);
    }

    #[test]
    fn same_time_pops_in_insertion_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10u32 {
            q.push(t, timer(i));
        }
        let nodes: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { node, .. } => node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(nodes, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(1), timer(0));
        q.push(SimTime::from_secs(2), timer(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn timer_tag_constructors() {
        assert_eq!(TimerTag::new(3, 9), TimerTag { kind: 3, data: 9 });
        assert_eq!(TimerTag::of_kind(5), TimerTag { kind: 5, data: 0 });
    }
}
