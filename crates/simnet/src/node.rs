//! Node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A unique identifier for a node participating in the simulation.
///
/// Identifiers are assigned sequentially by the [`Network`](crate::Network)
/// when nodes are added and are never reused, even after a node crashes.
/// In the paper nodes are identified by an `ip:port` pair (48 bits); the
/// wire-size accounting in the protocol crates uses
/// [`NodeId::WIRE_SIZE`] to reflect that cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Size in bytes of a node identifier on the wire. The paper assumes a
    /// 48-bit `ip:port` pair (Section II-D), i.e. 6 bytes.
    pub const WIRE_SIZE: usize = 6;

    /// Raw index value.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_display() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(format!("{}", NodeId(7)), "n7");
        assert_eq!(NodeId::from(9u32), NodeId(9));
        assert_eq!(NodeId(4).index(), 4);
    }
}
