//! Per-node bandwidth accounting.
//!
//! Every message handed to the simulator carries a wire size; the meter
//! attributes those bytes to the sender's upload and (at delivery time) the
//! receiver's download. Bytes are also bucketed per simulated second so
//! experiments can compute KB/s distributions over a measurement window, as
//! in Figures 10–12 of the paper.

use crate::node::NodeId;
use crate::time::SimTime;

/// Direction of a transfer, from the point of view of the accounted node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bytes sent by the node.
    Upload,
    /// Bytes received by the node.
    Download,
}

/// How much bandwidth history the meter retains per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeterMode {
    /// Totals plus one bucket per simulated second and direction — the data
    /// behind the per-phase KB/s figures (Figures 10–12). Costs
    /// `16 bytes × simulated seconds` per node.
    #[default]
    PerSecond,
    /// Totals only. Scale-mode runs select this: at 100 000 nodes the
    /// per-second buckets would dominate the simulation's memory while the
    /// streaming result path never reads them.
    TotalsOnly,
}

/// Byte counters for a single node.
#[derive(Debug, Clone, Default)]
pub struct NodeBandwidth {
    /// Total bytes uploaded since the node was created.
    pub upload_total: u64,
    /// Total bytes downloaded since the node was created.
    pub download_total: u64,
    /// Bytes uploaded per one-second bucket.
    pub upload_per_sec: Vec<u64>,
    /// Bytes downloaded per one-second bucket.
    pub download_per_sec: Vec<u64>,
}

impl NodeBandwidth {
    fn record(&mut self, dir: Direction, bytes: usize, at: SimTime, mode: MeterMode) {
        let (total, per_sec) = match dir {
            Direction::Upload => (&mut self.upload_total, &mut self.upload_per_sec),
            Direction::Download => (&mut self.download_total, &mut self.download_per_sec),
        };
        *total += bytes as u64;
        if mode == MeterMode::PerSecond {
            let bucket = at.second_bucket();
            if per_sec.len() <= bucket {
                per_sec.resize(bucket + 1, 0);
            }
            per_sec[bucket] += bytes as u64;
        }
    }

    /// Average upload rate in KB/s over the window `[from, to)` (seconds).
    pub fn upload_kbps(&self, from_sec: usize, to_sec: usize) -> f64 {
        rate_kbps(&self.upload_per_sec, from_sec, to_sec)
    }

    /// Average download rate in KB/s over the window `[from, to)` (seconds).
    pub fn download_kbps(&self, from_sec: usize, to_sec: usize) -> f64 {
        rate_kbps(&self.download_per_sec, from_sec, to_sec)
    }

    /// Total bytes (up + down).
    pub fn total(&self) -> u64 {
        self.upload_total + self.download_total
    }
}

fn rate_kbps(buckets: &[u64], from_sec: usize, to_sec: usize) -> f64 {
    if to_sec <= from_sec {
        return 0.0;
    }
    let to = to_sec.min(buckets.len());
    let sum: u64 = if from_sec < to {
        buckets[from_sec..to].iter().sum()
    } else {
        0
    };
    sum as f64 / 1024.0 / (to_sec - from_sec) as f64
}

/// Bandwidth meter covering all nodes of a simulation.
#[derive(Debug, Default, Clone)]
pub struct BandwidthMeter {
    nodes: Vec<NodeBandwidth>,
    mode: MeterMode,
}

impl BandwidthMeter {
    /// Creates an empty meter with per-second bucketing.
    pub fn new() -> Self {
        Self::with_mode(MeterMode::PerSecond)
    }

    /// Creates an empty meter with the given retention mode.
    pub fn with_mode(mode: MeterMode) -> Self {
        BandwidthMeter {
            nodes: Vec::new(),
            mode,
        }
    }

    /// The retention mode in force.
    pub fn mode(&self) -> MeterMode {
        self.mode
    }

    /// Ensures the meter covers `id`.
    pub(crate) fn ensure(&mut self, id: NodeId) {
        if self.nodes.len() <= id.index() {
            self.nodes
                .resize_with(id.index() + 1, NodeBandwidth::default);
        }
    }

    /// Records a transfer for `id`.
    pub(crate) fn record(&mut self, id: NodeId, dir: Direction, bytes: usize, at: SimTime) {
        self.ensure(id);
        let mode = self.mode;
        self.nodes[id.index()].record(dir, bytes, at, mode);
    }

    /// Bytes of memory the meter occupies (capacities, not lengths).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.nodes.capacity() * std::mem::size_of::<NodeBandwidth>()
            + self
                .nodes
                .iter()
                .map(|n| {
                    (n.upload_per_sec.capacity() + n.download_per_sec.capacity())
                        * std::mem::size_of::<u64>()
                })
                .sum::<usize>()
    }

    /// Folds `other` into `self`, summing per-node counters element-wise.
    /// Used by the sharded driver to merge per-shard meters at collect
    /// time; each node is recorded on exactly one shard (uploads on the
    /// sender's, downloads on the destination's — both its owner), so the
    /// merge is a disjoint union in practice.
    pub(crate) fn absorb(&mut self, other: &BandwidthMeter) {
        if self.nodes.len() < other.nodes.len() {
            self.nodes
                .resize_with(other.nodes.len(), NodeBandwidth::default);
        }
        for (mine, theirs) in self.nodes.iter_mut().zip(other.nodes.iter()) {
            mine.upload_total += theirs.upload_total;
            mine.download_total += theirs.download_total;
            for (per_sec, other_sec) in [
                (&mut mine.upload_per_sec, &theirs.upload_per_sec),
                (&mut mine.download_per_sec, &theirs.download_per_sec),
            ] {
                if per_sec.len() < other_sec.len() {
                    per_sec.resize(other_sec.len(), 0);
                }
                for (bucket, add) in per_sec.iter_mut().zip(other_sec.iter()) {
                    *bucket += add;
                }
            }
        }
    }

    /// Counters for a node, if it has ever been registered.
    pub fn node(&self, id: NodeId) -> Option<&NodeBandwidth> {
        self.nodes.get(id.index())
    }

    /// Iterates over `(NodeId, counters)` for all registered nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeBandwidth)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, b)| (NodeId(i as u32), b))
    }

    /// Sum of bytes transferred (counting each message once, on the upload
    /// side) across all nodes.
    pub fn total_uploaded(&self) -> u64 {
        self.nodes.iter().map(|n| n.upload_total).sum()
    }

    /// Sum of bytes received across all nodes.
    pub fn total_downloaded(&self) -> u64 {
        self.nodes.iter().map(|n| n.download_total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_totals_and_buckets() {
        let mut m = BandwidthMeter::new();
        m.record(
            NodeId(2),
            Direction::Upload,
            1000,
            SimTime::from_millis(500),
        );
        m.record(
            NodeId(2),
            Direction::Upload,
            500,
            SimTime::from_millis(1500),
        );
        m.record(
            NodeId(2),
            Direction::Download,
            200,
            SimTime::from_millis(2500),
        );
        let n = m.node(NodeId(2)).unwrap();
        assert_eq!(n.upload_total, 1500);
        assert_eq!(n.download_total, 200);
        assert_eq!(n.upload_per_sec, vec![1000, 500]);
        assert_eq!(n.download_per_sec, vec![0, 0, 200]);
        assert_eq!(m.total_uploaded(), 1500);
        assert_eq!(m.total_downloaded(), 200);
    }

    #[test]
    fn totals_only_skips_buckets() {
        let mut m = BandwidthMeter::with_mode(MeterMode::TotalsOnly);
        assert_eq!(m.mode(), MeterMode::TotalsOnly);
        m.record(NodeId(0), Direction::Upload, 100, SimTime::from_secs(5));
        m.record(NodeId(0), Direction::Download, 70, SimTime::from_secs(9));
        let n = m.node(NodeId(0)).unwrap();
        assert_eq!(n.upload_total, 100);
        assert_eq!(n.download_total, 70);
        assert!(n.upload_per_sec.is_empty());
        assert!(n.download_per_sec.is_empty());
        // The footprint estimate covers the node slots but no buckets.
        assert!(m.approx_bytes() >= std::mem::size_of::<NodeBandwidth>());
    }

    #[test]
    fn unknown_node_has_no_counters() {
        let m = BandwidthMeter::new();
        assert!(m.node(NodeId(3)).is_none());
    }

    #[test]
    fn rate_over_window() {
        let mut m = BandwidthMeter::new();
        // 2048 bytes per second for 4 seconds.
        for s in 0..4u64 {
            m.record(
                NodeId(0),
                Direction::Upload,
                2048,
                SimTime::from_secs(s) + crate::time::SimDuration::from_millis(10),
            );
        }
        let n = m.node(NodeId(0)).unwrap();
        assert!((n.upload_kbps(0, 4) - 2.0).abs() < 1e-9);
        // Window extending past recorded data averages over the full window.
        assert!((n.upload_kbps(0, 8) - 1.0).abs() < 1e-9);
        // Empty / inverted windows.
        assert_eq!(n.upload_kbps(4, 4), 0.0);
        assert_eq!(n.upload_kbps(5, 4), 0.0);
        assert_eq!(n.download_kbps(0, 4), 0.0);
    }

    #[test]
    fn iter_covers_all_registered() {
        let mut m = BandwidthMeter::new();
        m.record(NodeId(0), Direction::Upload, 1, SimTime::ZERO);
        m.record(NodeId(3), Direction::Download, 2, SimTime::ZERO);
        let ids: Vec<u32> = m.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(m.node(NodeId(1)).unwrap().total(), 0);
    }
}
