//! The sharded deterministic simulation driver.
//!
//! [`ShardedNetwork`] partitions the nodes of one simulation across `k`
//! shards by id (`owner(id) = id % k`) and runs each shard's event queue on
//! its own worker thread, in lock-step epochs. The result is **bit-identical**
//! to the sequential [`crate::Network`] run with the same seed: every
//! protocol callback sees the same RNG stream, the same message order and
//! the same timestamps.
//!
//! # Why determinism holds
//!
//! Three mechanisms combine:
//!
//! 1. **Lane-key event priorities** (see [`crate::sched`]). Every event's
//!    priority is `(causing_node << 32) | cause_counter`, drawn from the
//!    causing node's own counter. Priorities are globally unique, so
//!    `(time, prio)` is already a total order over all events of a run —
//!    the order cross-shard deliveries are appended to a mailbox is
//!    irrelevant, because the destination queue re-establishes the exact
//!    sequential order from the key alone.
//!
//! 2. **Conservative lookahead windows.** Cross-shard influence travels
//!    only through messages, and every message takes at least
//!    [`crate::latency::LatencyModel::min_latency`] (scaled down by the
//!    live `latency_factor` when it shrinks latencies). Each epoch, all
//!    shards agree on the global minimum pending timestamp `m` and process
//!    only events with `t ≤ m + L − 1µs`; any event a remote shard could
//!    still produce lands at `≥ m + L`, strictly beyond the window. The
//!    windows are therefore causally closed, and mailbox exchange happens
//!    at a barrier between windows. Models that cannot promise a positive
//!    bound (`min_latency() == 0`) are refused.
//!
//! 3. **A sequential boundary drain.** Driver operations (`invoke`,
//!    `crash`, `add_node`) happen between `run_until` calls, at the
//!    current instant. Events at exactly that instant — starts, zero-delay
//!    timers, pending crashes — can interleave with each other in
//!    prio order *and mutate shared state* (a crash flips liveness on all
//!    shards), so the driver drains that single instant sequentially,
//!    merging the per-shard queue heads and the pending crash list by
//!    priority, before the threaded epochs begin.
//!
//! Per-shard state that must agree with the sequential run is either
//! *owned* (protocol state, RNG, FIFO clocks and fault counters of a
//! node's outgoing links live only on its owner shard) or *replicated
//! with deterministic updates* (liveness flips only in the boundary
//! drain; adjacency mutations are mirrored to the other endpoint's shard
//! at the epoch barrier, where they are reads-free until the next
//! boundary).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use crate::bandwidth::{BandwidthMeter, Direction};
use crate::event::{EventKind, EventQueue};
use crate::faults::{FaultLayer, LinkFaults, PartitionSpec, Routed};
use crate::latency::LatencyModel;
use crate::links::{Adjacency, LinkClocks};
use crate::network::{event_record_size, Footprint, NetStats, NetworkConfig};
use crate::node::NodeId;
use crate::protocol::{Command, Context, Protocol, WireSize};
use crate::seed::split_mix64;
use crate::time::{SimDuration, SimTime};
use brisa_telemetry::EventKind as TelEventKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cross-shard mailbox item: either an event for the destination shard's
/// queue or an adjacency mirror notification (every mutation of an edge
/// whose endpoints live on different shards is replayed on the other
/// endpoint's shard, so `incoming_of` and `clear_outgoing` stay exact).
enum Relay<M> {
    Event {
        time: SimTime,
        prio: u64,
        kind: EventKind<M>,
    },
    Open {
        owner: NodeId,
        peer: NodeId,
    },
    Close {
        owner: NodeId,
        peer: NodeId,
    },
}

/// Protocol state of one owned node (dense, indexed by `id / shards`).
struct ShardSlot<P> {
    proto: P,
    rng: SmallRng,
    started: bool,
    /// Per-node cause counter for lane-key priorities; identical to the
    /// sequential driver's counter because every draw for this lane happens
    /// on this shard, in the same causal order.
    lane_seq: u32,
}

/// One shard: the slice of nodes it owns plus replicas of the shared
/// state its events read.
struct ShardCore<P: Protocol> {
    shard: usize,
    shards: usize,
    config: NetworkConfig,
    latency: Arc<dyn LatencyModel + Send + Sync>,
    now: SimTime,
    queue: EventQueue<P::Message>,
    /// Owned nodes, dense at `id / shards`.
    slots: Vec<ShardSlot<P>>,
    /// Replicated liveness for *all* nodes; flips only in the boundary
    /// drain, so mid-epoch reads are stable and identical on every shard.
    alive: Vec<bool>,
    /// Global-id-space adjacency. Out-lists of owned nodes are
    /// authoritative; edges with a remote endpoint are mirrored onto that
    /// endpoint's shard so its reverse index stays exact.
    connections: Adjacency,
    /// FIFO clocks of owned senders (a sender's clocks live only here).
    link_clock: LinkClocks,
    /// Fault-layer replica. Draw counters are per directed link and only
    /// bumped on the sender's shard, so replicas never disagree on a draw.
    faults: FaultLayer,
    bandwidth: BandwidthMeter,
    stats: NetStats,
    command_buf: Vec<Command<P::Message>>,
    /// Per-destination-shard outbound relays, exchanged at the epoch
    /// barrier (drained immediately by the driver during boundary drains).
    outbox: Vec<Vec<Relay<P::Message>>>,
}

impl<P: Protocol> ShardCore<P> {
    fn new(
        shard: usize,
        shards: usize,
        config: &NetworkConfig,
        latency: Arc<dyn LatencyModel + Send + Sync>,
    ) -> Self {
        ShardCore {
            shard,
            shards,
            config: config.clone(),
            latency,
            now: SimTime::ZERO,
            queue: EventQueue::new(config.scheduler, false),
            slots: Vec::new(),
            alive: Vec::new(),
            connections: Adjacency::default(),
            link_clock: LinkClocks::default(),
            faults: FaultLayer::new(config.seed, config.faults.clone()),
            bandwidth: BandwidthMeter::with_mode(config.meter),
            stats: NetStats::default(),
            command_buf: Vec::new(),
            outbox: (0..shards).map(|_| Vec::new()).collect(),
        }
    }

    fn owns(&self, id: NodeId) -> bool {
        id.index() % self.shards == self.shard
    }

    fn shard_of(&self, id: NodeId) -> usize {
        id.index() % self.shards
    }

    fn is_alive(&self, id: NodeId) -> bool {
        self.alive.get(id.index()).copied().unwrap_or(false)
    }

    fn set_alive(&mut self, id: NodeId, val: bool) {
        if self.alive.len() <= id.index() {
            self.alive.resize(id.index() + 1, false);
        }
        self.alive[id.index()] = val;
    }

    fn started(&self, id: NodeId) -> bool {
        self.slots
            .get(id.index() / self.shards)
            .map(|s| s.started)
            .unwrap_or(false)
    }

    /// Registers a node owned by another shard (liveness replica only).
    fn register_remote(&mut self, id: NodeId) {
        self.set_alive(id, true);
    }

    /// Adds a node this shard owns; mirrors
    /// `Network::add_node_with_seed` exactly.
    fn add_owned(
        &mut self,
        id: NodeId,
        start: SimTime,
        seed: u64,
        build: impl FnOnce(NodeId) -> P,
    ) {
        assert_eq!(
            id.index() / self.shards,
            self.slots.len(),
            "node ids must be added densely"
        );
        self.slots.push(ShardSlot {
            proto: build(id),
            rng: SmallRng::seed_from_u64(seed),
            started: false,
            lane_seq: 0,
        });
        self.set_alive(id, true);
        self.bandwidth.ensure(id);
        let prio = self.lane_key(id);
        self.queue.push(start, prio, EventKind::Start { node: id });
    }

    /// Identical to `Network::lane_key`: the causing node's id in the high
    /// bits, its cause counter in the low bits. Only ever called for lanes
    /// this shard owns (every event's cause is processed on its owner).
    fn lane_key(&mut self, lane: NodeId) -> u64 {
        let hi = (lane.0 as u64) << 32;
        if lane.index() % self.shards == self.shard {
            if let Some(slot) = self.slots.get_mut(lane.index() / self.shards) {
                let key = hi | slot.lane_seq as u64;
                slot.lane_seq = slot.lane_seq.wrapping_add(1);
                return key;
            }
        }
        hi
    }

    /// Applies one mailbox item delivered at an epoch barrier (or routed
    /// directly by the driver during a boundary drain).
    fn apply_relay(&mut self, relay: Relay<P::Message>) {
        match relay {
            Relay::Event { time, prio, kind } => self.queue.push(time, prio, kind),
            Relay::Open { owner, peer } => self.connections.insert(owner, peer),
            Relay::Close { owner, peer } => self.connections.remove(owner, peer),
        }
    }

    /// Processes one event; the body mirrors `Network::process` with
    /// cross-shard edge mutations mirrored through the outbox.
    fn process(&mut self, kind: EventKind<P::Message>) {
        match kind {
            EventKind::Start { node } => {
                if !self.is_alive(node) {
                    return;
                }
                self.slots[node.index() / self.shards].started = true;
                self.dispatch(node, |proto, ctx| proto.on_start(ctx));
            }
            EventKind::Deliver {
                from,
                to,
                msg,
                size,
            } => {
                if !self.is_alive(to) || !self.started(to) {
                    self.stats.messages_dropped += 1;
                    return;
                }
                self.bandwidth
                    .record(to, Direction::Download, size, self.now);
                self.stats.messages_delivered += 1;
                self.dispatch(to, |proto, ctx| proto.on_message(ctx, from, msg));
            }
            EventKind::Timer { node, tag } => {
                if !self.is_alive(node) {
                    return;
                }
                self.dispatch(node, |proto, ctx| proto.on_timer(ctx, tag));
            }
            EventKind::LinkDown { node, peer } => {
                if !self.is_alive(node) || !self.connections.contains(node, peer) {
                    return;
                }
                self.connections.remove(node, peer);
                if !self.owns(peer) {
                    let dest = self.shard_of(peer);
                    self.outbox[dest].push(Relay::Close { owner: node, peer });
                }
                self.dispatch(node, |proto, ctx| proto.on_link_down(ctx, peer));
            }
            EventKind::Crash { .. } => {
                // Crashes never enter a shard queue: the driver applies
                // them in the boundary drain.
                debug_assert!(false, "crash event in a shard queue");
            }
        }
    }

    fn dispatch(&mut self, id: NodeId, f: impl FnOnce(&mut P, &mut Context<'_, P::Message>)) {
        let slot = &mut self.slots[id.index() / self.shards];
        let mut commands = std::mem::take(&mut self.command_buf);
        commands.clear();
        {
            let mut ctx = Context {
                now: self.now,
                id,
                rng: &mut slot.rng,
                commands: &mut commands,
                telemetry: &self.config.telemetry,
            };
            f(&mut slot.proto, &mut ctx);
        }
        let drained = self.apply_commands(id, commands);
        self.command_buf = drained;
    }

    /// Mirrors `Network::apply_commands`, routing cross-shard deliveries
    /// and edge mirrors through the outbox.
    fn apply_commands(
        &mut self,
        origin: NodeId,
        mut commands: Vec<Command<P::Message>>,
    ) -> Vec<Command<P::Message>> {
        for cmd in commands.drain(..) {
            match cmd {
                Command::Send { to, msg } => {
                    let size = msg.wire_size();
                    self.stats.messages_sent += 1;
                    self.bandwidth
                        .record(origin, Direction::Upload, size, self.now);
                    let latency = {
                        let rng = &mut self.slots[origin.index() / self.shards].rng;
                        self.latency.sample(origin, to, rng)
                    };
                    let mut deliver_at = self.now + latency;
                    if !self.faults.is_inert() {
                        match self.faults.route(origin, to, self.now, latency) {
                            Routed::Deliver(at) => deliver_at = at,
                            Routed::LostToFaults => {
                                self.stats.messages_lost_to_faults += 1;
                                continue;
                            }
                            Routed::CutByPartition => {
                                self.stats.messages_cut_by_partition += 1;
                                continue;
                            }
                        }
                    }
                    if self.config.fifo_links && self.is_alive(to) {
                        let clock = self.link_clock.entry(origin, to);
                        if deliver_at < *clock {
                            deliver_at = *clock + SimDuration::from_micros(1);
                        }
                        *clock = deliver_at;
                    }
                    let prio = self.lane_key(origin);
                    let kind = EventKind::Deliver {
                        from: origin,
                        to,
                        msg,
                        size,
                    };
                    if self.owns(to) {
                        self.queue.push(deliver_at, prio, kind);
                    } else {
                        let dest = self.shard_of(to);
                        self.outbox[dest].push(Relay::Event {
                            time: deliver_at,
                            prio,
                            kind,
                        });
                    }
                }
                Command::SetTimer { delay, tag } => {
                    let prio = self.lane_key(origin);
                    self.queue.push(
                        self.now + delay,
                        prio,
                        EventKind::Timer { node: origin, tag },
                    );
                }
                Command::OpenConnection { peer } => {
                    self.connections.insert(origin, peer);
                    if !self.owns(peer) {
                        let dest = self.shard_of(peer);
                        self.outbox[dest].push(Relay::Open {
                            owner: origin,
                            peer,
                        });
                    }
                    if !self.is_alive(peer)
                        || (!self.faults.is_inert() && self.faults.is_cut(self.now, origin, peer))
                    {
                        let prio = self.lane_key(origin);
                        self.queue.push(
                            self.now + self.config.failure_detection_delay,
                            prio,
                            EventKind::LinkDown { node: origin, peer },
                        );
                    }
                }
                Command::CloseConnection { peer } => {
                    self.connections.remove(origin, peer);
                    if !self.owns(peer) {
                        let dest = self.shard_of(peer);
                        self.outbox[dest].push(Relay::Close {
                            owner: origin,
                            peer,
                        });
                    }
                }
            }
        }
        commands
    }

    /// The threaded epoch loop of one shard. All shards execute identical
    /// control flow: publish local minimum, agree on the global minimum at
    /// a barrier, process the causally closed window, exchange mailboxes
    /// at a second barrier, drain the own inbox, repeat.
    fn run_epochs(
        &mut self,
        deadline_us: u64,
        lookahead_us: u64,
        mins: &[AtomicU64],
        inboxes: &[Mutex<Vec<Relay<P::Message>>>],
        barrier: &Barrier,
    ) {
        loop {
            let local_min = self
                .queue
                .peek_time()
                .map(|t| t.as_micros())
                .unwrap_or(u64::MAX);
            mins[self.shard].store(local_min, Ordering::SeqCst);
            barrier.wait();
            let global_min = mins
                .iter()
                .map(|m| m.load(Ordering::SeqCst))
                .min()
                .expect("at least one shard");
            if global_min > deadline_us {
                // Every shard computes the same global minimum, so every
                // shard exits here in the same round: no barrier skew.
                break;
            }
            let bound = SimTime::from_micros(
                deadline_us.min(global_min.saturating_add(lookahead_us).saturating_sub(1)),
            );
            while let Some(t) = self.queue.peek_time() {
                if t > bound {
                    break;
                }
                let ev = self.queue.pop().expect("peeked event must exist");
                self.now = ev.time;
                self.stats.events_processed += 1;
                self.process(ev.item);
            }
            for (dest, inbox) in inboxes.iter().enumerate() {
                if dest == self.shard || self.outbox[dest].is_empty() {
                    continue;
                }
                inbox
                    .lock()
                    .expect("inbox lock")
                    .append(&mut self.outbox[dest]);
            }
            barrier.wait();
            let inbox = std::mem::take(&mut *inboxes[self.shard].lock().expect("inbox lock"));
            for relay in inbox {
                self.apply_relay(relay);
            }
        }
    }

    fn footprint(&self) -> Footprint {
        let slot_overhead = std::mem::size_of::<ShardSlot<P>>() - std::mem::size_of::<P>();
        Footprint {
            nodes: self.slots.len(),
            node_state_bytes: self
                .slots
                .iter()
                .map(|n| n.proto.approx_state_bytes() + slot_overhead)
                .sum::<usize>()
                + self.alive.capacity(),
            queue_bytes: self.queue.len() * (event_record_size::<P>() + 24),
            adjacency_bytes: self.connections.approx_bytes(),
            link_clock_bytes: self.link_clock.approx_bytes(),
            bandwidth_bytes: self.bandwidth.approx_bytes(),
        }
    }
}

/// A deterministic simulation sharded across worker threads.
///
/// Drop-in alternative to [`crate::Network`] for the boundary-driven
/// experiment harness: nodes are added, invoked and crashed between
/// `run_until` calls, and every observable — stats, per-node state, FIFO
/// clocks, bandwidth — is bit-identical to the sequential run with the
/// same configuration and seed.
///
/// Differences from [`crate::Network`]:
///
/// * The latency model is shared by all shards and must promise a positive
///   [`LatencyModel::min_latency`]; `run_until` panics otherwise.
/// * Scheduler operation traces ([`NetworkConfig::trace_events`]) are not
///   supported (each shard has its own queue, so a single interleaved
///   trace does not exist); construction panics if requested.
/// * Crashes are applied at `run_until` boundaries (the harness only
///   crashes there); there is no `schedule_crash`.
pub struct ShardedNetwork<P: Protocol> {
    config: NetworkConfig,
    cores: Vec<ShardCore<P>>,
    latency: Arc<dyn LatencyModel + Send + Sync>,
    now: SimTime,
    node_count: usize,
    master_rng: SmallRng,
    reference_rng: SmallRng,
    /// Driver liveness mirror (flips at crash application, like every
    /// shard replica).
    alive: Vec<bool>,
    /// Crashes requested since the last boundary: `(lane prio, victim)`.
    /// The prio is drawn at `crash()` call time, exactly when the
    /// sequential driver draws it for the crash event push.
    pending_crashes: Vec<(u64, NodeId)>,
    /// Live `latency_factor`, tracked so the epoch lookahead can shrink
    /// with it (a factor below 1 compresses every sampled latency).
    link_factor: f64,
    /// Crash applications, counted as processed events like the
    /// sequential driver's crash-event pops.
    crash_events: u64,
}

impl<P: Protocol + Send> ShardedNetwork<P>
where
    P::Message: Send,
{
    /// Creates a sharded network. `shards` must be at least 1; the latency
    /// model is shared (it is sampled under each shard's own node RNGs).
    ///
    /// # Panics
    ///
    /// If `config.trace_events` is set (unsupported, see type docs).
    pub fn new(
        config: NetworkConfig,
        latency: Arc<dyn LatencyModel + Send + Sync>,
        shards: usize,
    ) -> Self {
        assert!(shards >= 1, "at least one shard");
        assert!(
            !config.trace_events,
            "scheduler traces are not supported by the sharded driver"
        );
        let master_rng = SmallRng::seed_from_u64(config.seed);
        let reference_rng = SmallRng::seed_from_u64(split_mix64(config.seed, 0x0DD5_EED5));
        let cores = (0..shards)
            .map(|s| ShardCore::new(s, shards, &config, Arc::clone(&latency)))
            .collect();
        let link_factor = config.faults.link.latency_factor;
        ShardedNetwork {
            config,
            cores,
            latency,
            now: SimTime::ZERO,
            node_count: 0,
            master_rng,
            reference_rng,
            alive: Vec::new(),
            pending_crashes: Vec::new(),
            link_factor,
            crash_events: 0,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.cores.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes ever added (dead or alive).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// True if `id` exists and has not crashed.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.alive.get(id.index()).copied().unwrap_or(false)
    }

    /// Iterator over the identifiers of all live nodes, ascending.
    pub fn alive_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, alive)| **alive)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Identifiers of all live nodes, collected into a fresh vector.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        self.alive_iter().collect()
    }

    /// Immutable access to the protocol state of `id`.
    pub fn node(&self, id: NodeId) -> Option<&P> {
        let owner = id.index() % self.cores.len();
        self.cores[owner]
            .slots
            .get(id.index() / self.cores.len())
            .map(|s| &s.proto)
    }

    /// Mutable access to the protocol state of `id` (harness hook).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        let shards = self.cores.len();
        let owner = id.index() % shards;
        self.cores[owner]
            .slots
            .get_mut(id.index() / shards)
            .map(|s| &mut s.proto)
    }

    /// Adds a node immediately (its `on_start` runs at the current time).
    pub fn add_node(&mut self, build: impl FnOnce(NodeId) -> P) -> NodeId {
        self.add_node_at(self.now, build)
    }

    /// Adds a node whose `on_start` runs at `start`. Seeds are drawn from
    /// the master RNG in global add order, so per-node streams match the
    /// sequential run exactly.
    pub fn add_node_at(&mut self, start: SimTime, build: impl FnOnce(NodeId) -> P) -> NodeId {
        assert!(start >= self.now, "cannot start a node in the past");
        let id = NodeId(self.node_count as u32);
        let seed: u64 = self.master_rng.gen();
        self.node_count += 1;
        self.alive.push(true);
        let owner = id.index() % self.cores.len();
        for (s, core) in self.cores.iter_mut().enumerate() {
            if s != owner {
                core.register_remote(id);
            }
        }
        self.cores[owner].add_owned(id, start, seed, build);
        id
    }

    /// Crashes `id` at the current instant (fail-stop), applied in the
    /// next `run_until`'s boundary drain. Like the sequential driver, the
    /// node stays alive (and invokable) until the crash event's instant is
    /// processed; the lane-key draw happens now, at push time.
    pub fn crash(&mut self, id: NodeId) {
        let owner = id.index() % self.cores.len();
        let prio = self.cores[owner].lane_key(id);
        self.pending_crashes.push((prio, id));
    }

    /// Runs an application-level closure against a node through the
    /// simulator (see [`crate::Network::invoke`]). Ignored for dead or
    /// not-yet-started nodes.
    pub fn invoke(&mut self, id: NodeId, f: impl FnOnce(&mut P, &mut Context<'_, P::Message>)) {
        if !self.is_alive(id) {
            return;
        }
        let owner = id.index() % self.cores.len();
        if !self.cores[owner].started(id) {
            return;
        }
        self.cores[owner].now = self.now;
        self.cores[owner].dispatch(id, f);
        self.route_outboxes();
    }

    /// Replaces the live per-link fault profile on every shard.
    pub fn set_link_faults(&mut self, link: LinkFaults) {
        self.link_factor = link.latency_factor;
        for core in &mut self.cores {
            core.faults.set_link_faults(link.clone());
        }
    }

    /// Installs a timed partition at runtime on every shard.
    pub fn add_partition(&mut self, spec: PartitionSpec) {
        assert!(spec.end > self.now, "partition healed in the past");
        self.config.telemetry.event(
            self.now.as_micros(),
            u32::MAX,
            TelEventKind::PartitionApply,
            spec.start.as_micros(),
            spec.end.as_micros(),
        );
        for core in &mut self.cores {
            core.faults.add_partition(spec.clone());
        }
    }

    /// The epoch lookahead: the latency model's hard lower bound, shrunk
    /// by the live `latency_factor` when it compresses latencies (the
    /// fault layer rounds exactly like this, and rounding is monotone, so
    /// the result remains a true lower bound on every delivery delay).
    fn lookahead(&self) -> SimDuration {
        let base = self.latency.min_latency();
        if self.link_factor < 1.0 {
            let scaled = (base.as_micros() as f64 * self.link_factor.max(0.0)).round() as u64;
            SimDuration::from_micros(scaled)
        } else {
            base
        }
    }

    /// Processes events until `deadline`, then sets the clock to it.
    ///
    /// # Panics
    ///
    /// If the effective lookahead is below 1 µs — a latency model without
    /// a positive `min_latency` (or a `latency_factor` that erases it)
    /// admits zero-delay cross-shard causality, which only the sequential
    /// driver can honour.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        assert!(deadline >= self.now, "deadline is in the past");
        self.drain_boundary();
        let lookahead = self.lookahead();
        assert!(
            lookahead >= SimDuration::from_micros(1),
            "sharded runs need a positive minimum latency \
             (LatencyModel::min_latency × latency_factor ≥ 1µs); \
             use the sequential driver for this model"
        );
        let deadline_us = deadline.as_micros();
        let lookahead_us = lookahead.as_micros();
        let shards = self.cores.len();
        let mins: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect();
        let inboxes: Vec<Mutex<Vec<Relay<P::Message>>>> =
            (0..shards).map(|_| Mutex::new(Vec::new())).collect();
        let barrier = Barrier::new(shards);
        std::thread::scope(|scope| {
            for core in self.cores.iter_mut() {
                let mins = &mins;
                let inboxes = &inboxes;
                let barrier = &barrier;
                scope.spawn(move || {
                    core.run_epochs(deadline_us, lookahead_us, mins, inboxes, barrier)
                });
            }
        });
        self.now = deadline;
        for core in &mut self.cores {
            core.now = deadline;
        }
        self.publish_telemetry();
        self.now
    }

    /// Runs for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) -> SimTime {
        let deadline = self.now + d;
        self.run_until(deadline)
    }

    /// Sequentially drains every event at exactly the current instant —
    /// pending crashes, starts of nodes added "now", zero-delay timers —
    /// merging the per-shard queue heads with the pending crash list in
    /// global priority order, exactly as the sequential queue would pop
    /// them. Loops until the instant is dry (processing can mint more
    /// same-instant events).
    fn drain_boundary(&mut self) {
        let boundary = self.now;
        self.pending_crashes.sort_by_key(|&(prio, _)| prio);
        let crashes = std::mem::take(&mut self.pending_crashes);
        let mut crash_idx = 0;
        loop {
            // Pop each shard's head if it sits at the boundary instant.
            let shards = self.cores.len();
            let mut held = Vec::with_capacity(shards);
            for s in 0..shards {
                if self.cores[s].queue.peek_time() == Some(boundary) {
                    let ev = self.cores[s].queue.pop().expect("peeked event must exist");
                    held.push((s, ev));
                }
            }
            let event_best = held
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, ev))| ev.prio)
                .map(|(i, (_, ev))| (i, ev.prio));
            let crash_best = crashes.get(crash_idx).map(|&(prio, _)| prio);
            let winner_is_crash = match (event_best, crash_best) {
                (None, None) => {
                    debug_assert!(held.is_empty());
                    break;
                }
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some((_, ep)), Some(cp)) => cp < ep,
            };
            if winner_is_crash {
                // Push every held head back (priorities are preserved, and
                // they alone determine order) and apply the crash.
                for (s, ev) in held {
                    self.cores[s].queue.push(ev.time, ev.prio, ev.item);
                }
                let (_, victim) = crashes[crash_idx];
                crash_idx += 1;
                self.apply_crash(victim);
            } else {
                let (win, _) = event_best.expect("event winner");
                let mut winner = None;
                for (i, (s, ev)) in held.into_iter().enumerate() {
                    if i == win {
                        winner = Some((s, ev));
                    } else {
                        self.cores[s].queue.push(ev.time, ev.prio, ev.item);
                    }
                }
                let (s, ev) = winner.expect("winner held");
                self.cores[s].now = boundary;
                self.cores[s].stats.events_processed += 1;
                self.cores[s].process(ev.item);
                self.route_outboxes();
            }
        }
    }

    /// Applies one crash: mirrors `Network::process_crash`, with the lane
    /// draws on the victim's owner shard and the liveness flip + prunes
    /// replicated everywhere.
    fn apply_crash(&mut self, victim: NodeId) {
        self.crash_events += 1;
        if !self.is_alive(victim) {
            return;
        }
        self.alive[victim.index()] = false;
        let shards = self.cores.len();
        let owner = victim.index() % shards;
        let detect_at = self.now + self.config.failure_detection_delay;
        // The victim's shard holds the authoritative reverse index (every
        // remote edge towards the victim was mirrored here).
        let notified: Vec<NodeId> = self.cores[owner].connections.incoming_of(victim).to_vec();
        for peer in notified {
            let prio = self.cores[owner].lane_key(victim);
            let dest = peer.index() % shards;
            self.cores[dest].queue.push(
                detect_at,
                prio,
                EventKind::LinkDown {
                    node: peer,
                    peer: victim,
                },
            );
        }
        for core in &mut self.cores {
            core.set_alive(victim, false);
            core.connections.clear_outgoing(victim);
            core.link_clock.prune(victim);
            core.faults.prune(victim);
        }
    }

    /// Routes every pending outbox relay directly (single-threaded; used
    /// by the boundary drain and `invoke`, where the driver holds all
    /// shards).
    fn route_outboxes(&mut self) {
        let shards = self.cores.len();
        for s in 0..shards {
            for d in 0..shards {
                if d == s {
                    continue;
                }
                let relays = std::mem::take(&mut self.cores[s].outbox[d]);
                for relay in relays {
                    self.cores[d].apply_relay(relay);
                }
            }
        }
    }

    /// Merged simulator statistics (sums across shards, plus crash
    /// applications counted as processed events like the sequential
    /// driver's crash-event pops).
    pub fn stats(&self) -> NetStats {
        let mut total = NetStats {
            events_processed: self.crash_events,
            ..NetStats::default()
        };
        for core in &self.cores {
            total.messages_sent += core.stats.messages_sent;
            total.messages_delivered += core.stats.messages_delivered;
            total.messages_dropped += core.stats.messages_dropped;
            total.messages_lost_to_faults += core.stats.messages_lost_to_faults;
            total.messages_cut_by_partition += core.stats.messages_cut_by_partition;
            total.events_processed += core.stats.events_processed;
        }
        total
    }

    /// Merged bandwidth meter. Each node's counters live entirely on its
    /// owner shard (uploads are recorded sender-side, downloads
    /// destination-side), so the merge is a disjoint union.
    pub fn bandwidth(&self) -> BandwidthMeter {
        let mut merged = BandwidthMeter::with_mode(self.config.meter);
        for core in &self.cores {
            merged.absorb(&core.bandwidth);
        }
        merged
    }

    /// Snapshot of every tracked FIFO link clock, in `(sender, dest)`
    /// order. A sender's clocks live only on its owner shard, so the
    /// merge is a sort of disjoint per-shard snapshots.
    pub fn link_clock_entries(&self) -> Vec<(NodeId, NodeId, SimTime)> {
        let mut all: Vec<(NodeId, NodeId, SimTime)> = self
            .cores
            .iter()
            .flat_map(|c| c.link_clock.entries().map(|(s, d, t)| (s, d, *t)))
            .collect();
        all.sort_unstable_by_key(|&(s, d, _)| (s, d));
        all
    }

    /// Number of directed FIFO link clocks currently tracked.
    pub fn tracked_link_clocks(&self) -> usize {
        self.cores
            .iter()
            .map(|c| c.link_clock.tracked_links())
            .sum()
    }

    /// Number of pending events across all shard queues.
    pub fn pending_events(&self) -> usize {
        self.cores.iter().map(|c| c.queue.len()).sum()
    }

    /// Accounting-based memory footprint, summed across shards.
    pub fn footprint(&self) -> Footprint {
        let mut total = Footprint::default();
        for core in &self.cores {
            let f = core.footprint();
            total.node_state_bytes += f.node_state_bytes;
            total.queue_bytes += f.queue_bytes;
            total.adjacency_bytes += f.adjacency_bytes;
            total.link_clock_bytes += f.link_clock_bytes;
            total.bandwidth_bytes += f.bandwidth_bytes;
        }
        total.nodes = self.node_count;
        total
    }

    /// One-way "typical" latency between a pair (see
    /// [`crate::Network::typical_latency`]); draws from the driver's own
    /// reference RNG, never a node stream.
    pub fn typical_latency(&mut self, src: NodeId, dst: NodeId) -> SimDuration {
        let rng = &mut self.reference_rng;
        self.latency.typical(src, dst, rng)
    }

    /// Publishes merged simulator health plus one per-shard occupancy
    /// census record per `run_until`. Out-of-band: reads only.
    fn publish_telemetry(&self) {
        let tel = &self.config.telemetry;
        if !tel.is_enabled() {
            return;
        }
        let stats = self.stats();
        tel.gauge("sim.sched_occupancy")
            .set(self.pending_events() as u64);
        tel.gauge("sim.events_processed")
            .set(stats.events_processed);
        tel.gauge("sim.messages_delivered")
            .set(stats.messages_delivered);
        tel.gauge("sim.now_us").set(self.now.as_micros());
        tel.gauge("sim.shards").set(self.cores.len() as u64);
        for (s, core) in self.cores.iter().enumerate() {
            // Reuses the reactor's queue-census taxonomy: `node` is the
            // shard index, `a` its queue occupancy, `b` events processed.
            tel.event_on_shard(
                s,
                self.now.as_micros(),
                s as u32,
                TelEventKind::WriteQueueDepth,
                core.queue.len() as u64,
                core.stats.events_processed,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TimerTag;
    use crate::faults::{FaultConfig, PartitionMode};
    use crate::latency::{ClusterLatency, FixedLatency};
    use crate::network::Network;
    use crate::sched::SchedulerKind;

    /// A chatty protocol that exercises every divergence-prone path: RNG
    /// draws in callbacks, fan-out sends, timers, connection churn.
    #[derive(Debug)]
    struct Chat {
        peers: Vec<NodeId>,
        log: Vec<(NodeId, u8, SimTime)>,
        downs: Vec<(NodeId, SimTime)>,
        timers: u32,
    }

    #[derive(Debug, Clone)]
    struct Msg(u8);
    impl WireSize for Msg {
        fn wire_size(&self) -> usize {
            64
        }
    }

    impl Chat {
        fn new(peers: Vec<NodeId>) -> Self {
            Chat {
                peers,
                log: Vec::new(),
                downs: Vec::new(),
                timers: 0,
            }
        }
    }

    impl Protocol for Chat {
        type Message = Msg;

        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            for &p in &self.peers {
                ctx.open_connection(p);
            }
            if let Some(&first) = self.peers.first() {
                ctx.send(first, Msg(3));
            }
            ctx.set_timer(SimDuration::from_millis(40), TimerTag::of_kind(1));
        }

        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            self.log.push((from, msg.0, ctx.now()));
            if msg.0 > 0 && !self.peers.is_empty() {
                let idx = ctx.rng().gen_range(0..self.peers.len());
                let target = self.peers[idx];
                ctx.send(target, Msg(msg.0 - 1));
            }
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _tag: TimerTag) {
            self.timers += 1;
            if self.timers <= 3 && !self.peers.is_empty() {
                let idx = ctx.rng().gen_range(0..self.peers.len());
                let target = self.peers[idx];
                ctx.send(target, Msg(2));
                ctx.set_timer(SimDuration::from_millis(40), TimerTag::of_kind(1));
            }
        }

        fn on_link_down(&mut self, ctx: &mut Context<'_, Msg>, peer: NodeId) {
            self.downs.push((peer, ctx.now()));
        }
    }

    fn ring_peers(i: u32, n: u32) -> Vec<NodeId> {
        vec![
            NodeId((i + 1) % n),
            NodeId((i + 2) % n),
            NodeId((i + n - 1) % n),
        ]
    }

    /// Drives a scripted scenario against either driver and fingerprints
    /// every observable.
    trait Driver {
        fn add(&mut self, at: Option<SimTime>, peers: Vec<NodeId>) -> NodeId;
        fn run_until(&mut self, t: SimTime);
        fn invoke_send(&mut self, id: NodeId, to: NodeId, v: u8);
        fn crash(&mut self, id: NodeId);
        fn set_faults(&mut self, link: LinkFaults);
        fn partition(&mut self, spec: PartitionSpec);
        fn fingerprint(&self, n: u32) -> String;
    }

    impl Driver for Network<Chat> {
        fn add(&mut self, at: Option<SimTime>, peers: Vec<NodeId>) -> NodeId {
            match at {
                Some(t) => self.add_node_at(t, move |_| Chat::new(peers)),
                None => self.add_node(move |_| Chat::new(peers)),
            }
        }
        fn run_until(&mut self, t: SimTime) {
            Network::run_until(self, t);
        }
        fn invoke_send(&mut self, id: NodeId, to: NodeId, v: u8) {
            self.invoke(id, |_p, ctx| ctx.send(to, Msg(v)));
        }
        fn crash(&mut self, id: NodeId) {
            Network::crash(self, id);
        }
        fn set_faults(&mut self, link: LinkFaults) {
            self.set_link_faults(link);
        }
        fn partition(&mut self, spec: PartitionSpec) {
            self.add_partition(spec);
        }
        fn fingerprint(&self, n: u32) -> String {
            let mut out = String::new();
            let stats = self.stats();
            out.push_str(&format!("{stats:?}\n"));
            for i in 0..n {
                let id = NodeId(i);
                out.push_str(&format!("{} alive={}", i, self.is_alive(id)));
                if let Some(p) = self.node(id) {
                    out.push_str(&format!(
                        " log={:?} downs={:?} timers={}",
                        p.log, p.downs, p.timers
                    ));
                }
                if let Some(bw) = self.bandwidth().node(id) {
                    out.push_str(&format!(" bw={:?}", bw));
                }
                out.push('\n');
            }
            out.push_str(&format!("{:?}", self.link_clock_entries()));
            out
        }
    }

    impl Driver for ShardedNetwork<Chat> {
        fn add(&mut self, at: Option<SimTime>, peers: Vec<NodeId>) -> NodeId {
            match at {
                Some(t) => self.add_node_at(t, move |_| Chat::new(peers)),
                None => self.add_node(move |_| Chat::new(peers)),
            }
        }
        fn run_until(&mut self, t: SimTime) {
            ShardedNetwork::run_until(self, t);
        }
        fn invoke_send(&mut self, id: NodeId, to: NodeId, v: u8) {
            self.invoke(id, |_p, ctx| ctx.send(to, Msg(v)));
        }
        fn crash(&mut self, id: NodeId) {
            ShardedNetwork::crash(self, id);
        }
        fn set_faults(&mut self, link: LinkFaults) {
            self.set_link_faults(link);
        }
        fn partition(&mut self, spec: PartitionSpec) {
            self.add_partition(spec);
        }
        fn fingerprint(&self, n: u32) -> String {
            let mut out = String::new();
            let stats = self.stats();
            out.push_str(&format!("{stats:?}\n"));
            let merged_bw = self.bandwidth();
            for i in 0..n {
                let id = NodeId(i);
                out.push_str(&format!("{} alive={}", i, self.is_alive(id)));
                if let Some(p) = self.node(id) {
                    out.push_str(&format!(
                        " log={:?} downs={:?} timers={}",
                        p.log, p.downs, p.timers
                    ));
                }
                if let Some(bw) = merged_bw.node(id) {
                    out.push_str(&format!(" bw={:?}", bw));
                }
                out.push('\n');
            }
            out.push_str(&format!("{:?}", self.link_clock_entries()));
            out
        }
    }

    /// The scripted scenario: staggered joins, ring gossip with RNG-picked
    /// forwards, invoked bursts, mid-run fault profile swap, a partition
    /// window, same-boundary crashes, connects to dead peers.
    fn drive(net: &mut dyn Driver, n: u32) -> String {
        for i in 0..n {
            let at = (i % 3 == 2).then(|| SimTime::from_millis(5 * i as u64));
            net.add(at, ring_peers(i, n));
        }
        net.run_until(SimTime::from_millis(100));
        net.invoke_send(NodeId(0), NodeId(n / 2), 4);
        net.invoke_send(NodeId(1), NodeId(n - 1), 5);
        net.run_until(SimTime::from_millis(200));
        net.set_faults(LinkFaults {
            loss_rate: 0.1,
            jitter: SimDuration::from_micros(300),
            latency_factor: 0.5,
        });
        net.invoke_send(NodeId(2), NodeId(0), 6);
        net.run_until(SimTime::from_millis(300));
        net.partition(PartitionSpec::new(
            vec![NodeId(1), NodeId(4)],
            SimTime::from_millis(300),
            SimTime::from_millis(450),
            PartitionMode::Drop,
        ));
        net.run_until(SimTime::from_millis(400));
        // Two same-boundary crashes, one of which the other's incoming
        // lists reference — application order must follow lane priority.
        net.crash(NodeId(3));
        net.crash(NodeId(n - 2));
        net.invoke_send(NodeId(0), NodeId(3), 2); // still alive until the boundary
        net.run_until(SimTime::from_millis(600));
        // A node that connects to the dead peers after the fact.
        net.add(None, vec![NodeId(3), NodeId(0)]);
        net.run_until(SimTime::from_millis(900));
        net.crash(NodeId(0));
        net.run_until(SimTime::from_millis(1200));
        net.fingerprint(n + 1)
    }

    fn config(scheduler: SchedulerKind) -> NetworkConfig {
        NetworkConfig {
            scheduler,
            ..NetworkConfig::default()
        }
    }

    #[test]
    fn sharded_matches_sequential_bit_for_bit() {
        for scheduler in [SchedulerKind::TimingWheel, SchedulerKind::BinaryHeap] {
            let n = 11;
            let mut seq: Network<Chat> =
                Network::new(config(scheduler), Box::new(ClusterLatency::default()));
            let expected = drive(&mut seq, n);
            for shards in [1, 2, 3, 4, 7] {
                let mut sharded: ShardedNetwork<Chat> = ShardedNetwork::new(
                    config(scheduler),
                    Arc::new(ClusterLatency::default()),
                    shards,
                );
                let got = drive(&mut sharded, n);
                assert_eq!(
                    expected, got,
                    "sharded({shards}) diverged from sequential under {scheduler:?}"
                );
            }
        }
    }

    #[test]
    fn sharded_with_configured_faults_matches_sequential() {
        // Faults active from construction (loss + delay partition),
        // exercising the per-shard fault replicas from the first event.
        let faults = FaultConfig {
            link: LinkFaults {
                loss_rate: 0.15,
                latency_factor: 1.5,
                ..Default::default()
            },
            partitions: vec![PartitionSpec::new(
                vec![NodeId(2)],
                SimTime::from_millis(50),
                SimTime::from_millis(150),
                PartitionMode::Delay,
            )],
        };
        let cfg = NetworkConfig {
            faults,
            ..NetworkConfig::default()
        };
        let n = 9;
        let mut seq: Network<Chat> = Network::new(cfg.clone(), Box::new(ClusterLatency::default()));
        let expected = drive(&mut seq, n);
        for shards in [2, 5] {
            let mut sharded: ShardedNetwork<Chat> =
                ShardedNetwork::new(cfg.clone(), Arc::new(ClusterLatency::default()), shards);
            assert_eq!(expected, drive(&mut sharded, n), "shards={shards}");
        }
    }

    #[test]
    fn more_shards_than_nodes_is_fine() {
        let n = 3;
        let mut seq: Network<Chat> = Network::new(
            NetworkConfig::default(),
            Box::new(ClusterLatency::default()),
        );
        let expected = drive(&mut seq, n);
        let mut sharded: ShardedNetwork<Chat> = ShardedNetwork::new(
            NetworkConfig::default(),
            Arc::new(ClusterLatency::default()),
            16,
        );
        assert_eq!(expected, drive(&mut sharded, n));
    }

    #[test]
    #[should_panic(expected = "positive minimum latency")]
    fn zero_lookahead_model_is_refused() {
        // FixedLatency(0) has min_latency 0: only the sequential driver
        // can honour zero-delay cross-shard sends.
        let mut net: ShardedNetwork<Chat> = ShardedNetwork::new(
            NetworkConfig::default(),
            Arc::new(FixedLatency::new(SimDuration::ZERO)),
            2,
        );
        net.add_node(|_| Chat::new(vec![]));
        net.run_until(SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "scheduler traces")]
    fn event_traces_are_refused() {
        let cfg = NetworkConfig {
            trace_events: true,
            ..NetworkConfig::default()
        };
        let _net: ShardedNetwork<Chat> =
            ShardedNetwork::new(cfg, Arc::new(ClusterLatency::default()), 2);
    }

    #[test]
    fn merged_accessors_cover_all_nodes() {
        let mut net: ShardedNetwork<Chat> = ShardedNetwork::new(
            NetworkConfig::default(),
            Arc::new(ClusterLatency::default()),
            3,
        );
        for i in 0..7u32 {
            net.add(None, ring_peers(i, 7));
        }
        net.run_until(SimTime::from_millis(500));
        assert_eq!(net.node_count(), 7);
        assert_eq!(net.alive_ids().len(), 7);
        let bw = net.bandwidth();
        assert_eq!(bw.iter().count(), 7);
        assert!(bw.total_uploaded() > 0);
        // No faults configured: every sent byte is either delivered or
        // dropped on a dead/unstarted destination (all messages 64 bytes).
        assert_eq!(
            bw.total_uploaded(),
            bw.total_downloaded() + net.stats().messages_dropped * 64
        );
        let fp = net.footprint();
        assert_eq!(fp.nodes, 7);
        assert!(fp.total_bytes() > 0);
        assert!(net.typical_latency(NodeId(0), NodeId(1)) > SimDuration::ZERO);
    }
}
